//! `condspec-serve` — the sweep-as-a-service daemon of the Conditional
//! Speculation reproduction.
//!
//! `condspec serve` turns the batch engine into a long-running service:
//! an HTTP/1.1 micro-server (in-tree, on `std::net::TcpListener` — no
//! external dependencies) accepts job and sweep submissions as JSON,
//! shards them across the engine's panic-isolated worker pool, streams
//! progress as newline-delimited JSON over chunked transfer encoding,
//! and serves rendered reports, Perfetto traces, and time-series
//! documents. Submissions run against the same persistent result store
//! as the CLI, so a sweep submitted twice reports 100% store hits the
//! second time — and a sweep the CLI already ran costs the daemon
//! nothing.
//!
//! # API
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | GET  | `/` | endpoint index |
//! | GET  | `/healthz` | health: version, uptime, store root, jobs in flight |
//! | GET  | `/api/health` | liveness probe |
//! | GET  | `/api/leaks` | taint-oracle leak matrix (`?variant=`, `?defense=`) |
//! | GET  | `/api/sweeps` | list submissions |
//! | POST | `/api/sweeps` | submit `{"sweep", "iters"?, "warmup"?, "mode"?, "distributed"?, "claim_timeout_ms"?}` |
//! | POST | `/api/work/claim` | worker pulls one job `{"owner"}` |
//! | POST | `/api/work/result` | worker reports `{"owner", "submission", "index", "artifact"\|"error"}` |
//! | POST | `/api/work/heartbeat` | renew liveness/claim `{"owner", "submission"?, "index"?}` |
//! | GET  | `/api/sweeps/<id>` | one submission's status |
//! | GET  | `/api/sweeps/<id>/stream` | chunked progress stream (NDJSON) |
//! | GET  | `/api/sweeps/<id>/report` | rendered report text |
//! | GET  | `/api/report/<sweep-id>` | report from run dir and/or store |
//! | POST | `/api/jobs` | run one job `{"kind", ...}` synchronously |
//! | GET  | `/api/trace` | Perfetto trace of one attack round |
//! | GET  | `/api/timeseries` | windowed time-series of one benchmark |
//! | GET  | `/api/checkpoints` | list stored checkpoint objects |
//! | GET  | `/api/store/stats` | store stats + counters (metrics JSON) |
//! | GET  | `/api/metrics` | daemon metrics registry |
//! | POST | `/api/shutdown` | graceful stop |

pub mod http;
pub mod state;

pub use state::{ServerState, Submission, SubmissionStatus, SubmitMode, WorkerEntry};

use condspec::{leak_report_to_json, DefenseConfig};
use condspec_attacks::{leak_probe, traced_variant_round, AttackScenario};
use condspec_engine::{
    load_sweep_report_with_store, JobSpec, MachinePreset, ProgramCache, ResultStore, Sweep,
    Workload,
};
use condspec_stats::{Json, MetricsRegistry};
use condspec_workloads::GadgetKind;
use http::{read_request, respond_json, respond_text, ChunkedResponse, Request};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// The address `condspec serve` binds when `--addr` is not given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7877";

/// How to run the daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 binds an ephemeral port.
    pub addr: String,
    /// Worker threads per sweep (0 = engine default).
    pub workers: usize,
    /// Artifact root for daemon-run sweeps.
    pub runs_root: PathBuf,
    /// Persistent store root; `None` disables the store.
    pub store_root: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            workers: 0,
            runs_root: PathBuf::from(condspec_engine::DEFAULT_ROOT),
            store_root: Some(ResultStore::default_root()),
        }
    }
}

/// A bound daemon, ready to serve.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listen socket and initializes shared state. Nothing is
    /// served until [`Server::run`].
    pub fn bind(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(ServerState::new(
            config.workers,
            config.runs_root.clone(),
            config.store_root.clone(),
        ));
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (for embedding and tests).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until `POST /api/shutdown`. One thread per connection;
    /// running submissions own their own threads and finish
    /// independently of connection handling.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || {
                let mut stream = stream;
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                if let Err(e) = handle_connection(&state, addr, &mut stream) {
                    // Client went away mid-response or sent garbage;
                    // nothing to do but note it.
                    let _ = e;
                }
            });
        }
        Ok(())
    }
}

fn handle_connection(
    state: &Arc<ServerState>,
    addr: SocketAddr,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return respond_json(stream, 400, &error_json(&e.to_string()));
        }
        Err(e) => return Err(e),
    };
    state.requests.fetch_add(1, Ordering::Relaxed);

    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", []) => respond_json(stream, 200, &index_json().render()),
        ("GET", ["api", "health"]) => respond_json(
            stream,
            200,
            &Json::object(vec![("ok", Json::from(true))]).render(),
        ),
        ("GET", ["healthz"]) => healthz(state, stream),
        ("GET", ["api", "leaks"]) => serve_leaks(stream, &request),
        ("GET", ["api", "sweeps"]) => {
            let list = state
                .submissions()
                .iter()
                .map(Submission::to_json)
                .collect();
            respond_json(
                stream,
                200,
                &Json::object(vec![("submissions", Json::Array(list))]).render(),
            )
        }
        ("POST", ["api", "sweeps"]) => submit_sweep(state, stream, &request),
        ("POST", ["api", "work", "claim"]) => work_claim(state, stream, &request),
        ("POST", ["api", "work", "result"]) => work_result(state, stream, &request),
        ("POST", ["api", "work", "heartbeat"]) => work_heartbeat(state, stream, &request),
        ("GET", ["api", "sweeps", id]) => match parse_id(id).and_then(|id| state.submission(id)) {
            Some(s) => respond_json(stream, 200, &s.to_json().render()),
            None => respond_json(stream, 404, &error_json("no such submission")),
        },
        ("GET", ["api", "sweeps", id, "stream"]) => match parse_id(id) {
            Some(id) if state.submission(id).is_some() => stream_progress(state, stream, id),
            _ => respond_json(stream, 404, &error_json("no such submission")),
        },
        ("GET", ["api", "sweeps", id, "report"]) => {
            match parse_id(id).and_then(|id| state.submission(id)) {
                Some(s) => match &s.report {
                    Some(report) => respond_text(stream, 200, report),
                    None => respond_json(
                        stream,
                        409,
                        &error_json(&format!("submission is {}", s.status.key())),
                    ),
                },
                None => respond_json(stream, 404, &error_json("no such submission")),
            }
        }
        ("GET", ["api", "report", sweep_id]) => {
            let store = state.store_root.as_deref().map(ResultStore::open);
            match load_sweep_report_with_store(&state.runs_root, sweep_id, store.as_ref()) {
                Ok(report) => respond_text(stream, 200, &report.sweep.render(&report.results)),
                Err(e) => respond_json(stream, 404, &error_json(&e)),
            }
        }
        ("POST", ["api", "jobs"]) => run_job(state, stream, &request),
        ("GET", ["api", "trace"]) => serve_trace(stream, &request),
        ("GET", ["api", "timeseries"]) => serve_timeseries(stream, &request),
        ("GET", ["api", "checkpoints"]) => list_checkpoints(state, stream),
        ("GET", ["api", "store", "stats"]) => store_stats(state, stream),
        ("GET", ["api", "metrics"]) => metrics(state, stream),
        ("POST", ["api", "shutdown"]) => {
            respond_json(
                stream,
                200,
                &Json::object(vec![("shutting_down", Json::from(true))]).render(),
            )?;
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(addr);
            Ok(())
        }
        _ => respond_json(stream, 404, &error_json("no such endpoint")),
    }
}

fn parse_id(text: &str) -> Option<u64> {
    text.parse().ok()
}

fn error_json(message: &str) -> String {
    Json::object(vec![("error", Json::from(message))]).render()
}

fn index_json() -> Json {
    let endpoints = [
        "GET /healthz",
        "GET /api/health",
        "GET /api/leaks",
        "GET /api/sweeps",
        "POST /api/sweeps",
        "POST /api/work/claim",
        "POST /api/work/result",
        "POST /api/work/heartbeat",
        "GET /api/sweeps/<id>",
        "GET /api/sweeps/<id>/stream",
        "GET /api/sweeps/<id>/report",
        "GET /api/report/<sweep-id>",
        "POST /api/jobs",
        "GET /api/trace",
        "GET /api/timeseries",
        "GET /api/checkpoints",
        "GET /api/store/stats",
        "GET /api/metrics",
        "POST /api/shutdown",
    ];
    Json::object(vec![
        ("service", Json::from("condspec-serve")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        (
            "endpoints",
            Json::Array(endpoints.iter().map(|e| Json::from(*e)).collect()),
        ),
        (
            "sweeps",
            Json::Array(Sweep::NAMES.iter().map(|n| Json::from(*n)).collect()),
        ),
    ])
}

fn submit_sweep(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    let Ok(body) = Json::parse(&request.body) else {
        return respond_json(stream, 400, &error_json("body is not JSON"));
    };
    let Some(name) = body.get("sweep").and_then(Json::as_str) else {
        return respond_json(stream, 400, &error_json("missing \"sweep\""));
    };
    let Some(sweep) = Sweep::by_name(name) else {
        return respond_json(
            stream,
            400,
            &error_json(&format!(
                "unknown sweep `{name}` — available: {}",
                Sweep::NAMES.join(", ")
            )),
        );
    };
    let iterations = body.get("iters").and_then(Json::as_u64);
    let warmup = body.get("warmup").and_then(Json::as_u64);
    if body.get("distributed").and_then(Json::as_bool) == Some(true) {
        let claim_timeout = body
            .get("claim_timeout_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis);
        return match state.submit_distributed(sweep, iterations, warmup, claim_timeout) {
            Ok((id, sweep_id)) => respond_json(
                stream,
                202,
                &Json::object(vec![
                    ("submission", Json::from(id)),
                    ("sweep_id", Json::from(sweep_id.as_str())),
                    ("distributed", Json::from(true)),
                ])
                .render(),
            ),
            Err(e) => respond_json(stream, 500, &error_json(&e.to_string())),
        };
    }
    let mode = match body.get("mode").and_then(Json::as_str) {
        None => SubmitMode::Detailed,
        Some(key) => match SubmitMode::from_key(key) {
            Some(mode) => mode,
            None => {
                return respond_json(
                    stream,
                    400,
                    &error_json(&format!(
                        "unknown mode `{key}` — available: detailed, sampled"
                    )),
                )
            }
        },
    };
    let (id, sweep_id) = state.submit(sweep, iterations, warmup, mode);
    respond_json(
        stream,
        202,
        &Json::object(vec![
            ("submission", Json::from(id)),
            ("sweep_id", Json::from(sweep_id.as_str())),
        ])
        .render(),
    )
}

/// `POST /api/work/claim` — a worker pulls one pending job from the
/// distributed queues. The response is either a job descriptor
/// (`submission`, `index`, `sweep`, `key`, ...) or `{"idle": true}`.
fn work_claim(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    let Ok(body) = Json::parse(&request.body) else {
        return respond_json(stream, 400, &error_json("body is not JSON"));
    };
    let Some(owner) = body.get("owner").and_then(Json::as_str) else {
        return respond_json(stream, 400, &error_json("missing \"owner\""));
    };
    let doc = state.claim_work(owner);
    respond_json(stream, 200, &format!("{}\n", doc.render()))
}

/// `POST /api/work/result` — a worker reports the outcome of a claimed
/// job: `artifact` (the simulated result document) on success, `error`
/// (a message) on failure. First report wins; a late duplicate gets
/// `{"ok": true, "duplicate": true}` and changes nothing.
fn work_result(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    let Ok(body) = Json::parse(&request.body) else {
        return respond_json(stream, 400, &error_json("body is not JSON"));
    };
    let Some(owner) = body.get("owner").and_then(Json::as_str) else {
        return respond_json(stream, 400, &error_json("missing \"owner\""));
    };
    let Some(submission) = body.get("submission").and_then(Json::as_u64) else {
        return respond_json(stream, 400, &error_json("missing \"submission\""));
    };
    let Some(index) = body.get("index").and_then(Json::as_u64) else {
        return respond_json(stream, 400, &error_json("missing \"index\""));
    };
    let outcome = match body.get("artifact") {
        Some(artifact) => Ok(artifact.clone()),
        None => match body.get("error").and_then(Json::as_str) {
            Some(message) => Err(message.to_string()),
            None => {
                return respond_json(
                    stream,
                    400,
                    &error_json("missing \"artifact\" or \"error\""),
                )
            }
        },
    };
    match state.work_result(owner, submission, index as usize, outcome) {
        Ok(doc) => respond_json(stream, 200, &format!("{}\n", doc.render())),
        Err(e) => respond_json(stream, 404, &error_json(&e)),
    }
}

/// `POST /api/work/heartbeat` — renews a worker's liveness (and, when
/// `submission`/`index` name a held claim, that claim's lease).
fn work_heartbeat(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    let Ok(body) = Json::parse(&request.body) else {
        return respond_json(stream, 400, &error_json("body is not JSON"));
    };
    let Some(owner) = body.get("owner").and_then(Json::as_str) else {
        return respond_json(stream, 400, &error_json("missing \"owner\""));
    };
    let submission = body.get("submission").and_then(Json::as_u64);
    let index = body.get("index").and_then(Json::as_u64).map(|i| i as usize);
    let doc = state.work_heartbeat(owner, submission, index);
    respond_json(stream, 200, &format!("{}\n", doc.render()))
}

/// Streams progress snapshots as newline-delimited JSON until the
/// submission finishes. Each chunk is one complete line, so clients can
/// parse incrementally.
fn stream_progress(state: &Arc<ServerState>, stream: &mut TcpStream, id: u64) -> io::Result<()> {
    let mut chunked = ChunkedResponse::begin(stream, 200, "application/x-ndjson")?;
    let mut last = String::new();
    while let Some(s) = state.submission(id) {
        let line = s.to_json().render();
        if line != last {
            chunked.chunk(&format!("{line}\n"))?;
            last = line;
        }
        if matches!(s.status, SubmissionStatus::Done | SubmissionStatus::Error) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    chunked.finish()
}

/// Builds a [`JobSpec`] from a `POST /api/jobs` body.
fn parse_job(body: &Json) -> Result<JobSpec, String> {
    let defense = match body.get("defense").and_then(Json::as_str) {
        Some(key) => {
            DefenseConfig::from_key(key).ok_or_else(|| format!("unknown defense `{key}`"))?
        }
        None => return Err("missing \"defense\"".to_string()),
    };
    let kind = body
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing \"kind\" (bench | attack | variant)")?;
    match kind {
        "bench" => {
            let benchmark = body
                .get("benchmark")
                .and_then(Json::as_str)
                .ok_or("missing \"benchmark\"")?;
            let spec = condspec_workloads::spec::by_name(benchmark)
                .ok_or_else(|| format!("unknown benchmark `{benchmark}`"))?;
            let mut job = JobSpec::bench(spec.name, defense);
            if let Workload::Bench {
                iterations, warmup, ..
            } = &mut job.workload
            {
                if let Some(i) = body.get("iters").and_then(Json::as_u64) {
                    *iterations = i;
                }
                if let Some(w) = body.get("warmup").and_then(Json::as_u64) {
                    *warmup = w;
                }
            }
            if let Some(key) = body.get("machine").and_then(Json::as_str) {
                job.machine = MachinePreset::from_key(key)
                    .ok_or_else(|| format!("unknown machine `{key}`"))?;
            }
            Ok(job)
        }
        "attack" => {
            let key = body
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("missing \"scenario\"")?;
            let scenario =
                AttackScenario::from_key(key).ok_or_else(|| format!("unknown scenario `{key}`"))?;
            Ok(JobSpec::attack(scenario, defense))
        }
        "variant" => {
            let key = body
                .get("variant")
                .and_then(Json::as_str)
                .ok_or("missing \"variant\"")?;
            let kind =
                GadgetKind::from_key(key).ok_or_else(|| format!("unknown variant `{key}`"))?;
            Ok(JobSpec::variant(kind, defense))
        }
        other => Err(format!("unknown kind `{other}`")),
    }
}

/// Runs one job synchronously through the scheduler (store-consulted,
/// panic-isolated) and returns its artifact with provenance.
fn run_job(state: &Arc<ServerState>, stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let Ok(body) = Json::parse(&request.body) else {
        return respond_json(stream, 400, &error_json("body is not JSON"));
    };
    let job = match parse_job(&body) {
        Ok(j) => j,
        Err(e) => return respond_json(stream, 400, &error_json(&e)),
    };
    let store = state.store_root.as_deref().map(ResultStore::open);
    let programs = Arc::new(ProgramCache::new());
    let mut results = condspec_engine::run_jobs_stored(
        std::slice::from_ref(&job),
        1,
        &programs,
        store.as_ref(),
        |_, _, _, _| {},
    );
    let (outcome, _, source) = results.remove(0);
    match outcome {
        Ok(artifact) => respond_json(
            stream,
            200,
            &Json::object(vec![
                ("job", Json::from(job.hash_hex())),
                ("label", Json::from(job.label())),
                ("source", Json::from(source.key())),
                ("artifact", artifact),
            ])
            .render(),
        ),
        Err(message) => respond_json(stream, 500, &error_json(&message)),
    }
}

/// `GET /healthz` — operational health beyond the bare liveness probe:
/// build version, seconds of uptime, the store root (or null when the
/// store is disabled), how many submissions are queued or running, and
/// the distributed-work picture: connected workers (with per-worker
/// last-heartbeat age and completion count) and leases in flight (serve
/// claims handed out plus on-disk store leases).
fn healthz(state: &Arc<ServerState>, stream: &mut TcpStream) -> io::Result<()> {
    let workers = state.workers_snapshot();
    let worker_rows: Vec<Json> = workers
        .iter()
        .map(|w| {
            Json::object(vec![
                ("owner", Json::from(w.owner.as_str())),
                ("completed", Json::from(w.completed)),
                (
                    "last_heartbeat_secs",
                    Json::from(w.last_seen.elapsed().as_secs()),
                ),
            ])
        })
        .collect();
    let store_leases = state
        .store_root
        .as_deref()
        .and_then(|root| ResultStore::open(root).leases().ok())
        .map(|leases| leases.len())
        .unwrap_or(0);
    let doc = Json::object(vec![
        ("ok", Json::from(true)),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("uptime_secs", Json::from(state.started.elapsed().as_secs())),
        (
            "store_root",
            match state.store_root.as_deref() {
                Some(root) => Json::from(root.display().to_string()),
                None => Json::Null,
            },
        ),
        ("jobs_in_flight", Json::from(state.in_flight() as u64)),
        ("workers_connected", Json::from(workers.len() as u64)),
        ("workers", Json::Array(worker_rows)),
        (
            "leases_in_flight",
            Json::from((state.work_claims_in_flight() + store_leases) as u64),
        ),
    ]);
    respond_json(stream, 200, &format!("{}\n", doc.render()))
}

/// `GET /api/leaks` — the taint-oracle leak matrix over the Table IV
/// gadget corpus and all four defenses, one probe per cell
/// (`?variant=`/`?defense=` restrict either axis). The claim verdict
/// quantifies over defenses, so it is present only when every defense
/// column ran.
fn serve_leaks(stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let corpus: Vec<GadgetKind> = match request.query("variant") {
        Some(key) => match GadgetKind::from_key(key) {
            Some(kind) => vec![kind],
            None => {
                return respond_json(
                    stream,
                    400,
                    &error_json(&format!("unknown variant `{key}`")),
                )
            }
        },
        None => vec![
            GadgetKind::V1,
            GadgetKind::V2,
            GadgetKind::V4,
            GadgetKind::Rsb,
        ],
    };
    let defenses: Vec<DefenseConfig> = match request.query("defense") {
        Some(key) => match DefenseConfig::from_key(key) {
            Some(d) => vec![d],
            None => {
                return respond_json(
                    stream,
                    400,
                    &error_json(&format!("unknown defense `{key}`")),
                )
            }
        },
        None => DefenseConfig::ALL.to_vec(),
    };
    let claim_checkable = defenses.len() == DefenseConfig::ALL.len();

    let mut cells = Vec::new();
    let mut violated = false;
    for kind in &corpus {
        for defense in &defenses {
            let outcome = leak_probe(*kind, *defense);
            violated |= (*defense == DefenseConfig::Origin) != outcome.cache_leaked();
            cells.push(Json::object(vec![
                ("variant", Json::from(kind.key())),
                ("defense", Json::from(defense.key())),
                ("cache_leaked", Json::from(outcome.cache_leaked())),
                ("leaks", leak_report_to_json(&outcome.leaks)),
                ("leak_events", Json::from(outcome.events.len() as u64)),
            ]));
        }
    }
    let mut fields = vec![("cells", Json::Array(cells))];
    if claim_checkable {
        fields.push((
            "claim",
            Json::from(if violated { "VIOLATED" } else { "REPRODUCED" }),
        ));
    }
    respond_json(stream, 200, &format!("{}\n", Json::object(fields).render()))
}

/// Perfetto (Chrome JSON) trace of one traced attack round.
fn serve_trace(stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let key = request.query("variant").unwrap_or("v1");
    let Some(kind) = GadgetKind::from_key(key) else {
        return respond_json(
            stream,
            400,
            &error_json(&format!("unknown variant `{key}`")),
        );
    };
    let defense = match request.query("defense") {
        Some(key) => match DefenseConfig::from_key(key) {
            Some(d) => d,
            None => {
                return respond_json(
                    stream,
                    400,
                    &error_json(&format!("unknown defense `{key}`")),
                )
            }
        },
        None => DefenseConfig::CacheHitTpbuf,
    };
    let events = request
        .query("events")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096usize);
    let trace = traced_variant_round(kind, defense, events);
    let doc = condspec_pipeline::perfetto::to_chrome_trace(&trace);
    respond_json(stream, 200, &format!("{}\n", doc.render()))
}

/// Windowed time-series of one benchmark run, as JSON.
fn serve_timeseries(stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let Some(benchmark) = request.query("benchmark") else {
        return respond_json(stream, 400, &error_json("missing ?benchmark="));
    };
    let Some(spec) = condspec_workloads::spec::by_name(benchmark) else {
        return respond_json(
            stream,
            400,
            &error_json(&format!("unknown benchmark `{benchmark}`")),
        );
    };
    let defense = match request.query("defense") {
        Some(key) => match DefenseConfig::from_key(key) {
            Some(d) => d,
            None => {
                return respond_json(
                    stream,
                    400,
                    &error_json(&format!("unknown defense `{key}`")),
                )
            }
        },
        None => DefenseConfig::CacheHitTpbuf,
    };
    let mut job = JobSpec::bench(spec.name, defense);
    if let Workload::Bench {
        iterations, warmup, ..
    } = &mut job.workload
    {
        if let Some(i) = request.query("iters").and_then(|v| v.parse().ok()) {
            *iterations = i;
        }
        if let Some(w) = request.query("warmup").and_then(|v| v.parse().ok()) {
            *warmup = w;
        }
    }
    let window = request
        .query("window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000u64);
    let rows = request
        .query("rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(512usize);
    let doc = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job.execute_timeseries(window, rows)
    }));
    match doc {
        Ok(doc) => respond_json(stream, 200, &format!("{}\n", doc.render())),
        Err(_) => respond_json(stream, 500, &error_json("time-series run panicked")),
    }
}

/// The checkpoint objects currently in the persistent store, in key
/// order: one row per checkpoint with its store key, identity string,
/// label, and payload size.
fn list_checkpoints(state: &Arc<ServerState>, stream: &mut TcpStream) -> io::Result<()> {
    let Some(root) = state.store_root.as_deref() else {
        return respond_json(
            stream,
            409,
            &error_json("the store is disabled (--no-store)"),
        );
    };
    let store = ResultStore::open(root);
    let entries = match store.list_checkpoints() {
        Ok(entries) => entries,
        Err(e) => return respond_json(stream, 500, &error_json(&e.to_string())),
    };
    let rows: Vec<Json> = entries
        .iter()
        .map(|entry| {
            Json::object(vec![
                ("key", Json::from(entry.key.as_str())),
                ("identity", Json::from(entry.job.as_str())),
                ("label", Json::from(entry.label.as_str())),
                ("bytes", Json::from(entry.bytes)),
            ])
        })
        .collect();
    let doc = Json::object(vec![
        ("count", Json::from(rows.len() as u64)),
        ("checkpoints", Json::Array(rows)),
    ]);
    respond_json(stream, 200, &format!("{}\n", doc.render()))
}

/// Store stats and counters, rendered through the metrics registry.
fn store_stats(state: &Arc<ServerState>, stream: &mut TcpStream) -> io::Result<()> {
    let Some(root) = state.store_root.as_deref() else {
        return respond_json(
            stream,
            409,
            &error_json("the store is disabled (--no-store)"),
        );
    };
    let store = ResultStore::open(root);
    let stats = match store.stats() {
        Ok(s) => s,
        Err(e) => return respond_json(stream, 500, &error_json(&e.to_string())),
    };
    let mut registry = MetricsRegistry::new();
    registry.set_counter("store.entries", stats.entries);
    registry.set_counter("store.bytes", stats.bytes);
    registry.set_counter("store.checkpoints", stats.checkpoints);
    registry.set_counter("store.checkpoint_bytes", stats.checkpoint_bytes);
    registry.set_counter("store.leases", stats.leases);
    registry.set_counter("store.stray_tmp", stats.stray_tmp);
    registry.set_counter("store.hits", state.store_hits_total.load(Ordering::Relaxed));
    registry.set_counter(
        "store.inserts",
        state.store_inserts_total.load(Ordering::Relaxed),
    );
    let doc = Json::object(vec![
        ("root", Json::from(root.display().to_string())),
        ("summary", Json::from(stats.summary(root))),
        ("metrics", registry.to_json()),
    ]);
    respond_json(stream, 200, &format!("{}\n", doc.render()))
}

/// The daemon's metrics registry: request/submission counters plus the
/// store's on-disk footprint and daemon-lifetime hit/insert totals.
fn metrics(state: &Arc<ServerState>, stream: &mut TcpStream) -> io::Result<()> {
    let mut registry = MetricsRegistry::new();
    registry.set_counter("serve.requests", state.requests.load(Ordering::Relaxed));
    registry.set_counter("serve.submissions", state.submissions().len() as u64);
    registry.set_counter("store.hits", state.store_hits_total.load(Ordering::Relaxed));
    registry.set_counter(
        "store.inserts",
        state.store_inserts_total.load(Ordering::Relaxed),
    );
    if let Some(root) = state.store_root.as_deref() {
        if let Ok(stats) = ResultStore::open(root).stats() {
            registry.set_counter("store.entries", stats.entries);
            registry.set_counter("store.bytes", stats.bytes);
            registry.set_counter("store.checkpoints", stats.checkpoints);
            registry.set_counter("store.checkpoint_bytes", stats.checkpoint_bytes);
            registry.set_counter("store.leases", stats.leases);
            registry.set_counter("store.stray_tmp", stats.stray_tmp);
        }
    }
    respond_json(stream, 200, &format!("{}\n", registry.to_json().render()))
}

//! A deliberately small HTTP/1.1 server core on `std::net` — just
//! enough protocol for the condspec daemon: request-line + header
//! parsing, `Content-Length` bodies, fixed responses, and chunked
//! transfer encoding for progress streams. No external dependencies,
//! no keep-alive (every response closes the connection), no TLS.
//!
//! The subset is intentionally strict about what it accepts: a
//! malformed request gets a `400` and a closed socket, never a panic —
//! the daemon shares a process with running sweeps.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted request body (sweep submissions are tiny JSON
/// documents; anything larger is a client error).
pub const MAX_BODY: usize = 1 << 20;

/// Maximum accepted header block size.
const MAX_HEADER: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The path component of the request target (query stripped).
    pub path: String,
    /// Decoded query parameters in request order.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First query value for `name`, if present.
    pub fn query(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Any I/O error, plus `InvalidData` for requests that are not
/// well-formed HTTP/1.x or exceed the size limits. The caller answers
/// those with a 400.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), t.to_string(), v)
        }
        _ => return Err(bad("malformed request line")),
    };
    let _ = version;

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER {
            return Err(bad("header block too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| bad("bad content-length"))?;
            if content_length > MAX_BODY {
                return Err(bad("body too large"));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let query = query_text
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Minimal percent-decoding (`%2f`, `+` as space) for query values.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response and flushes.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(status),
        body.len()
    )?;
    stream.flush()
}

/// Shorthand: a JSON response (the body should already be rendered).
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond(stream, status, "application/json", body)
}

/// Shorthand: a plain-text response.
pub fn respond_text(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond(stream, status, "text/plain; charset=utf-8", body)
}

/// A chunked-transfer response in progress: call [`ChunkedResponse::chunk`]
/// per payload piece, then [`ChunkedResponse::finish`].
pub struct ChunkedResponse<'s> {
    stream: &'s mut TcpStream,
}

impl<'s> ChunkedResponse<'s> {
    /// Writes the response head and switches the connection to chunked
    /// transfer encoding.
    pub fn begin(
        stream: &'s mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedResponse<'s>> {
        write!(
            stream,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(status)
        )?;
        stream.flush()?;
        Ok(ChunkedResponse { stream })
    }

    /// Writes one chunk and flushes, so streaming clients see it
    /// immediately. Empty payloads are skipped (an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, payload: &str) -> io::Result<()> {
        if payload.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n{payload}\r\n", payload.len())?;
        self.stream.flush()
    }

    /// Terminates the chunked stream.
    pub fn finish(self) -> io::Result<()> {
        write!(self.stream, "0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A minimal blocking HTTP/1.1 client request against `addr` — the
/// counterpart of this module's server core, used by `condspec worker
/// --attach` to talk to a coordinating daemon. Returns the status code
/// and body; handles `Content-Length` and chunked responses, and reads
/// to EOF otherwise (the server closes every connection).
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("truncated response headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }

    let body = if chunked {
        let mut out = Vec::new();
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break;
            }
            let size =
                usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk)?;
            chunk.truncate(size);
            out.extend_from_slice(&chunk);
        }
        out
    } else if let Some(len) = content_length {
        let mut out = vec![0u8; len];
        reader.read_exact(&mut out)?;
        out
    } else {
        let mut out = Vec::new();
        reader.read_to_end(&mut out)?;
        out
    };
    let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
    Ok((status, body))
}

/// Shorthand: a GET through [`client_request`].
pub fn client_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    client_request(addr, "GET", path, "")
}

/// Shorthand: a POST through [`client_request`].
pub fn client_post(addr: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    client_request(addr, "POST", path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_the_common_cases() {
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("a%2fb"), "a/b");
        assert_eq!(percent_decode("dangling%"), "dangling%");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
    }
}

//! Shared daemon state: the submission registry and the background
//! sweep runner.
//!
//! A submission is one accepted sweep request. It runs on its own
//! `std::thread`, which internally shards jobs across the engine's
//! panic-isolated worker pool ([`run_sweep_observed`]); the observer
//! publishes [`SweepProgress`] snapshots into the registry under a
//! mutex, where streaming handlers poll them. Results land in the
//! ordinary run directory and (when configured) the persistent result
//! store, so a daemon-run sweep is indistinguishable on disk from a CLI
//! run of the same sweep.

use condspec_engine::{
    default_workers, run_jobs_stored, run_sampled_bench, run_sweep_observed, JobSource, JobStatus,
    ManifestInfo, ProgramCache, ResultStore, SampledBenchSpec, Sweep, SweepDir, SweepOptions,
    SweepProgress, SweepResults,
};
use condspec_stats::Json;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a submission is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionStatus {
    /// Accepted, thread not yet running the sweep.
    Queued,
    /// The sweep is executing.
    Running,
    /// Finished; all jobs accounted for (some may have failed).
    Done,
    /// The run itself errored (I/O), distinct from failed jobs.
    Error,
}

impl SubmissionStatus {
    /// Stable wire string.
    pub fn key(&self) -> &'static str {
        match self {
            SubmissionStatus::Queued => "queued",
            SubmissionStatus::Running => "running",
            SubmissionStatus::Done => "done",
            SubmissionStatus::Error => "error",
        }
    }
}

/// How a submission runs its benchmark jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// Full detailed simulation of every job (the CLI default).
    #[default]
    Detailed,
    /// SimPoint-style sampling: each benchmark job runs as a functional
    /// count pass plus parallel detailed windows, stitched into a
    /// whole-program estimate. Attack and variant jobs (which have no
    /// sampled form) still run detailed.
    Sampled,
}

impl SubmitMode {
    /// Stable wire string.
    pub fn key(&self) -> &'static str {
        match self {
            SubmitMode::Detailed => "detailed",
            SubmitMode::Sampled => "sampled",
        }
    }

    /// Parses a wire string; the inverse of [`SubmitMode::key`].
    pub fn from_key(key: &str) -> Option<SubmitMode> {
        match key {
            "detailed" => Some(SubmitMode::Detailed),
            "sampled" => Some(SubmitMode::Sampled),
            _ => None,
        }
    }
}

/// One accepted sweep submission.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Daemon-assigned id (monotonic per process).
    pub id: u64,
    /// The sweep's short name.
    pub sweep: String,
    /// The content-derived sweep id (of the scaled sweep).
    pub sweep_id: String,
    /// How the submission runs its benchmark jobs.
    pub mode: SubmitMode,
    /// Lifecycle state.
    pub status: SubmissionStatus,
    /// Latest progress snapshot.
    pub progress: SweepProgress,
    /// Run error message when `status == Error`.
    pub error: Option<String>,
    /// Rendered report text, available once `Done`.
    pub report: Option<String>,
    /// Per-shard provenance for distributed submissions: completed-job
    /// counts per worker owner id, in first-seen order. Empty for
    /// locally dispatched submissions.
    pub workers: Vec<(String, u64)>,
}

impl Submission {
    /// The submission as a wire JSON object (without the report body).
    /// The NDJSON progress stream emits exactly this object, so remote
    /// shard completions (`remote`, per-owner `workers` counts) are
    /// visible with the same done/simulated/store_hits accounting as a
    /// local run.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::from(self.id)),
            ("sweep", Json::from(self.sweep.as_str())),
            ("sweep_id", Json::from(self.sweep_id.as_str())),
            ("mode", Json::from(self.mode.key())),
            ("status", Json::from(self.status.key())),
            ("done", Json::from(self.progress.done as u64)),
            ("total", Json::from(self.progress.total as u64)),
            ("simulated", Json::from(self.progress.simulated as u64)),
            ("store_hits", Json::from(self.progress.store_hits as u64)),
            ("remote", Json::from(self.progress.remote as u64)),
            ("failed", Json::from(self.progress.failed as u64)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::from(e.as_str()),
                    None => Json::Null,
                },
            ),
        ];
        if !self.workers.is_empty() {
            let per_worker = self
                .workers
                .iter()
                .map(|(owner, count)| {
                    Json::object(vec![
                        ("owner", Json::from(owner.as_str())),
                        ("simulated", Json::from(*count)),
                    ])
                })
                .collect::<Vec<_>>();
            fields.push(("workers", Json::Array(per_worker)));
        }
        Json::object(fields)
    }
}

/// State shared by every connection handler and submission thread.
pub struct ServerState {
    /// Worker threads per sweep (0 = engine default).
    pub workers: usize,
    /// Artifact root for daemon-run sweeps.
    pub runs_root: PathBuf,
    /// Persistent store root; `None` disables the store.
    pub store_root: Option<PathBuf>,
    /// Accepted submissions, newest last.
    submissions: Mutex<Vec<Submission>>,
    next_id: AtomicU64,
    /// Total HTTP requests handled (for `/api/metrics`).
    pub requests: AtomicU64,
    /// Store hits across every finished submission (daemon lifetime).
    pub store_hits_total: AtomicU64,
    /// Store inserts (fresh simulations with the store on) across every
    /// finished submission.
    pub store_inserts_total: AtomicU64,
    /// Set by `POST /api/shutdown`; the accept loop exits on the next
    /// connection.
    pub shutdown: AtomicBool,
    /// When the state was created; `/healthz` reports uptime from here.
    pub started: std::time::Instant,
    /// Distributed submissions' work queues (pull-model work API).
    work: Mutex<Vec<DistributedRun>>,
    /// Every worker that has ever claimed or heartbeat, first-seen
    /// order.
    registry: Mutex<Vec<WorkerEntry>>,
}

/// One remote worker known to the daemon (`/healthz` reports these).
#[derive(Debug, Clone)]
pub struct WorkerEntry {
    /// The worker's self-chosen owner id.
    pub owner: String,
    /// Last claim/result/heartbeat time.
    pub last_seen: Instant,
    /// Jobs this worker has completed (daemon lifetime).
    pub completed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ItemState {
    Pending,
    Claimed { owner: String, since: Instant },
    Done,
}

#[derive(Debug, Clone)]
struct WorkItem {
    state: ItemState,
    /// Owner that produced the result (or the store entry's recorded
    /// inserter for jobs resolved at submit time).
    owner: Option<String>,
    /// Resolved from the persistent store at submit time, not simulated.
    via_store: bool,
    failed: bool,
}

/// One distributed submission's work queue: the scaled sweep, one item
/// per job, and the artifacts collected so far. Jobs already in the
/// store are resolved at submit time; the rest are handed out over
/// `POST /api/work/claim` and reported back over `POST /api/work/result`.
struct DistributedRun {
    submission: u64,
    sweep: Sweep,
    dir: SweepDir,
    iterations: Option<u64>,
    warmup: Option<u64>,
    /// A claimed item not reported or heartbeat within this window is
    /// requeued (requeue-on-disconnect).
    claim_timeout: Duration,
    items: Vec<WorkItem>,
    results: SweepResults,
    store: Option<ResultStore>,
}

impl DistributedRun {
    fn complete(&self) -> bool {
        self.items.iter().all(|i| i.state == ItemState::Done)
    }
}

impl ServerState {
    /// Fresh state with no submissions.
    pub fn new(workers: usize, runs_root: PathBuf, store_root: Option<PathBuf>) -> ServerState {
        ServerState {
            workers,
            runs_root,
            store_root,
            submissions: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            store_hits_total: AtomicU64::new(0),
            store_inserts_total: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: std::time::Instant::now(),
            work: Mutex::new(Vec::new()),
            registry: Mutex::new(Vec::new()),
        }
    }

    /// Submissions still queued or running (the `/healthz` "jobs in
    /// flight" figure).
    pub fn in_flight(&self) -> usize {
        self.submissions
            .lock()
            .expect("registry")
            .iter()
            .filter(|s| {
                matches!(
                    s.status,
                    SubmissionStatus::Queued | SubmissionStatus::Running
                )
            })
            .count()
    }

    /// The sweep options a daemon submission runs with. `resume` is
    /// deliberately off: repeat submissions must demonstrate their
    /// cache hits through the *store* (observable, counted), not
    /// through silent directory resume.
    pub fn sweep_options(&self, iterations: Option<u64>, warmup: Option<u64>) -> SweepOptions {
        SweepOptions {
            workers: self.workers,
            root: self.runs_root.clone(),
            store: self.store_root.clone(),
            bench_iterations: iterations,
            bench_warmup: warmup,
            quiet: true,
            ..SweepOptions::default()
        }
    }

    /// Registers a new submission and starts its sweep thread. Returns
    /// `(submission id, sweep id)`.
    pub fn submit(
        self: &Arc<Self>,
        sweep: Sweep,
        iterations: Option<u64>,
        warmup: Option<u64>,
        mode: SubmitMode,
    ) -> (u64, String) {
        let opts = self.sweep_options(iterations, warmup);
        let scaled_id = sweep.clone().scaled(iterations, warmup).sweep_id();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.submissions.lock().expect("registry").push(Submission {
            id,
            sweep: sweep.name.to_string(),
            sweep_id: scaled_id.clone(),
            mode,
            status: SubmissionStatus::Queued,
            progress: SweepProgress {
                done: 0,
                total: sweep.jobs.len(),
                simulated: 0,
                store_hits: 0,
                remote: 0,
                failed: 0,
            },
            error: None,
            report: None,
            workers: Vec::new(),
        });

        let state = Arc::clone(self);
        std::thread::spawn(move || {
            state.update(id, |s| s.status = SubmissionStatus::Running);
            match mode {
                SubmitMode::Detailed => {
                    let outcome = run_sweep_observed(&sweep, &opts, |progress| {
                        let progress = *progress;
                        state.update(id, move |s| s.progress = progress);
                    });
                    match outcome {
                        Ok(outcome) => {
                            if state.store_root.is_some() {
                                state
                                    .store_hits_total
                                    .fetch_add(outcome.store_hits as u64, Ordering::Relaxed);
                                state
                                    .store_inserts_total
                                    .fetch_add(outcome.executed as u64, Ordering::Relaxed);
                            }
                            let report =
                                render_report(&sweep, iterations, warmup, &outcome.results);
                            state.update(id, move |s| {
                                s.status = SubmissionStatus::Done;
                                s.report = Some(report);
                            });
                        }
                        Err(e) => {
                            let message = e.to_string();
                            state.update(id, move |s| {
                                s.status = SubmissionStatus::Error;
                                s.error = Some(message);
                            });
                        }
                    }
                }
                SubmitMode::Sampled => {
                    let scaled = sweep.clone().scaled(iterations, warmup);
                    let workers = if state.workers == 0 {
                        default_workers()
                    } else {
                        state.workers
                    };
                    let (results, hits, inserts) =
                        run_sampled_submission(&scaled, workers, state.store_root.clone(), |p| {
                            let p = *p;
                            state.update(id, move |s| s.progress = p);
                        });
                    if state.store_root.is_some() {
                        state.store_hits_total.fetch_add(hits, Ordering::Relaxed);
                        state
                            .store_inserts_total
                            .fetch_add(inserts, Ordering::Relaxed);
                    }
                    let report = scaled.render(&results);
                    state.update(id, move |s| {
                        s.status = SubmissionStatus::Done;
                        s.report = Some(report);
                    });
                }
            }
        });
        (id, scaled_id)
    }

    /// Applies `f` to the submission with `id`, if it exists.
    fn update(&self, id: u64, f: impl FnOnce(&mut Submission)) {
        let mut registry = self.submissions.lock().expect("registry");
        if let Some(s) = registry.iter_mut().find(|s| s.id == id) {
            f(s);
        }
    }

    /// A snapshot of one submission.
    pub fn submission(&self, id: u64) -> Option<Submission> {
        self.submissions
            .lock()
            .expect("registry")
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// Snapshots of every submission, oldest first.
    pub fn submissions(&self) -> Vec<Submission> {
        self.submissions.lock().expect("registry").clone()
    }

    /// Default requeue window for distributed submissions that do not
    /// pick one.
    pub const DEFAULT_CLAIM_TIMEOUT: Duration = Duration::from_secs(60);

    /// Registers a distributed submission: jobs already in the store
    /// resolve immediately (with their recorded inserting shard as
    /// provenance); the rest form a pull-model work queue drained by
    /// remote workers over `POST /api/work/claim` / `/api/work/result`.
    /// No local simulation happens at all. Returns
    /// `(submission id, sweep id)`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the run directory or writing an artifact
    /// or manifest.
    pub fn submit_distributed(
        &self,
        sweep: Sweep,
        iterations: Option<u64>,
        warmup: Option<u64>,
        claim_timeout: Option<Duration>,
    ) -> io::Result<(u64, String)> {
        let scaled = sweep.clone().scaled(iterations, warmup);
        let sweep_id = scaled.sweep_id();
        let dir = SweepDir::create(&self.runs_root, &sweep_id)?;
        let store = self.store_root.as_ref().map(ResultStore::open);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut items = Vec::with_capacity(scaled.jobs.len());
        let mut results = SweepResults::new();
        let mut write_error: Option<io::Error> = None;
        for job in &scaled.jobs {
            let resolved = store
                .as_ref()
                .and_then(|s| s.load_with_origin(&job.store_key()));
            match resolved {
                Some((doc, origin)) => {
                    if let Err(e) = dir.write(&job.hash_hex(), &doc) {
                        write_error.get_or_insert(e);
                    }
                    results.insert(job.hash_hex(), doc);
                    items.push(WorkItem {
                        state: ItemState::Done,
                        owner: origin,
                        via_store: true,
                        failed: false,
                    });
                }
                None => items.push(WorkItem {
                    state: ItemState::Pending,
                    owner: None,
                    via_store: false,
                    failed: false,
                }),
            }
        }
        if let Some(e) = write_error {
            return Err(e);
        }
        let hits = items.iter().filter(|i| i.via_store).count();
        self.submissions.lock().expect("registry").push(Submission {
            id,
            sweep: sweep.name.to_string(),
            sweep_id: sweep_id.clone(),
            mode: SubmitMode::Detailed,
            status: SubmissionStatus::Running,
            progress: SweepProgress {
                done: hits,
                total: scaled.jobs.len(),
                simulated: 0,
                store_hits: hits,
                remote: 0,
                failed: 0,
            },
            error: None,
            report: None,
            workers: Vec::new(),
        });
        let run = DistributedRun {
            submission: id,
            sweep: scaled,
            dir,
            iterations,
            warmup,
            claim_timeout: claim_timeout.unwrap_or(Self::DEFAULT_CLAIM_TIMEOUT),
            items,
            results,
            store,
        };
        if run.complete() {
            // A fully warm store: nothing to hand out.
            self.finalize_distributed(&run)?;
        }
        self.work.lock().expect("work queue").push(run);
        Ok((id, sweep_id))
    }

    /// Records that `owner` is alive, adding `completed_delta` to its
    /// completed-job count.
    fn touch_worker(&self, owner: &str, completed_delta: u64) {
        let mut registry = self.registry.lock().expect("worker registry");
        match registry.iter_mut().find(|w| w.owner == owner) {
            Some(w) => {
                w.last_seen = Instant::now();
                w.completed += completed_delta;
            }
            None => registry.push(WorkerEntry {
                owner: owner.to_string(),
                last_seen: Instant::now(),
                completed: completed_delta,
            }),
        }
    }

    /// `POST /api/work/claim`: hands `owner` the next pending job of
    /// the oldest incomplete distributed submission. Expired claims
    /// (no result or heartbeat within the run's claim timeout) are
    /// requeued first, so a disconnected worker's jobs are re-issued.
    /// With nothing to hand out, responds `{"idle": true, "active": N}`.
    pub fn claim_work(&self, owner: &str) -> Json {
        self.touch_worker(owner, 0);
        let mut work = self.work.lock().expect("work queue");
        let mut active = 0usize;
        for run in work.iter_mut() {
            if run.complete() {
                continue;
            }
            active += 1;
            for item in run.items.iter_mut() {
                if let ItemState::Claimed { since, .. } = &item.state {
                    if since.elapsed() > run.claim_timeout {
                        item.state = ItemState::Pending;
                    }
                }
            }
            let Some(index) = run.items.iter().position(|i| i.state == ItemState::Pending) else {
                continue;
            };
            run.items[index].state = ItemState::Claimed {
                owner: owner.to_string(),
                since: Instant::now(),
            };
            let job = &run.sweep.jobs[index];
            let mut fields = vec![
                ("submission", Json::from(run.submission)),
                ("index", Json::from(index as u64)),
                ("sweep", Json::from(run.sweep.name)),
                ("key", Json::from(job.store_key())),
                ("label", Json::from(job.label())),
                (
                    "claim_timeout_ms",
                    Json::from(run.claim_timeout.as_millis() as u64),
                ),
            ];
            if let Some(iters) = run.iterations {
                fields.push(("iters", Json::from(iters)));
            }
            if let Some(warmup) = run.warmup {
                fields.push(("warmup", Json::from(warmup)));
            }
            return Json::object(fields);
        }
        Json::object(vec![
            ("idle", Json::from(true)),
            ("active", Json::from(active as u64)),
        ])
    }

    /// `POST /api/work/result`: accepts `owner`'s result for one
    /// claimed job. First result wins; a duplicate (e.g. from a worker
    /// whose claim expired and was re-issued) is acknowledged without
    /// recounting. Finishing the last item finalizes the submission
    /// (manifest with per-shard provenance, rendered report).
    ///
    /// # Errors
    ///
    /// A client-error message for an unknown submission or
    /// out-of-range index.
    pub fn work_result(
        &self,
        owner: &str,
        submission: u64,
        index: usize,
        outcome: Result<Json, String>,
    ) -> Result<Json, String> {
        let mut work = self.work.lock().expect("work queue");
        let Some(run) = work.iter_mut().find(|r| r.submission == submission) else {
            return Err(format!("unknown submission {submission}"));
        };
        if index >= run.items.len() {
            return Err(format!(
                "index {index} out of range for submission {submission} ({} jobs)",
                run.items.len()
            ));
        }
        if run.items[index].state == ItemState::Done {
            self.touch_worker(owner, 0);
            return Ok(Json::object(vec![
                ("ok", Json::from(true)),
                ("duplicate", Json::from(true)),
            ]));
        }
        let job = run.sweep.jobs[index].clone();
        run.items[index].state = ItemState::Done;
        run.items[index].owner = Some(owner.to_string());
        match outcome {
            Ok(doc) => {
                if let Some(s) = &run.store {
                    // Best-effort, with the reporting shard recorded as
                    // the entry's owner — local workers sharing the
                    // store see this job as already complete.
                    let _ = s.insert_claimed(
                        &job.store_key(),
                        &job.hash_hex(),
                        &job.label(),
                        condspec_engine::hash::code_fingerprint(),
                        &doc,
                        owner,
                    );
                }
                if let Err(e) = run.dir.write(&job.hash_hex(), &doc) {
                    return Err(format!("artifact write failed: {e}"));
                }
                run.results.insert(job.hash_hex(), doc);
            }
            Err(_) => run.items[index].failed = true,
        }
        self.touch_worker(owner, 1);

        // Recount from the items so the submission's done/simulated/
        // store_hits/failed are exact no matter how results interleave.
        let done = run
            .items
            .iter()
            .filter(|i| i.state == ItemState::Done)
            .count();
        let store_hits = run.items.iter().filter(|i| i.via_store).count();
        let failed = run.items.iter().filter(|i| i.failed).count();
        let simulated = done - store_hits - failed;
        let progress = SweepProgress {
            done,
            total: run.items.len(),
            simulated,
            store_hits,
            // Every simulation of a distributed submission happens on a
            // remote shard.
            remote: simulated,
            failed,
        };
        let worker_owner = owner.to_string();
        self.update(submission, move |s| {
            s.progress = progress;
            match s.workers.iter_mut().find(|(o, _)| *o == worker_owner) {
                Some((_, count)) => *count += 1,
                None => s.workers.push((worker_owner, 1)),
            }
        });
        if run.complete() {
            if let Err(e) = self.finalize_distributed(run) {
                let message = e.to_string();
                self.update(submission, move |s| {
                    s.status = SubmissionStatus::Error;
                    s.error = Some(message);
                });
            }
        }
        Ok(Json::object(vec![
            ("ok", Json::from(true)),
            ("remaining", Json::from((run.items.len() - done) as u64)),
        ]))
    }

    /// `POST /api/work/heartbeat`: renews `owner`'s liveness, and — when
    /// a claimed `(submission, index)` is named — its claim window, so a
    /// slow simulation is not requeued from under a live worker.
    pub fn work_heartbeat(
        &self,
        owner: &str,
        submission: Option<u64>,
        index: Option<usize>,
    ) -> Json {
        self.touch_worker(owner, 0);
        let mut held = false;
        if let (Some(submission), Some(index)) = (submission, index) {
            let mut work = self.work.lock().expect("work queue");
            if let Some(run) = work.iter_mut().find(|r| r.submission == submission) {
                if let Some(item) = run.items.get_mut(index) {
                    if let ItemState::Claimed {
                        owner: holder,
                        since,
                    } = &mut item.state
                    {
                        if holder == owner {
                            *since = Instant::now();
                            held = true;
                        }
                    }
                }
            }
        }
        Json::object(vec![("ok", Json::from(true)), ("held", Json::from(held))])
    }

    /// Writes the manifest (per-shard provenance included), renders the
    /// report, and marks the submission done.
    fn finalize_distributed(&self, run: &DistributedRun) -> io::Result<()> {
        let statuses: Vec<JobStatus> = run
            .sweep
            .jobs
            .iter()
            .zip(&run.items)
            .map(|(job, item)| {
                let hash = job.hash_hex();
                let status = if run.results.contains_key(&hash) {
                    "ok"
                } else {
                    "failed"
                };
                JobStatus {
                    hash,
                    label: job.label(),
                    status,
                    source: if item.via_store {
                        JobSource::Store
                    } else {
                        JobSource::Simulated
                    },
                    owner: item.owner.clone(),
                }
            })
            .collect();
        run.dir.write_manifest(
            &ManifestInfo {
                sweep_name: run.sweep.name,
                sweep_id: &run.sweep.sweep_id(),
                bench_iterations: run.iterations,
                bench_warmup: run.warmup,
            },
            &statuses,
        )?;
        if self.store_root.is_some() {
            let hits = run.items.iter().filter(|i| i.via_store).count() as u64;
            let simulated = run
                .items
                .iter()
                .filter(|i| !i.via_store && !i.failed)
                .count() as u64;
            self.store_hits_total.fetch_add(hits, Ordering::Relaxed);
            self.store_inserts_total
                .fetch_add(simulated, Ordering::Relaxed);
        }
        let report = run.sweep.render(&run.results);
        self.update(run.submission, move |s| {
            s.status = SubmissionStatus::Done;
            s.report = Some(report);
        });
        Ok(())
    }

    /// Every known worker, first-seen order (for `/healthz`).
    pub fn workers_snapshot(&self) -> Vec<WorkerEntry> {
        self.registry.lock().expect("worker registry").clone()
    }

    /// Work-API claims currently held by workers (for `/healthz`).
    pub fn work_claims_in_flight(&self) -> usize {
        self.work
            .lock()
            .expect("work queue")
            .iter()
            .flat_map(|run| run.items.iter())
            .filter(|i| matches!(i.state, ItemState::Claimed { .. }))
            .count()
    }
}

/// Runs a sampled-mode submission: every benchmark job becomes a
/// functional count pass plus parallel detailed windows
/// (`run_sampled_bench`), whose stitched whole-program report lands
/// under the job's hash so the sweep's ordinary renderer draws the
/// table; attack and variant jobs run detailed through the scheduler.
/// Returns the collected results plus the submission's window-level
/// store hit/insert counts (a sampled job fans into many window jobs,
/// each individually store-cached).
fn run_sampled_submission(
    sweep: &Sweep,
    workers: usize,
    store_root: Option<PathBuf>,
    mut on_progress: impl FnMut(&SweepProgress),
) -> (SweepResults, u64, u64) {
    let store = store_root.map(ResultStore::open);
    let programs = Arc::new(ProgramCache::new());
    let mut results = SweepResults::new();
    let (mut window_hits, mut window_inserts) = (0u64, 0u64);
    let mut progress = SweepProgress {
        done: 0,
        total: sweep.jobs.len(),
        simulated: 0,
        store_hits: 0,
        remote: 0,
        failed: 0,
    };
    for job in &sweep.jobs {
        match SampledBenchSpec::from_bench_job(job) {
            Some(spec) => match run_sampled_bench(&spec, workers, store.as_ref()) {
                Ok(outcome) => {
                    window_hits += outcome.store_hits as u64;
                    window_inserts += outcome.executed as u64;
                    if outcome.executed == 0 && outcome.store_hits > 0 {
                        progress.store_hits += 1;
                    } else {
                        progress.simulated += 1;
                    }
                    results.insert(
                        job.hash_hex(),
                        Json::object(vec![
                            ("job", Json::from(job.hash_hex())),
                            ("key", Json::from(job.canonical_key())),
                            ("mode", Json::from("sampled")),
                            ("total_insts", Json::from(outcome.total_insts)),
                            ("report", outcome.report.to_json()),
                        ]),
                    );
                }
                Err(_) => progress.failed += 1,
            },
            None => {
                let mut run = run_jobs_stored(
                    std::slice::from_ref(job),
                    1,
                    &programs,
                    store.as_ref(),
                    |_, _, _, _| {},
                );
                let (outcome, _, source) = run.remove(0);
                match outcome {
                    Ok(doc) => {
                        match source {
                            JobSource::Store => progress.store_hits += 1,
                            _ => progress.simulated += 1,
                        }
                        results.insert(job.hash_hex(), doc);
                    }
                    Err(_) => progress.failed += 1,
                }
            }
        }
        progress.done += 1;
        on_progress(&progress);
    }
    (results, window_hits, window_inserts)
}

/// Renders a submission's report from its collected results. The scaled
/// sweep renders through the same `Sweep::render` as the CLI, so a
/// daemon report is byte-identical to `condspec report` on the same
/// artifacts.
fn render_report(
    sweep: &Sweep,
    iterations: Option<u64>,
    warmup: Option<u64>,
    results: &SweepResults,
) -> String {
    sweep.clone().scaled(iterations, warmup).render(results)
}

//! Shared daemon state: the submission registry and the background
//! sweep runner.
//!
//! A submission is one accepted sweep request. It runs on its own
//! `std::thread`, which internally shards jobs across the engine's
//! panic-isolated worker pool ([`run_sweep_observed`]); the observer
//! publishes [`SweepProgress`] snapshots into the registry under a
//! mutex, where streaming handlers poll them. Results land in the
//! ordinary run directory and (when configured) the persistent result
//! store, so a daemon-run sweep is indistinguishable on disk from a CLI
//! run of the same sweep.

use condspec_engine::{run_sweep_observed, Sweep, SweepOptions, SweepProgress, SweepResults};
use condspec_stats::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where a submission is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionStatus {
    /// Accepted, thread not yet running the sweep.
    Queued,
    /// The sweep is executing.
    Running,
    /// Finished; all jobs accounted for (some may have failed).
    Done,
    /// The run itself errored (I/O), distinct from failed jobs.
    Error,
}

impl SubmissionStatus {
    /// Stable wire string.
    pub fn key(&self) -> &'static str {
        match self {
            SubmissionStatus::Queued => "queued",
            SubmissionStatus::Running => "running",
            SubmissionStatus::Done => "done",
            SubmissionStatus::Error => "error",
        }
    }
}

/// One accepted sweep submission.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Daemon-assigned id (monotonic per process).
    pub id: u64,
    /// The sweep's short name.
    pub sweep: String,
    /// The content-derived sweep id (of the scaled sweep).
    pub sweep_id: String,
    /// Lifecycle state.
    pub status: SubmissionStatus,
    /// Latest progress snapshot.
    pub progress: SweepProgress,
    /// Run error message when `status == Error`.
    pub error: Option<String>,
    /// Rendered report text, available once `Done`.
    pub report: Option<String>,
}

impl Submission {
    /// The submission as a wire JSON object (without the report body).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::from(self.id)),
            ("sweep", Json::from(self.sweep.as_str())),
            ("sweep_id", Json::from(self.sweep_id.as_str())),
            ("status", Json::from(self.status.key())),
            ("done", Json::from(self.progress.done as u64)),
            ("total", Json::from(self.progress.total as u64)),
            ("simulated", Json::from(self.progress.simulated as u64)),
            ("store_hits", Json::from(self.progress.store_hits as u64)),
            ("failed", Json::from(self.progress.failed as u64)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::from(e.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// State shared by every connection handler and submission thread.
pub struct ServerState {
    /// Worker threads per sweep (0 = engine default).
    pub workers: usize,
    /// Artifact root for daemon-run sweeps.
    pub runs_root: PathBuf,
    /// Persistent store root; `None` disables the store.
    pub store_root: Option<PathBuf>,
    /// Accepted submissions, newest last.
    submissions: Mutex<Vec<Submission>>,
    next_id: AtomicU64,
    /// Total HTTP requests handled (for `/api/metrics`).
    pub requests: AtomicU64,
    /// Store hits across every finished submission (daemon lifetime).
    pub store_hits_total: AtomicU64,
    /// Store inserts (fresh simulations with the store on) across every
    /// finished submission.
    pub store_inserts_total: AtomicU64,
    /// Set by `POST /api/shutdown`; the accept loop exits on the next
    /// connection.
    pub shutdown: AtomicBool,
}

impl ServerState {
    /// Fresh state with no submissions.
    pub fn new(workers: usize, runs_root: PathBuf, store_root: Option<PathBuf>) -> ServerState {
        ServerState {
            workers,
            runs_root,
            store_root,
            submissions: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            store_hits_total: AtomicU64::new(0),
            store_inserts_total: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The sweep options a daemon submission runs with. `resume` is
    /// deliberately off: repeat submissions must demonstrate their
    /// cache hits through the *store* (observable, counted), not
    /// through silent directory resume.
    pub fn sweep_options(&self, iterations: Option<u64>, warmup: Option<u64>) -> SweepOptions {
        SweepOptions {
            workers: self.workers,
            root: self.runs_root.clone(),
            store: self.store_root.clone(),
            bench_iterations: iterations,
            bench_warmup: warmup,
            quiet: true,
            ..SweepOptions::default()
        }
    }

    /// Registers a new submission and starts its sweep thread. Returns
    /// `(submission id, sweep id)`.
    pub fn submit(
        self: &Arc<Self>,
        sweep: Sweep,
        iterations: Option<u64>,
        warmup: Option<u64>,
    ) -> (u64, String) {
        let opts = self.sweep_options(iterations, warmup);
        let scaled_id = sweep.clone().scaled(iterations, warmup).sweep_id();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.submissions.lock().expect("registry").push(Submission {
            id,
            sweep: sweep.name.to_string(),
            sweep_id: scaled_id.clone(),
            status: SubmissionStatus::Queued,
            progress: SweepProgress {
                done: 0,
                total: sweep.jobs.len(),
                simulated: 0,
                store_hits: 0,
                failed: 0,
            },
            error: None,
            report: None,
        });

        let state = Arc::clone(self);
        std::thread::spawn(move || {
            state.update(id, |s| s.status = SubmissionStatus::Running);
            let outcome = run_sweep_observed(&sweep, &opts, |progress| {
                let progress = *progress;
                state.update(id, move |s| s.progress = progress);
            });
            match outcome {
                Ok(outcome) => {
                    if state.store_root.is_some() {
                        state
                            .store_hits_total
                            .fetch_add(outcome.store_hits as u64, Ordering::Relaxed);
                        state
                            .store_inserts_total
                            .fetch_add(outcome.executed as u64, Ordering::Relaxed);
                    }
                    let report = render_report(&sweep, iterations, warmup, &outcome.results);
                    state.update(id, move |s| {
                        s.status = SubmissionStatus::Done;
                        s.report = Some(report);
                    });
                }
                Err(e) => {
                    let message = e.to_string();
                    state.update(id, move |s| {
                        s.status = SubmissionStatus::Error;
                        s.error = Some(message);
                    });
                }
            }
        });
        (id, scaled_id)
    }

    /// Applies `f` to the submission with `id`, if it exists.
    fn update(&self, id: u64, f: impl FnOnce(&mut Submission)) {
        let mut registry = self.submissions.lock().expect("registry");
        if let Some(s) = registry.iter_mut().find(|s| s.id == id) {
            f(s);
        }
    }

    /// A snapshot of one submission.
    pub fn submission(&self, id: u64) -> Option<Submission> {
        self.submissions
            .lock()
            .expect("registry")
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// Snapshots of every submission, oldest first.
    pub fn submissions(&self) -> Vec<Submission> {
        self.submissions.lock().expect("registry").clone()
    }
}

/// Renders a submission's report from its collected results. The scaled
/// sweep renders through the same `Sweep::render` as the CLI, so a
/// daemon report is byte-identical to `condspec report` on the same
/// artifacts.
fn render_report(
    sweep: &Sweep,
    iterations: Option<u64>,
    warmup: Option<u64>,
    results: &SweepResults,
) -> String {
    sweep.clone().scaled(iterations, warmup).render(results)
}

//! Shared daemon state: the submission registry and the background
//! sweep runner.
//!
//! A submission is one accepted sweep request. It runs on its own
//! `std::thread`, which internally shards jobs across the engine's
//! panic-isolated worker pool ([`run_sweep_observed`]); the observer
//! publishes [`SweepProgress`] snapshots into the registry under a
//! mutex, where streaming handlers poll them. Results land in the
//! ordinary run directory and (when configured) the persistent result
//! store, so a daemon-run sweep is indistinguishable on disk from a CLI
//! run of the same sweep.

use condspec_engine::{
    default_workers, run_jobs_stored, run_sampled_bench, run_sweep_observed, JobSource,
    ProgramCache, ResultStore, SampledBenchSpec, Sweep, SweepOptions, SweepProgress, SweepResults,
};
use condspec_stats::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where a submission is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionStatus {
    /// Accepted, thread not yet running the sweep.
    Queued,
    /// The sweep is executing.
    Running,
    /// Finished; all jobs accounted for (some may have failed).
    Done,
    /// The run itself errored (I/O), distinct from failed jobs.
    Error,
}

impl SubmissionStatus {
    /// Stable wire string.
    pub fn key(&self) -> &'static str {
        match self {
            SubmissionStatus::Queued => "queued",
            SubmissionStatus::Running => "running",
            SubmissionStatus::Done => "done",
            SubmissionStatus::Error => "error",
        }
    }
}

/// How a submission runs its benchmark jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// Full detailed simulation of every job (the CLI default).
    #[default]
    Detailed,
    /// SimPoint-style sampling: each benchmark job runs as a functional
    /// count pass plus parallel detailed windows, stitched into a
    /// whole-program estimate. Attack and variant jobs (which have no
    /// sampled form) still run detailed.
    Sampled,
}

impl SubmitMode {
    /// Stable wire string.
    pub fn key(&self) -> &'static str {
        match self {
            SubmitMode::Detailed => "detailed",
            SubmitMode::Sampled => "sampled",
        }
    }

    /// Parses a wire string; the inverse of [`SubmitMode::key`].
    pub fn from_key(key: &str) -> Option<SubmitMode> {
        match key {
            "detailed" => Some(SubmitMode::Detailed),
            "sampled" => Some(SubmitMode::Sampled),
            _ => None,
        }
    }
}

/// One accepted sweep submission.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Daemon-assigned id (monotonic per process).
    pub id: u64,
    /// The sweep's short name.
    pub sweep: String,
    /// The content-derived sweep id (of the scaled sweep).
    pub sweep_id: String,
    /// How the submission runs its benchmark jobs.
    pub mode: SubmitMode,
    /// Lifecycle state.
    pub status: SubmissionStatus,
    /// Latest progress snapshot.
    pub progress: SweepProgress,
    /// Run error message when `status == Error`.
    pub error: Option<String>,
    /// Rendered report text, available once `Done`.
    pub report: Option<String>,
}

impl Submission {
    /// The submission as a wire JSON object (without the report body).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::from(self.id)),
            ("sweep", Json::from(self.sweep.as_str())),
            ("sweep_id", Json::from(self.sweep_id.as_str())),
            ("mode", Json::from(self.mode.key())),
            ("status", Json::from(self.status.key())),
            ("done", Json::from(self.progress.done as u64)),
            ("total", Json::from(self.progress.total as u64)),
            ("simulated", Json::from(self.progress.simulated as u64)),
            ("store_hits", Json::from(self.progress.store_hits as u64)),
            ("failed", Json::from(self.progress.failed as u64)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::from(e.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// State shared by every connection handler and submission thread.
pub struct ServerState {
    /// Worker threads per sweep (0 = engine default).
    pub workers: usize,
    /// Artifact root for daemon-run sweeps.
    pub runs_root: PathBuf,
    /// Persistent store root; `None` disables the store.
    pub store_root: Option<PathBuf>,
    /// Accepted submissions, newest last.
    submissions: Mutex<Vec<Submission>>,
    next_id: AtomicU64,
    /// Total HTTP requests handled (for `/api/metrics`).
    pub requests: AtomicU64,
    /// Store hits across every finished submission (daemon lifetime).
    pub store_hits_total: AtomicU64,
    /// Store inserts (fresh simulations with the store on) across every
    /// finished submission.
    pub store_inserts_total: AtomicU64,
    /// Set by `POST /api/shutdown`; the accept loop exits on the next
    /// connection.
    pub shutdown: AtomicBool,
    /// When the state was created; `/healthz` reports uptime from here.
    pub started: std::time::Instant,
}

impl ServerState {
    /// Fresh state with no submissions.
    pub fn new(workers: usize, runs_root: PathBuf, store_root: Option<PathBuf>) -> ServerState {
        ServerState {
            workers,
            runs_root,
            store_root,
            submissions: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            store_hits_total: AtomicU64::new(0),
            store_inserts_total: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: std::time::Instant::now(),
        }
    }

    /// Submissions still queued or running (the `/healthz` "jobs in
    /// flight" figure).
    pub fn in_flight(&self) -> usize {
        self.submissions
            .lock()
            .expect("registry")
            .iter()
            .filter(|s| {
                matches!(
                    s.status,
                    SubmissionStatus::Queued | SubmissionStatus::Running
                )
            })
            .count()
    }

    /// The sweep options a daemon submission runs with. `resume` is
    /// deliberately off: repeat submissions must demonstrate their
    /// cache hits through the *store* (observable, counted), not
    /// through silent directory resume.
    pub fn sweep_options(&self, iterations: Option<u64>, warmup: Option<u64>) -> SweepOptions {
        SweepOptions {
            workers: self.workers,
            root: self.runs_root.clone(),
            store: self.store_root.clone(),
            bench_iterations: iterations,
            bench_warmup: warmup,
            quiet: true,
            ..SweepOptions::default()
        }
    }

    /// Registers a new submission and starts its sweep thread. Returns
    /// `(submission id, sweep id)`.
    pub fn submit(
        self: &Arc<Self>,
        sweep: Sweep,
        iterations: Option<u64>,
        warmup: Option<u64>,
        mode: SubmitMode,
    ) -> (u64, String) {
        let opts = self.sweep_options(iterations, warmup);
        let scaled_id = sweep.clone().scaled(iterations, warmup).sweep_id();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.submissions.lock().expect("registry").push(Submission {
            id,
            sweep: sweep.name.to_string(),
            sweep_id: scaled_id.clone(),
            mode,
            status: SubmissionStatus::Queued,
            progress: SweepProgress {
                done: 0,
                total: sweep.jobs.len(),
                simulated: 0,
                store_hits: 0,
                failed: 0,
            },
            error: None,
            report: None,
        });

        let state = Arc::clone(self);
        std::thread::spawn(move || {
            state.update(id, |s| s.status = SubmissionStatus::Running);
            match mode {
                SubmitMode::Detailed => {
                    let outcome = run_sweep_observed(&sweep, &opts, |progress| {
                        let progress = *progress;
                        state.update(id, move |s| s.progress = progress);
                    });
                    match outcome {
                        Ok(outcome) => {
                            if state.store_root.is_some() {
                                state
                                    .store_hits_total
                                    .fetch_add(outcome.store_hits as u64, Ordering::Relaxed);
                                state
                                    .store_inserts_total
                                    .fetch_add(outcome.executed as u64, Ordering::Relaxed);
                            }
                            let report =
                                render_report(&sweep, iterations, warmup, &outcome.results);
                            state.update(id, move |s| {
                                s.status = SubmissionStatus::Done;
                                s.report = Some(report);
                            });
                        }
                        Err(e) => {
                            let message = e.to_string();
                            state.update(id, move |s| {
                                s.status = SubmissionStatus::Error;
                                s.error = Some(message);
                            });
                        }
                    }
                }
                SubmitMode::Sampled => {
                    let scaled = sweep.clone().scaled(iterations, warmup);
                    let workers = if state.workers == 0 {
                        default_workers()
                    } else {
                        state.workers
                    };
                    let (results, hits, inserts) =
                        run_sampled_submission(&scaled, workers, state.store_root.clone(), |p| {
                            let p = *p;
                            state.update(id, move |s| s.progress = p);
                        });
                    if state.store_root.is_some() {
                        state.store_hits_total.fetch_add(hits, Ordering::Relaxed);
                        state
                            .store_inserts_total
                            .fetch_add(inserts, Ordering::Relaxed);
                    }
                    let report = scaled.render(&results);
                    state.update(id, move |s| {
                        s.status = SubmissionStatus::Done;
                        s.report = Some(report);
                    });
                }
            }
        });
        (id, scaled_id)
    }

    /// Applies `f` to the submission with `id`, if it exists.
    fn update(&self, id: u64, f: impl FnOnce(&mut Submission)) {
        let mut registry = self.submissions.lock().expect("registry");
        if let Some(s) = registry.iter_mut().find(|s| s.id == id) {
            f(s);
        }
    }

    /// A snapshot of one submission.
    pub fn submission(&self, id: u64) -> Option<Submission> {
        self.submissions
            .lock()
            .expect("registry")
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// Snapshots of every submission, oldest first.
    pub fn submissions(&self) -> Vec<Submission> {
        self.submissions.lock().expect("registry").clone()
    }
}

/// Runs a sampled-mode submission: every benchmark job becomes a
/// functional count pass plus parallel detailed windows
/// (`run_sampled_bench`), whose stitched whole-program report lands
/// under the job's hash so the sweep's ordinary renderer draws the
/// table; attack and variant jobs run detailed through the scheduler.
/// Returns the collected results plus the submission's window-level
/// store hit/insert counts (a sampled job fans into many window jobs,
/// each individually store-cached).
fn run_sampled_submission(
    sweep: &Sweep,
    workers: usize,
    store_root: Option<PathBuf>,
    mut on_progress: impl FnMut(&SweepProgress),
) -> (SweepResults, u64, u64) {
    let store = store_root.map(ResultStore::open);
    let programs = Arc::new(ProgramCache::new());
    let mut results = SweepResults::new();
    let (mut window_hits, mut window_inserts) = (0u64, 0u64);
    let mut progress = SweepProgress {
        done: 0,
        total: sweep.jobs.len(),
        simulated: 0,
        store_hits: 0,
        failed: 0,
    };
    for job in &sweep.jobs {
        match SampledBenchSpec::from_bench_job(job) {
            Some(spec) => match run_sampled_bench(&spec, workers, store.as_ref()) {
                Ok(outcome) => {
                    window_hits += outcome.store_hits as u64;
                    window_inserts += outcome.executed as u64;
                    if outcome.executed == 0 && outcome.store_hits > 0 {
                        progress.store_hits += 1;
                    } else {
                        progress.simulated += 1;
                    }
                    results.insert(
                        job.hash_hex(),
                        Json::object(vec![
                            ("job", Json::from(job.hash_hex())),
                            ("key", Json::from(job.canonical_key())),
                            ("mode", Json::from("sampled")),
                            ("total_insts", Json::from(outcome.total_insts)),
                            ("report", outcome.report.to_json()),
                        ]),
                    );
                }
                Err(_) => progress.failed += 1,
            },
            None => {
                let mut run = run_jobs_stored(
                    std::slice::from_ref(job),
                    1,
                    &programs,
                    store.as_ref(),
                    |_, _, _, _| {},
                );
                let (outcome, _, source) = run.remove(0);
                match outcome {
                    Ok(doc) => {
                        match source {
                            JobSource::Store => progress.store_hits += 1,
                            _ => progress.simulated += 1,
                        }
                        results.insert(job.hash_hex(), doc);
                    }
                    Err(_) => progress.failed += 1,
                }
            }
        }
        progress.done += 1;
        on_progress(&progress);
    }
    (results, window_hits, window_inserts)
}

/// Renders a submission's report from its collected results. The scaled
/// sweep renders through the same `Sweep::render` as the CLI, so a
/// daemon report is byte-identical to `condspec report` on the same
/// artifacts.
fn render_report(
    sweep: &Sweep,
    iterations: Option<u64>,
    warmup: Option<u64>,
    results: &SweepResults,
) -> String {
    sweep.clone().scaled(iterations, warmup).render(results)
}

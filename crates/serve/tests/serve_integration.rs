//! End-to-end daemon tests over real sockets: submit a scaled sweep
//! twice, watch the second submission come entirely from the persistent
//! store, stream progress, fetch reports and traces, and shut down
//! cleanly.

use condspec_serve::{ServeConfig, Server};
use condspec_stats::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("condspec-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One HTTP exchange: returns `(status, body)`. Chunked bodies are
/// de-framed; the connection closes after every response.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("header terminator");
    let payload = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, payload)
}

/// Reassembles a chunked body.
fn dechunk(mut payload: &str) -> String {
    let mut out = String::new();
    while let Some((size_line, rest)) = payload.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            break;
        };
        if size == 0 {
            break;
        }
        out.push_str(&rest[..size]);
        payload = &rest[size + 2..]; // skip chunk body + CRLF
    }
    out
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, "")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(addr, "POST", path, body)
}

/// Polls a submission until it leaves the queued/running states.
fn await_submission(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = get(addr, &format!("/api/sweeps/{id}"));
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).expect("submission JSON");
        match doc.get("status").and_then(Json::as_str) {
            Some("done") | Some("error") => return doc,
            _ => {}
        }
        assert!(Instant::now() < deadline, "submission {id} timed out");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One pull-model worker: claims jobs over the work API, simulates them
/// in-process, reports results, and exits once the daemon is idle with
/// no active distributed runs. Returns the number of jobs it completed.
fn drive_worker(addr: SocketAddr, owner: &str) -> u64 {
    let programs = std::sync::Arc::new(condspec_engine::ProgramCache::new());
    let mut completed = 0u64;
    loop {
        let (status, body) = post(
            addr,
            "/api/work/claim",
            &format!("{{\"owner\":\"{owner}\"}}"),
        );
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).expect("claim JSON");
        if doc.get("idle").and_then(Json::as_bool) == Some(true) {
            if doc.get("active").and_then(Json::as_u64) == Some(0) {
                return completed;
            }
            std::thread::sleep(Duration::from_millis(25));
            continue;
        }
        let submission = doc
            .get("submission")
            .and_then(Json::as_u64)
            .expect("submission id");
        let index = doc.get("index").and_then(Json::as_u64).expect("index");
        let sweep_name = doc.get("sweep").and_then(Json::as_str).expect("sweep name");
        let key = doc.get("key").and_then(Json::as_str).expect("store key");
        assert!(
            doc.get("claim_timeout_ms").and_then(Json::as_u64).is_some(),
            "descriptor names its requeue window: {doc:?}"
        );
        // Reconstruct the job exactly as `condspec worker --attach` does:
        // from the sweep name + index, validated against the store key.
        let sweep = condspec_engine::Sweep::by_name(sweep_name)
            .expect("known sweep")
            .scaled(
                doc.get("iters").and_then(Json::as_u64),
                doc.get("warmup").and_then(Json::as_u64),
            );
        let job = sweep.jobs[index as usize].clone();
        assert_eq!(
            job.store_key(),
            key,
            "descriptor key matches reconstruction"
        );
        let mut results = condspec_engine::run_jobs_stored(
            std::slice::from_ref(&job),
            1,
            &programs,
            None,
            |_, _, _, _| {},
        );
        let (outcome, _, _) = results.pop().expect("one result");
        let mut fields = vec![
            ("owner", Json::from(owner)),
            ("submission", Json::from(submission)),
            ("index", Json::from(index)),
        ];
        match outcome {
            Ok(artifact) => fields.push(("artifact", artifact)),
            Err(message) => fields.push(("error", Json::from(message.as_str()))),
        }
        let (status, ack) = post(addr, "/api/work/result", &Json::object(fields).render());
        assert_eq!(status, 200, "{ack}");
        let ack = Json::parse(&ack).expect("ack JSON");
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        completed += 1;
    }
}

#[test]
fn distributed_submission_is_drained_by_pull_workers() {
    let runs_root = scratch("dist-runs");
    let store_root = scratch("dist-store");
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        runs_root: runs_root.clone(),
        store_root: Some(store_root.clone()),
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run().expect("serve"));

    // With no distributed runs registered, a claim reports idle.
    let (status, body) = post(addr, "/api/work/claim", "{\"owner\":\"scout\"}");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("claim JSON");
    assert_eq!(doc.get("idle").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("active").and_then(Json::as_u64), Some(0));
    let (status, _) = post(addr, "/api/work/claim", "{}");
    assert_eq!(status, 400, "owner is required");

    // A distributed submission queues every job for remote workers.
    let (status, body) = post(
        addr,
        "/api/sweeps",
        "{\"sweep\":\"icache\",\"iters\":2,\"warmup\":1,\"distributed\":true}",
    );
    assert_eq!(status, 202, "{body}");
    let receipt = Json::parse(&body).expect("receipt");
    let id = receipt
        .get("submission")
        .and_then(Json::as_u64)
        .expect("id");
    assert_eq!(
        receipt.get("distributed").and_then(Json::as_bool),
        Some(true)
    );

    // Two in-process workers race the pull API until the queue drains.
    let (c1, c2) = std::thread::scope(|scope| {
        let w1 = scope.spawn(move || drive_worker(addr, "w1"));
        let w2 = scope.spawn(move || drive_worker(addr, "w2"));
        (w1.join().expect("w1"), w2.join().expect("w2"))
    });

    let done = await_submission(addr, id);
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    let total = done.get("total").and_then(Json::as_u64).expect("total");
    assert_eq!(c1 + c2, total, "every job reported exactly once");
    assert_eq!(done.get("simulated").and_then(Json::as_u64), Some(total));
    assert_eq!(done.get("store_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(done.get("failed").and_then(Json::as_u64), Some(0));
    // All simulation was remote, and the per-worker split is reported.
    assert_eq!(done.get("remote").and_then(Json::as_u64), Some(total));
    let workers = done
        .get("workers")
        .and_then(Json::as_array)
        .expect("workers array");
    let credited: u64 = workers
        .iter()
        .map(|w| w.get("simulated").and_then(Json::as_u64).expect("count"))
        .sum();
    assert_eq!(credited, total);
    for w in workers {
        let owner = w.get("owner").and_then(Json::as_str).expect("owner");
        assert!(matches!(owner, "w1" | "w2"), "unexpected worker {owner}");
    }

    // The manifest carries per-shard provenance and the report renders.
    let (status, report) = get(addr, &format!("/api/sweeps/{id}/report"));
    assert_eq!(status, 200);
    assert!(report.contains("ICache-hit filter"), "{report}");
    let run_dir = std::fs::read_dir(&runs_root)
        .expect("runs root")
        .map(|e| e.expect("entry").path())
        .find(|p| p.is_dir())
        .expect("run dir");
    let manifest = std::fs::read_to_string(run_dir.join("manifest.json")).expect("manifest");
    let owned =
        manifest.matches("\"owner\":\"w1\"").count() + manifest.matches("\"owner\":\"w2\"").count();
    assert_eq!(owned as u64, total, "every row names its shard: {manifest}");

    // /healthz shows the fleet: connected workers with heartbeat ages,
    // and no claims in flight once the queue is drained.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let health = Json::parse(&body).expect("healthz JSON");
    let connected = health
        .get("workers_connected")
        .and_then(Json::as_u64)
        .expect("workers_connected");
    assert!(connected >= 3, "scout + both workers seen: {body}");
    let fleet = health
        .get("workers")
        .and_then(Json::as_array)
        .expect("workers");
    assert!(fleet.iter().any(|w| {
        w.get("owner").and_then(Json::as_str) == Some("w1")
            && w.get("last_heartbeat_secs")
                .and_then(Json::as_u64)
                .is_some()
    }));
    assert_eq!(
        health.get("leases_in_flight").and_then(Json::as_u64),
        Some(0)
    );

    // Requeue-on-disconnect: a ghost worker claims a job from a fresh
    // (cold-key) submission with a 100ms window and vanishes; the claim
    // expires and the same job is re-issued to a live worker.
    let (status, body) = post(
        addr,
        "/api/sweeps",
        "{\"sweep\":\"icache\",\"iters\":3,\"warmup\":1,\"distributed\":true,\
         \"claim_timeout_ms\":100}",
    );
    assert_eq!(status, 202, "{body}");
    let second = Json::parse(&body)
        .expect("receipt")
        .get("submission")
        .and_then(Json::as_u64)
        .expect("id");
    let (status, body) = post(addr, "/api/work/claim", "{\"owner\":\"ghost\"}");
    assert_eq!(status, 200, "{body}");
    let ghost_claim = Json::parse(&body).expect("claim JSON");
    assert_eq!(
        ghost_claim.get("submission").and_then(Json::as_u64),
        Some(second)
    );
    let ghost_index = ghost_claim
        .get("index")
        .and_then(Json::as_u64)
        .expect("index");
    assert_eq!(
        ghost_claim.get("claim_timeout_ms").and_then(Json::as_u64),
        Some(100)
    );
    std::thread::sleep(Duration::from_millis(150));

    // A heartbeat from someone else does not renew the expired claim...
    let (_, body) = post(
        addr,
        "/api/work/heartbeat",
        &format!("{{\"owner\":\"rescuer\",\"submission\":{second},\"index\":{ghost_index}}}"),
    );
    let beat = Json::parse(&body).expect("heartbeat JSON");
    assert_eq!(beat.get("held").and_then(Json::as_bool), Some(false));

    // ...and the next claim re-issues the ghost's job.
    let (status, body) = post(addr, "/api/work/claim", "{\"owner\":\"rescuer\"}");
    assert_eq!(status, 200, "{body}");
    let reissued = Json::parse(&body).expect("claim JSON");
    assert_eq!(
        reissued.get("submission").and_then(Json::as_u64),
        Some(second)
    );
    assert_eq!(
        reissued.get("index").and_then(Json::as_u64),
        Some(ghost_index)
    );

    // Holding the claim, the rescuer's heartbeat renews it.
    let (_, body) = post(
        addr,
        "/api/work/heartbeat",
        &format!("{{\"owner\":\"rescuer\",\"submission\":{second},\"index\":{ghost_index}}}"),
    );
    let beat = Json::parse(&body).expect("heartbeat JSON");
    assert_eq!(beat.get("held").and_then(Json::as_bool), Some(true));

    // The rescuer simulates and reports the job; the ghost's late
    // report for the same index is acknowledged as a duplicate.
    let programs = std::sync::Arc::new(condspec_engine::ProgramCache::new());
    let sweep = condspec_engine::Sweep::by_name("icache")
        .expect("icache")
        .scaled(Some(3), Some(1));
    let job = sweep.jobs[ghost_index as usize].clone();
    let mut results = condspec_engine::run_jobs_stored(
        std::slice::from_ref(&job),
        1,
        &programs,
        None,
        |_, _, _, _| {},
    );
    let artifact = results.pop().expect("result").0.expect("job ok");
    let (status, body) = post(
        addr,
        "/api/work/result",
        &Json::object(vec![
            ("owner", Json::from("rescuer")),
            ("submission", Json::from(second)),
            ("index", Json::from(ghost_index)),
            ("artifact", artifact),
        ])
        .render(),
    );
    assert_eq!(status, 200, "{body}");
    let ack = Json::parse(&body).expect("ack JSON");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert!(ack.get("duplicate").is_none(), "first report wins: {body}");
    let (status, body) = post(
        addr,
        "/api/work/result",
        &format!(
            "{{\"owner\":\"ghost\",\"submission\":{second},\"index\":{ghost_index},\
             \"error\":\"stale claim\"}}"
        ),
    );
    assert_eq!(status, 200, "{body}");
    let ack = Json::parse(&body).expect("ack JSON");
    assert_eq!(ack.get("duplicate").and_then(Json::as_bool), Some(true));
    let (_, body) = get(addr, &format!("/api/sweeps/{second}"));
    let snapshot = Json::parse(&body).expect("submission JSON");
    assert_eq!(
        snapshot.get("failed").and_then(Json::as_u64),
        Some(0),
        "the duplicate error report changed nothing: {body}"
    );
    // Unknown submissions and out-of-range indices are client errors.
    let (status, _) = post(
        addr,
        "/api/work/result",
        "{\"owner\":\"x\",\"submission\":999,\"index\":0,\"error\":\"nope\"}",
    );
    assert_eq!(status, 404);

    let (status, body) = post(addr, "/api/shutdown", "");
    assert_eq!(status, 200, "{body}");
    daemon.join().expect("daemon thread exits cleanly");

    std::fs::remove_dir_all(&runs_root).ok();
    std::fs::remove_dir_all(&store_root).ok();
}

#[test]
fn daemon_round_trip_with_warm_store_second_submission() {
    let runs_root = scratch("runs");
    let store_root = scratch("store");
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        runs_root: runs_root.clone(),
        store_root: Some(store_root.clone()),
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run().expect("serve"));

    // Liveness + index.
    let (status, body) = get(addr, "/api/health");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\":true"), "{body}");
    let (status, body) = get(addr, "/");
    assert_eq!(status, 200);
    assert!(body.contains("/api/sweeps"), "{body}");

    // Health endpoint: version, uptime, store root, jobs in flight.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let health = Json::parse(&body).expect("healthz JSON");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        health.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(health.get("uptime_secs").and_then(Json::as_u64).is_some());
    assert_eq!(
        health.get("store_root").and_then(Json::as_str),
        Some(store_root.display().to_string().as_str())
    );
    assert_eq!(health.get("jobs_in_flight").and_then(Json::as_u64), Some(0));

    // Leak matrix endpoint: one cell when both axes are pinned, claim
    // verdict only when every defense column runs.
    let (status, body) = get(addr, "/api/leaks?variant=v1&defense=origin");
    assert_eq!(status, 200, "{body}");
    let leaks = Json::parse(&body).expect("leaks JSON");
    let cells = leaks.get("cells").and_then(Json::as_array).expect("cells");
    assert_eq!(cells.len(), 1);
    assert_eq!(
        cells[0].get("cache_leaked").and_then(Json::as_bool),
        Some(true),
        "v1 leaks through the cache under origin"
    );
    assert!(leaks.get("claim").is_none(), "single column has no verdict");
    let (status, body) = get(addr, "/api/leaks?variant=rsb");
    assert_eq!(status, 200, "{body}");
    let leaks = Json::parse(&body).expect("leaks JSON");
    let cells = leaks.get("cells").and_then(Json::as_array).expect("cells");
    assert_eq!(cells.len(), 4, "one cell per defense");
    assert_eq!(
        leaks.get("claim").and_then(Json::as_str),
        Some("REPRODUCED")
    );
    let (status, _) = get(addr, "/api/leaks?variant=vax");
    assert_eq!(status, 400);

    // Bad submissions are rejected, not crashed on.
    let (status, _) = post(addr, "/api/sweeps", "not json");
    assert_eq!(status, 400);
    let (status, body) = post(addr, "/api/sweeps", "{\"sweep\":\"fig9\"}");
    assert_eq!(status, 400);
    assert!(body.contains("unknown sweep"), "{body}");
    let (status, _) = get(addr, "/api/sweeps/999");
    assert_eq!(status, 404);

    // First submission: a scaled-down icache sweep, cold store.
    let submit_body = "{\"sweep\":\"icache\",\"iters\":2,\"warmup\":1}";
    let (status, body) = post(addr, "/api/sweeps", submit_body);
    assert_eq!(status, 202, "{body}");
    let accepted = Json::parse(&body).expect("submission receipt");
    let first_id = accepted
        .get("submission")
        .and_then(Json::as_u64)
        .expect("id");
    let sweep_id = accepted
        .get("sweep_id")
        .and_then(Json::as_str)
        .expect("sweep id")
        .to_string();

    let first = await_submission(addr, first_id);
    assert_eq!(first.get("status").and_then(Json::as_str), Some("done"));
    let total = first.get("total").and_then(Json::as_u64).expect("total");
    assert!(total > 0);
    assert_eq!(first.get("simulated").and_then(Json::as_u64), Some(total));
    assert_eq!(first.get("store_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(first.get("failed").and_then(Json::as_u64), Some(0));

    // Second identical submission: 100% persistent-store hits.
    let (status, body) = post(addr, "/api/sweeps", submit_body);
    assert_eq!(status, 202, "{body}");
    let second_id = Json::parse(&body)
        .expect("receipt")
        .get("submission")
        .and_then(Json::as_u64)
        .expect("id");
    let second = await_submission(addr, second_id);
    assert_eq!(second.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(second.get("store_hits").and_then(Json::as_u64), Some(total));
    assert_eq!(second.get("simulated").and_then(Json::as_u64), Some(0));

    // Reports: both submissions render identical text, and the
    // by-sweep-id report endpoint agrees.
    let (status, first_report) = get(addr, &format!("/api/sweeps/{first_id}/report"));
    assert_eq!(status, 200);
    assert!(first_report.contains("ICache-hit filter"), "{first_report}");
    let (_, second_report) = get(addr, &format!("/api/sweeps/{second_id}/report"));
    assert_eq!(second_report, first_report, "store hits change no cell");
    let (status, by_id_report) = get(addr, &format!("/api/report/{sweep_id}"));
    assert_eq!(status, 200);
    assert_eq!(by_id_report, first_report);

    // The progress stream replays to completion as parseable NDJSON.
    let (status, stream_body) = get(addr, &format!("/api/sweeps/{first_id}/stream"));
    assert_eq!(status, 200);
    let lines: Vec<&str> = stream_body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "stream produced no snapshots");
    let last = Json::parse(lines.last().expect("line")).expect("snapshot JSON");
    assert_eq!(last.get("status").and_then(Json::as_str), Some("done"));

    // Store stats + metrics reflect the two submissions.
    let (status, body) = get(addr, "/api/store/stats");
    assert_eq!(status, 200, "{body}");
    let stats = Json::parse(&body).expect("stats JSON");
    let metrics = stats.get("metrics").expect("metrics object");
    assert_eq!(
        metrics.get("store.entries").and_then(Json::as_u64),
        Some(total),
        "one store entry per job"
    );
    assert_eq!(
        metrics.get("store.hits").and_then(Json::as_u64),
        Some(total)
    );
    assert_eq!(
        metrics.get("store.inserts").and_then(Json::as_u64),
        Some(total)
    );
    let (status, body) = get(addr, "/api/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("\"serve.requests\""), "{body}");
    assert!(body.contains("\"serve.submissions\":2"), "{body}");

    // Sampled-mode submission: same sweep, SimPoint-style windows.
    let (status, body) = post(
        addr,
        "/api/sweeps",
        "{\"sweep\":\"icache\",\"iters\":2,\"warmup\":1,\"mode\":\"vax\"}",
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown mode"), "{body}");
    let (status, body) = post(
        addr,
        "/api/sweeps",
        "{\"sweep\":\"icache\",\"iters\":2,\"warmup\":1,\"mode\":\"sampled\"}",
    );
    assert_eq!(status, 202, "{body}");
    let sampled_id = Json::parse(&body)
        .expect("receipt")
        .get("submission")
        .and_then(Json::as_u64)
        .expect("id");
    let sampled = await_submission(addr, sampled_id);
    assert_eq!(sampled.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(sampled.get("mode").and_then(Json::as_str), Some("sampled"));
    assert_eq!(sampled.get("failed").and_then(Json::as_u64), Some(0));
    let (status, sampled_report) = get(addr, &format!("/api/sweeps/{sampled_id}/report"));
    assert_eq!(status, 200);
    assert!(
        sampled_report.contains("ICache-hit filter"),
        "{sampled_report}"
    );

    // Checkpoint objects: the listing starts empty, reflects inserts,
    // and the store stats count checkpoints separately from results.
    let (status, body) = get(addr, "/api/checkpoints");
    assert_eq!(status, 200, "{body}");
    let listing = Json::parse(&body).expect("checkpoints JSON");
    assert_eq!(listing.get("count").and_then(Json::as_u64), Some(0));
    let store = condspec_engine::ResultStore::open(&store_root);
    let key = condspec_engine::checkpoint_store_key("gcc", "paper-default", 1000, 500);
    store
        .insert_checkpoint(
            &key,
            "kind=checkpoint;workload=gcc;machine=paper-default;total=1000;inst=500",
            "gcc@500",
            7,
            &Json::object(vec![("schema", Json::from("condspec-checkpoint-v1"))]),
        )
        .expect("insert checkpoint");
    let (status, body) = get(addr, "/api/checkpoints");
    assert_eq!(status, 200, "{body}");
    let listing = Json::parse(&body).expect("checkpoints JSON");
    assert_eq!(listing.get("count").and_then(Json::as_u64), Some(1));
    let row = listing
        .get("checkpoints")
        .and_then(Json::as_array)
        .and_then(<[Json]>::first)
        .expect("one row");
    assert_eq!(row.get("key").and_then(Json::as_str), Some(key.as_str()));
    assert_eq!(row.get("label").and_then(Json::as_str), Some("gcc@500"));
    let (status, body) = get(addr, "/api/store/stats");
    assert_eq!(status, 200, "{body}");
    let stats = Json::parse(&body).expect("stats JSON");
    let metrics = stats.get("metrics").expect("metrics object");
    assert_eq!(
        metrics.get("store.checkpoints").and_then(Json::as_u64),
        Some(1)
    );

    // Single-job submission: a store hit for a job the sweep already ran.
    let (status, body) = post(
        addr,
        "/api/jobs",
        "{\"kind\":\"bench\",\"benchmark\":\"gcc\",\"defense\":\"cache-hit-tpbuf\",\
         \"iters\":2,\"warmup\":1}",
    );
    assert_eq!(status, 200, "{body}");
    let job = Json::parse(&body).expect("job JSON");
    assert_eq!(job.get("source").and_then(Json::as_str), Some("store"));
    assert!(job.get("artifact").and_then(|a| a.get("report")).is_some());
    let (status, body) = post(
        addr,
        "/api/jobs",
        "{\"kind\":\"variant\",\"variant\":\"v1\",\"defense\":\"origin\"}",
    );
    assert_eq!(status, 200, "{body}");
    let job = Json::parse(&body).expect("job JSON");
    assert_eq!(
        job.get("artifact").and_then(|a| a.get("leaked")?.as_bool()),
        Some(true),
        "v1 leaks under origin"
    );

    // Trace and time-series endpoints.
    let (status, body) = get(
        addr,
        "/api/trace?variant=v1&defense=cache-hit-tpbuf&events=64",
    );
    assert_eq!(status, 200);
    assert!(body.contains("traceEvents"), "{body}");
    let (status, _) = get(addr, "/api/trace?variant=vax");
    assert_eq!(status, 400);
    let (status, body) = get(
        addr,
        "/api/timeseries?benchmark=gcc&iters=2&warmup=1&window=2000&rows=16",
    );
    assert_eq!(status, 200);
    assert!(body.contains("timeseries"), "{body}");
    let (status, _) = get(addr, "/api/timeseries?benchmark=vax");
    assert_eq!(status, 400);

    // Graceful shutdown: the accept loop exits and the thread joins.
    let (status, body) = post(addr, "/api/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("shutting_down"), "{body}");
    daemon.join().expect("daemon thread exits cleanly");

    std::fs::remove_dir_all(&runs_root).ok();
    std::fs::remove_dir_all(&store_root).ok();
}

//! Integration tests for pipeline event tracing on a real core run:
//! lifecycle ordering, cycle monotonicity, squash and block context,
//! exact interaction with the idle fast-forward scheduler, and drop
//! accounting at buffer capacity.

use condspec_frontend::{FrontEnd, PredictorConfig};
use condspec_isa::{AluOp, BranchCond, Program, ProgramBuilder, Reg};
use condspec_mem::{
    page_number, CacheHierarchy, HierarchyConfig, LruUpdate, PageTable, Tlb, TlbConfig,
};
use condspec_pipeline::policy::{
    BlockFilter, DispatchInfo, IqEntryView, MemAccessQuery, MemDecision, SecurityPolicy,
};
use condspec_pipeline::{Core, CoreConfig, ExitReason, SquashCause, TraceEvent};
use std::collections::HashMap;

fn core_with(policy: Box<dyn SecurityPolicy>) -> Core {
    Core::new(
        CoreConfig::paper_default(),
        FrontEnd::new(PredictorConfig::paper_default()),
        CacheHierarchy::new(HierarchyConfig::paper_default()),
        Tlb::new(TlbConfig::paper_default()),
        PageTable::new(),
        policy,
    )
}

/// Blocks every load's first `n` issue attempts, then permits it.
struct BlockFirstN {
    n: u32,
    attempts: HashMap<u64, u32>,
}

impl SecurityPolicy for BlockFirstN {
    fn name(&self) -> &'static str {
        "trace-test-block-first-n"
    }
    fn on_dispatch(&mut self, _info: DispatchInfo, _older: &[IqEntryView]) {}
    fn suspect_on_issue(&self, _slot: usize) -> bool {
        true
    }
    fn on_issue(&mut self, _slot: usize) {}
    fn on_slot_freed(&mut self, _slot: usize) {}
    fn has_pending_dependence(&self, _slot: usize) -> bool {
        false
    }
    fn check_mem_access(&mut self, query: &MemAccessQuery) -> MemDecision {
        let count = self.attempts.entry(query.seq).or_insert(0);
        *count += 1;
        if *count <= self.n {
            MemDecision::Block {
                filter: BlockFilter::Baseline,
            }
        } else {
            MemDecision::Proceed {
                l1_update: LruUpdate::Normal,
            }
        }
    }
}

/// A mispredicting branch over a slow compare operand, then a cold load:
/// one run exercises dispatch/issue/commit, a mispredict squash, and
/// long idle gaps the scheduler fast-forwards over.
fn squash_then_cold_load() -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(Reg::R1, 1);
    b.li(Reg::R2, 1);
    for _ in 0..10 {
        b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2); // slow chain: r2 stays 1
    }
    b.branch_to(BranchCond::Eq, Reg::R2, Reg::R1, "taken"); // taken, predicted NT
    b.alu_imm(AluOp::Add, Reg::R10, Reg::R10, 100); // wrong path
    b.label("taken").expect("fresh");
    b.li(Reg::R3, 0x20000);
    b.load(Reg::R4, Reg::R3, 0); // cold: misses to main memory
    b.halt();
    b.data_u64s(0x20000, &[0xfeed]);
    b.build().expect("assembles")
}

fn traced_run(program: &std::sync::Arc<Program>, capacity: usize) -> (Core, Vec<TraceEvent>) {
    let mut core = core_with(Box::new(BlockFirstN {
        n: 0,
        attempts: HashMap::new(),
    }));
    core.load_program(program.clone());
    core.enable_trace(capacity);
    assert_eq!(core.run(100_000).exit, ExitReason::Halted);
    let trace = core.disable_trace().expect("tracing enabled");
    let events = trace.events().cloned().collect();
    (core, events)
}

#[test]
fn cycles_are_monotonic_and_lifecycle_stages_are_ordered_per_seq() {
    let (_, events) = traced_run(&std::sync::Arc::new(squash_then_cold_load()), 1 << 16);
    assert!(!events.is_empty());
    for pair in events.windows(2) {
        assert!(
            pair[0].cycle() <= pair[1].cycle(),
            "events out of order: {} then {}",
            pair[0],
            pair[1]
        );
    }
    // Per sequence number: dispatch <= issue <= complete <= commit.
    // A squash recycles wrong-path seqs, so a fresh dispatch starts a
    // new incarnation and forgets the old one's stages; only the latest
    // incarnation ever commits.
    let mut dispatch = HashMap::new();
    let mut first_issue = HashMap::new();
    let mut complete = HashMap::new();
    let mut commit = HashMap::new();
    for e in &events {
        match *e {
            TraceEvent::Dispatch { cycle, seq, .. } => {
                dispatch.insert(seq, cycle);
                first_issue.remove(&seq);
                complete.remove(&seq);
            }
            TraceEvent::Issue { cycle, seq, .. } => {
                first_issue.entry(seq).or_insert(cycle);
            }
            TraceEvent::Complete { cycle, seq } => {
                complete.insert(seq, cycle);
            }
            TraceEvent::Commit { cycle, seq, .. } => {
                assert!(commit.insert(seq, cycle).is_none(), "seq {seq} recommitted");
            }
            _ => {}
        }
    }
    assert!(!commit.is_empty(), "the program commits instructions");
    let mut full_chains = 0;
    for (seq, commit_cycle) in &commit {
        // Not every stage traces for every instruction (e.g. a halt has
        // no completion wakeup), but every stage that did must be in
        // dispatch <= issue <= complete <= commit order.
        let mut last = dispatch.get(seq).copied().unwrap_or(0);
        let mut stages = 0;
        for stage in [first_issue.get(seq), complete.get(seq)]
            .into_iter()
            .flatten()
        {
            assert!(
                last <= *stage,
                "seq {seq}: stage at {stage} precedes earlier stage at {last}"
            );
            last = *stage;
            stages += 1;
        }
        assert!(
            last <= *commit_cycle,
            "seq {seq}: commit at {commit_cycle} precedes a stage at {last}"
        );
        if stages == 2 {
            full_chains += 1;
        }
    }
    assert!(
        full_chains > 0,
        "at least some instructions trace the full dispatch/issue/complete/commit chain"
    );
}

#[test]
fn squash_is_recorded_with_cause_and_wrong_path_work_never_commits() {
    let (core, events) = traced_run(&std::sync::Arc::new(squash_then_cold_load()), 1 << 16);
    let squashes: Vec<_> = events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Squash {
                keep_seq, cause, ..
            } => Some((keep_seq, cause)),
            _ => None,
        })
        .collect();
    assert!(
        squashes.iter().any(|(_, c)| *c == SquashCause::Mispredict),
        "the taken/predicted-NT branch must squash: {squashes:?}"
    );
    assert_eq!(core.read_arch_reg(Reg::R10), 0, "wrong path rolled back");
    assert_eq!(core.read_arch_reg(Reg::R4), 0xfeed);
    // No seq younger than a squash's keep_seq may commit before the
    // squash's redirect re-dispatches it: a committed wrong-path seq
    // would show as a commit event between squash and its re-dispatch.
    for (i, e) in events.iter().enumerate() {
        if let TraceEvent::Squash {
            cycle, keep_seq, ..
        } = *e
        {
            for later in &events[..i] {
                if let TraceEvent::Commit { seq, .. } = *later {
                    assert!(
                        seq <= keep_seq,
                        "seq {seq} committed before the cycle-{cycle} squash keeping <= {keep_seq}"
                    );
                }
            }
        }
    }
}

#[test]
fn fast_forward_windows_contain_no_phantom_events() {
    let (core, events) = traced_run(&std::sync::Arc::new(squash_then_cold_load()), 1 << 16);
    let windows: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::FastForward { cycle, skipped } => Some((cycle, skipped)),
            _ => None,
        })
        .collect();
    assert!(
        !windows.is_empty(),
        "a cold main-memory miss leaves idle cycles to skip"
    );
    for (start, skipped) in &windows {
        assert!(*skipped >= 1);
        for e in &events {
            let c = e.cycle();
            assert!(
                c <= *start || c >= start + skipped,
                "event {e} inside skipped window [{start}, {})",
                start + skipped
            );
        }
    }
    // The skipped cycles are real simulated time: the statistics count
    // them even though no step ran.
    let total_skipped: u64 = windows.iter().map(|(_, s)| s).sum();
    assert!(core.stats().cycles >= total_skipped);
}

#[test]
fn blocked_loads_trace_the_filter_and_the_faulting_page() {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(Reg::R1, 0x20000);
    b.load(Reg::R2, Reg::R1, 0);
    b.halt();
    b.data_u64s(0x20000, &[0xbeef]);
    let program = std::sync::Arc::new(b.build().expect("assembles"));

    let mut core = core_with(Box::new(BlockFirstN {
        n: 3,
        attempts: HashMap::new(),
    }));
    core.load_program(program.clone());
    core.enable_trace(1 << 14);
    assert_eq!(core.run(100_000).exit, ExitReason::Halted);
    let trace = core.disable_trace().expect("tracing enabled");

    let blocks: Vec<_> = trace
        .events()
        .filter_map(|e| match *e {
            TraceEvent::Block {
                seq,
                filter,
                vaddr,
                page,
                ..
            } => Some((seq, filter, vaddr, page)),
            _ => None,
        })
        .collect();
    assert_eq!(
        blocks.len() as u64,
        core.stats().block_events,
        "every counted block event is traced"
    );
    assert_eq!(blocks.len(), 3, "the policy bounces the load three times");
    for (_, filter, vaddr, page) in &blocks {
        assert_eq!(*filter, BlockFilter::Baseline);
        assert_eq!(*vaddr, 0x20000);
        assert_eq!(*page, page_number(0x20000));
    }
    let suspect_issues = trace
        .events()
        .filter(|e| matches!(e, TraceEvent::Issue { suspect: true, .. }))
        .count();
    assert!(suspect_issues > 0, "the policy marks every issue suspect");
}

#[test]
fn capacity_limits_are_enforced_with_exact_drop_accounting() {
    let program = std::sync::Arc::new(squash_then_cold_load());
    let (_, full) = traced_run(&program, 1 << 16);

    let mut core = core_with(Box::new(BlockFirstN {
        n: 0,
        attempts: HashMap::new(),
    }));
    core.load_program(program.clone());
    core.enable_trace(4);
    core.run(100_000);
    let small = core.disable_trace().expect("tracing enabled");
    assert_eq!(small.len(), 4);
    assert_eq!(small.dropped() as usize, full.len() - 4);
    // The buffer is a ring: the kept events are the newest four.
    let kept: Vec<_> = small.events().cloned().collect();
    assert_eq!(kept.as_slice(), &full[full.len() - 4..]);

    let mut core = core_with(Box::new(BlockFirstN {
        n: 0,
        attempts: HashMap::new(),
    }));
    core.load_program(program.clone());
    core.enable_trace(0);
    core.run(100_000);
    let empty = core.disable_trace().expect("tracing enabled");
    assert!(empty.is_empty());
    assert_eq!(empty.dropped() as usize, full.len());
}

//! Differential property test for the SoA load/store queues.
//!
//! The [`Lsq`] answers its ordering and forwarding queries with masked
//! bitmap-word scans over a hot/cold ring layout; this test replays the
//! same random operation streams through a naive reference model — two
//! plain `Vec`s walked entry by entry, O(n²) overall — and asserts every
//! observable result matches: the unknown-address and unknown-data
//! checks, the byte-granular forwarding overlay, the memory-order
//! violation search, the head-gated releases, the youngest-first squash
//! output, and the queue occupancies. After every operation
//! [`Lsq::check_bitmaps`] re-derives the bitmap words from the records,
//! so any incremental-maintenance bug surfaces at the exact step that
//! introduced it.
//!
//! Streams run at several queue capacities (including non-multiples of
//! the word size) with frequent releases, so the ring windows wrap the
//! physical array edge and the masked scans exercise their split-range
//! paths.

use condspec_pipeline::lsq::Lsq;
use condspec_stats::SplitMix64;

const DATA_BASE: u64 = 0x0800_0000;
/// Byte span addresses are drawn from; small enough that overlaps,
/// partial overlaps and youngest-wins collisions are all common.
const ADDR_SPAN: u64 = 48;
const SIZES: [u64; 4] = [1, 2, 4, 8];
const OPS_PER_TRIAL: usize = 600;

/// Naive reference: flat vectors in program (= seq) order, every query
/// a full scan. Mirrors the documented `Lsq` semantics literally.
#[derive(Default)]
struct RefModel {
    loads: Vec<RefLoad>,
    stores: Vec<RefStore>,
}

struct RefLoad {
    seq: u64,
    addr: u64,
    size: u64,
    executed: bool,
}

struct RefStore {
    seq: u64,
    addr: u64,
    size: u64,
    data: u64,
    addr_known: bool,
    data_known: bool,
}

fn overlap(a: u64, a_len: u64, b: u64, b_len: u64) -> bool {
    a < b + b_len && b < a + a_len
}

impl RefModel {
    fn older_store_unknown(&self, seq: u64) -> bool {
        self.stores.iter().any(|s| s.seq < seq && !s.addr_known)
    }

    fn older_store_data_unknown(&self, seq: u64, addr: u64, size: u64) -> bool {
        self.stores.iter().any(|s| {
            s.seq < seq && s.addr_known && !s.data_known && overlap(addr, size, s.addr, s.size)
        })
    }

    fn overlay(&self, seq: u64, addr: u64, size: u64, memory_value: u64) -> u64 {
        let mut bytes = memory_value.to_le_bytes();
        // Oldest first, so the youngest overlapping store wins per byte.
        for s in &self.stores {
            if s.seq >= seq || !s.addr_known || !s.data_known {
                continue;
            }
            let sdata = s.data.to_le_bytes();
            for i in 0..s.size {
                let byte_addr = s.addr + i;
                if byte_addr >= addr && byte_addr < addr + size {
                    bytes[(byte_addr - addr) as usize] = sdata[i as usize];
                }
            }
        }
        let mut value = u64::from_le_bytes(bytes);
        if size < 8 {
            value &= (1u64 << (8 * size)) - 1;
        }
        value
    }

    fn violation_on_store(&self, store_seq: u64, addr: u64, size: u64) -> Option<u64> {
        self.loads
            .iter()
            .find(|l| l.seq > store_seq && l.executed && overlap(l.addr, l.size, addr, size))
            .map(|l| l.seq)
    }

    fn release_load(&mut self, seq: u64) {
        if self.loads.first().is_some_and(|l| l.seq == seq) {
            self.loads.remove(0);
        }
    }

    fn release_store(&mut self, seq: u64) {
        if self.stores.first().is_some_and(|s| s.seq == seq) {
            self.stores.remove(0);
        }
    }

    fn squash_after(&mut self, target: u64) -> Vec<u64> {
        let mut removed = Vec::new();
        while self.loads.last().is_some_and(|l| l.seq > target) {
            removed.push(self.loads.pop().unwrap().seq);
        }
        while self.stores.last().is_some_and(|s| s.seq > target) {
            removed.push(self.stores.pop().unwrap().seq);
        }
        removed
    }
}

fn random_addr(rng: &mut SplitMix64) -> u64 {
    DATA_BASE + rng.next_u64() % ADDR_SPAN
}

fn random_size(rng: &mut SplitMix64) -> u64 {
    SIZES[(rng.next_u64() % SIZES.len() as u64) as usize]
}

/// Compares every query both models can answer for the probe point
/// `(seq, addr, size)` — typically a resident load, sometimes an
/// arbitrary younger-than-everything probe.
fn compare_queries(lsq: &Lsq, model: &RefModel, seq: u64, addr: u64, size: u64, mem: u64) {
    assert_eq!(
        lsq.older_store_unknown(seq),
        model.older_store_unknown(seq),
        "older_store_unknown(seq={seq}) diverged"
    );
    assert_eq!(
        lsq.older_store_data_unknown(seq, addr, size),
        model.older_store_data_unknown(seq, addr, size),
        "older_store_data_unknown(seq={seq}, addr={addr:#x}, size={size}) diverged"
    );
    assert_eq!(
        lsq.overlay(seq, addr, size, mem),
        model.overlay(seq, addr, size, mem),
        "overlay(seq={seq}, addr={addr:#x}, size={size}, mem={mem:#x}) diverged"
    );
}

fn run_trial(seed: u64, load_cap: usize, store_cap: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut lsq = Lsq::new(load_cap, store_cap);
    let mut model = RefModel::default();
    let mut next_seq: u64 = 1;

    for op in 0..OPS_PER_TRIAL {
        match rng.next_u64() % 20 {
            // Dispatch a load.
            0..=3 => {
                if lsq.load_has_space() {
                    let seq = next_seq;
                    next_seq += 1;
                    let size = random_size(&mut rng);
                    lsq.allocate_load(seq, size).unwrap();
                    model.loads.push(RefLoad {
                        seq,
                        addr: 0,
                        size,
                        executed: false,
                    });
                } else {
                    assert_eq!(model.loads.len(), load_cap);
                }
            }
            // Dispatch a store.
            4..=7 => {
                if lsq.store_has_space() {
                    let seq = next_seq;
                    next_seq += 1;
                    let size = random_size(&mut rng);
                    lsq.allocate_store(seq, size).unwrap();
                    model.stores.push(RefStore {
                        seq,
                        addr: 0,
                        size,
                        data: 0,
                        addr_known: false,
                        data_known: false,
                    });
                } else {
                    assert_eq!(model.stores.len(), store_cap);
                }
            }
            // Execute a pending load, bypassing like the core would:
            // a load executes speculatively whether or not older store
            // addresses are known, and records the bypass flag.
            8..=10 => {
                let pending: Vec<usize> = (0..model.loads.len())
                    .filter(|&i| !model.loads[i].executed)
                    .collect();
                if let Some(&i) = pick(&mut rng, &pending) {
                    let addr = random_addr(&mut rng);
                    let seq = model.loads[i].seq;
                    let bypassed = lsq.older_store_unknown(seq);
                    assert_eq!(bypassed, model.older_store_unknown(seq));
                    model.loads[i].addr = addr;
                    model.loads[i].executed = true;
                    lsq.resolve_load(seq, addr, bypassed);
                }
            }
            // Resolve a store address and run the violation search the
            // core runs at that moment.
            11..=12 => {
                let pending: Vec<usize> = (0..model.stores.len())
                    .filter(|&i| !model.stores[i].addr_known)
                    .collect();
                if let Some(&i) = pick(&mut rng, &pending) {
                    let addr = random_addr(&mut rng);
                    let store = &mut model.stores[i];
                    store.addr = addr;
                    store.addr_known = true;
                    let (seq, size) = (store.seq, store.size);
                    lsq.resolve_store_addr(seq, addr);
                    assert_eq!(
                        lsq.violation_on_store(seq, addr, size),
                        model.violation_on_store(seq, addr, size),
                        "violation_on_store(seq={seq}) diverged at op {op}"
                    );
                }
            }
            // Resolve a store's data.
            13..=14 => {
                let pending: Vec<usize> = (0..model.stores.len())
                    .filter(|&i| model.stores[i].addr_known && !model.stores[i].data_known)
                    .collect();
                if let Some(&i) = pick(&mut rng, &pending) {
                    let data = rng.next_u64();
                    let store = &mut model.stores[i];
                    store.data = data;
                    store.data_known = true;
                    lsq.resolve_store_data(store.seq, data);
                }
            }
            // Commit: release the head load and/or store. A wrong
            // sequence number must be a no-op in both models.
            15..=16 => {
                if rng.next_u64().is_multiple_of(8) {
                    lsq.release_load(u64::MAX);
                    lsq.release_store(u64::MAX);
                    model.release_load(u64::MAX);
                    model.release_store(u64::MAX);
                } else {
                    if let Some(l) = model.loads.first() {
                        let seq = l.seq;
                        lsq.release_load(seq);
                        model.release_load(seq);
                    }
                    if let Some(s) = model.stores.first() {
                        let seq = s.seq;
                        lsq.release_store(seq);
                        model.release_store(seq);
                    }
                }
            }
            // Squash everything younger than a random recent point.
            17 => {
                let target = if next_seq > 1 {
                    1 + rng.next_u64() % next_seq
                } else {
                    0
                };
                assert_eq!(
                    lsq.squash_after(target),
                    model.squash_after(target),
                    "squash_after({target}) removal order diverged at op {op}"
                );
            }
            // Probe the forwarding queries from a random viewpoint.
            _ => {
                let seq = if !model.loads.is_empty() && rng.next_u64().is_multiple_of(2) {
                    model.loads[(rng.next_u64() % model.loads.len() as u64) as usize].seq
                } else {
                    next_seq
                };
                let addr = random_addr(&mut rng);
                let size = random_size(&mut rng);
                let mem = rng.next_u64();
                compare_queries(&lsq, &model, seq, addr, size, mem);
            }
        }
        lsq.check_bitmaps()
            .unwrap_or_else(|e| panic!("bitmap invariant broken at op {op}: {e}"));
        assert_eq!(lsq.load_count(), model.loads.len(), "load_count at op {op}");
        assert_eq!(
            lsq.store_count(),
            model.stores.len(),
            "store_count at op {op}"
        );
    }
}

fn pick<'a>(rng: &mut SplitMix64, candidates: &'a [usize]) -> Option<&'a usize> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[(rng.next_u64() % candidates.len() as u64) as usize])
    }
}

#[test]
fn lsq_matches_naive_reference_across_random_streams() {
    // Capacities chosen to wrap the rings often and to sit both on and
    // off 64-bit word boundaries.
    for (trial, &(load_cap, store_cap)) in [(8, 8), (5, 3), (16, 16), (3, 5), (64, 64), (7, 13)]
        .iter()
        .enumerate()
    {
        for rep in 0..3 {
            run_trial(
                0x15c4_d1ff_0000 + (trial as u64) * 97 + rep,
                load_cap,
                store_cap,
            );
        }
    }
}

#[test]
fn lsq_reset_clears_everything() {
    let mut lsq = Lsq::new(4, 4);
    lsq.allocate_store(1, 8);
    lsq.allocate_load(2, 8);
    lsq.resolve_store_addr(1, DATA_BASE);
    lsq.reset();
    lsq.check_bitmaps().unwrap();
    assert_eq!(lsq.load_count(), 0);
    assert_eq!(lsq.store_count(), 0);
    assert!(!lsq.older_store_unknown(u64::MAX));
    // The cleared slots are immediately reusable from slot zero.
    lsq.allocate_load(10, 8).unwrap();
    lsq.allocate_store(11, 8).unwrap();
    lsq.check_bitmaps().unwrap();
}

//! Differential property test for the event-driven scheduler.
//!
//! The core's wakeup/select machinery is incremental: a bitset
//! scoreboard feeds issue select, per-register subscription lists wake
//! consumers, a calendar queue delivers completions, and a cached fence
//! deque gates memory ordering. [`Core::check_scheduler_coherence`]
//! recomputes all of that from first principles every cycle — a naive
//! oldest-first scan over the Issue Queue and ROB — and this test drives
//! random programs through the core asserting the two agree after every
//! step.
//!
//! On top of the per-cycle differential check, every program is run
//! twice on fresh cores and the full pipeline traces (dispatch, issue,
//! block, completion and commit order, cycle by cycle), final statistics
//! and architectural registers must match exactly: the event-driven
//! structures may not introduce any scheduling nondeterminism.
//!
//! [`Core::check_scheduler_coherence`]: condspec_pipeline::core::Core::check_scheduler_coherence

use condspec_frontend::{FrontEnd, PredictorConfig};
use condspec_isa::{AluOp, BranchCond, Program, ProgramBuilder, Reg};
use condspec_mem::{CacheHierarchy, HierarchyConfig, LruUpdate, PageTable, Tlb, TlbConfig};
use condspec_pipeline::policy::{
    BlockFilter, DispatchInfo, IqEntryView, MemAccessQuery, MemDecision, PolicyStats,
    SecurityPolicy,
};
use condspec_pipeline::trace::TraceEvent;
use condspec_pipeline::{Core, CoreConfig, PipelineStats};
use condspec_stats::SplitMix64;

const CODE_BASE: u64 = 0x0040_0000;
const DATA_BASE: u64 = 0x0800_0000;
const DATA_WORDS: usize = 64;
const RING_BASE: u64 = 0x0900_0000;
const RING_SLOTS: usize = 64;
const TRIALS: u64 = 10;
const BLOCKS_PER_PROGRAM: usize = 36;
const STEP_BUDGET: u64 = 200_000;
const TRACE_CAPACITY: usize = 1 << 16;

/// Scratch registers the generator draws operands from (R10 is reserved
/// as the pointer-chase cursor, R2/R9 as bases/scrutinee temps).
const SCRATCH: [Reg; 6] = [Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8];

fn reg(rng: &mut SplitMix64) -> Reg {
    SCRATCH[rng.next_u64() as usize % SCRATCH.len()]
}

fn word_offset(rng: &mut SplitMix64) -> i64 {
    (rng.next_u64() as usize % DATA_WORDS) as i64 * 8
}

/// Deterministically blocks the first issue attempt of every third load,
/// exercising the bounce/replay path (and its `Security` block reason)
/// without the condspec crate. State depends only on the sequence of
/// queries, so two identical runs see identical decisions.
struct BlockEveryThirdLoadOnce {
    attempted: std::collections::HashSet<u64>,
    blocks: u64,
}

impl BlockEveryThirdLoadOnce {
    fn new() -> Self {
        BlockEveryThirdLoadOnce {
            attempted: std::collections::HashSet::new(),
            blocks: 0,
        }
    }
}

impl SecurityPolicy for BlockEveryThirdLoadOnce {
    fn name(&self) -> &'static str {
        "block-every-third-load-once"
    }
    fn on_dispatch(&mut self, _info: DispatchInfo, _older: &[IqEntryView]) {}
    fn suspect_on_issue(&self, _slot: usize) -> bool {
        true
    }
    fn on_issue(&mut self, _slot: usize) {}
    fn on_slot_freed(&mut self, _slot: usize) {}
    fn has_pending_dependence(&self, _slot: usize) -> bool {
        false // the replay penalty alone delays the retry
    }
    fn check_mem_access(&mut self, query: &MemAccessQuery) -> MemDecision {
        if query.seq.is_multiple_of(3) && self.attempted.insert(query.seq) {
            self.blocks += 1;
            MemDecision::Block {
                filter: BlockFilter::Baseline,
            }
        } else {
            MemDecision::Proceed {
                l1_update: LruUpdate::Normal,
            }
        }
    }
    fn stats(&self) -> PolicyStats {
        PolicyStats {
            blocks: self.blocks,
            ..PolicyStats::default()
        }
    }
}

fn fresh_core() -> Core {
    Core::new(
        CoreConfig::paper_default(),
        FrontEnd::new(PredictorConfig::paper_default()),
        CacheHierarchy::new(HierarchyConfig::paper_default()),
        Tlb::new(TlbConfig::paper_default()),
        PageTable::new(),
        Box::new(BlockEveryThirdLoadOnce::new()),
    )
}

/// A random halting program mixing every scheduler-relevant shape:
/// ALU traffic (multiplies take the multi-cycle completion path),
/// random loads/stores, dependent-load pointer-chase bursts, fences,
/// and data-dependent forward branches that keep the predictor wrong.
fn random_program(rng: &mut SplitMix64) -> std::sync::Arc<Program> {
    // Single-cycle ring permutation for the chase bursts.
    let mut idx: Vec<usize> = (0..RING_SLOTS).collect();
    for i in (1..RING_SLOTS).rev() {
        let j = (rng.next_u64() % i as u64) as usize;
        idx.swap(i, j);
    }
    let mut next = vec![0usize; RING_SLOTS];
    for w in 0..RING_SLOTS {
        next[idx[w]] = idx[(w + 1) % RING_SLOTS];
    }
    let ring: Vec<u64> = next.iter().map(|&n| RING_BASE + 8 * n as u64).collect();

    let mut b = ProgramBuilder::new(CODE_BASE);
    b.li(Reg::R2, DATA_BASE);
    b.li(Reg::R10, RING_BASE + 8 * idx[0] as u64);
    for (i, r) in SCRATCH.iter().enumerate() {
        b.li(*r, rng.next_u64() >> (8 + i));
    }
    for block in 0..BLOCKS_PER_PROGRAM {
        match rng.next_u64() % 6 {
            0 => {
                let op =
                    [AluOp::Add, AluOp::Xor, AluOp::Mul, AluOp::Or][rng.next_u64() as usize % 4];
                b.alu(op, reg(rng), reg(rng), reg(rng));
            }
            1 => {
                b.load(reg(rng), Reg::R2, word_offset(rng));
            }
            2 => {
                b.store(reg(rng), Reg::R2, word_offset(rng));
            }
            3 => {
                // Dependent-load burst: each load's address is the
                // previous load's value (serial wakeups through the
                // subscription lists).
                for _ in 0..2 + rng.next_u64() % 2 {
                    b.load(Reg::R10, Reg::R10, 0);
                }
            }
            4 => {
                b.fence();
            }
            _ => {
                // A data-dependent forward branch over a short body with
                // memory traffic: squashing it exercises lazy event
                // invalidation and wakeup unsubscription together.
                let label = format!("skip{block}");
                let scrutinee = reg(rng);
                b.alu_imm(AluOp::And, Reg::R9, scrutinee, 1);
                b.branch_to(BranchCond::Ne, Reg::R9, Reg::R0, &label);
                b.load(reg(rng), Reg::R2, word_offset(rng));
                b.alu(AluOp::Mul, reg(rng), reg(rng), reg(rng));
                b.store(reg(rng), Reg::R2, word_offset(rng));
                b.label(&label).expect("unique per block");
            }
        }
    }
    b.halt();
    let words: Vec<u64> = (0..DATA_WORDS as u64).map(|_| rng.next_u64()).collect();
    b.data_u64s(DATA_BASE, &words);
    b.data_u64s(RING_BASE, &ring);
    std::sync::Arc::new(b.build().expect("generated program assembles"))
}

/// Runs `program` to halt on a fresh core, checking the scheduler
/// differential after every cycle, and returns the full trace, final
/// stats and architectural register file.
fn traced_run(
    program: &std::sync::Arc<Program>,
    trial: u64,
) -> (Vec<TraceEvent>, PipelineStats, Vec<u64>) {
    let mut core = fresh_core();
    core.enable_trace(TRACE_CAPACITY);
    core.load_program(program.clone());
    let mut steps = 0;
    while !core.is_halted() {
        core.step();
        steps += 1;
        assert!(steps <= STEP_BUDGET, "trial {trial} ran away");
        if let Err(violation) = core.check_invariants() {
            panic!("trial {trial} cycle {}: {violation}", core.cycle());
        }
    }
    let stats = *core.stats();
    let regs: Vec<u64> = Reg::ALL.iter().map(|r| core.read_arch_reg(*r)).collect();
    let trace = core.disable_trace().expect("trace was enabled");
    assert_eq!(trace.dropped(), 0, "trial {trial}: trace overflowed");
    (trace.events().copied().collect(), stats, regs)
}

/// [`Core::run`] fast-forwards provably idle cycles; driving [`Core::step`]
/// by hand never skips. The two must produce the same machine: identical
/// final statistics (including the per-cycle occupancy integrals, which
/// skipped cycles must accrue exactly), architectural registers, and
/// cycle count, for every random program.
#[test]
fn run_fast_forward_matches_manual_stepping() {
    let mut rng = SplitMix64::new(0x0dd5_eed5_c4ed_0002);
    for trial in 0..TRIALS {
        let program = random_program(&mut rng);

        let mut stepped = fresh_core();
        stepped.load_program(program.clone());
        let mut steps = 0;
        while !stepped.is_halted() {
            stepped.step();
            steps += 1;
            assert!(steps <= STEP_BUDGET, "trial {trial} ran away");
        }

        let mut ran = fresh_core();
        ran.load_program(program.clone());
        let result = ran.run(STEP_BUDGET);
        assert_eq!(
            result.exit,
            condspec_pipeline::ExitReason::Halted,
            "trial {trial}: run() must halt like stepping did"
        );

        assert_eq!(
            ran.stats(),
            stepped.stats(),
            "trial {trial}: fast-forward changed the statistics"
        );
        assert_eq!(
            ran.cycle(),
            stepped.cycle(),
            "trial {trial}: fast-forward changed the clock"
        );
        for r in Reg::ALL {
            assert_eq!(
                ran.read_arch_reg(r),
                stepped.read_arch_reg(r),
                "trial {trial}: fast-forward changed {r:?}"
            );
        }
    }
}

#[test]
fn event_driven_scheduler_matches_naive_reference() {
    let mut rng = SplitMix64::new(0x0dd5_eed5_c4ed_0001);
    let mut total_squashes = 0;
    let mut total_blocks = 0;
    for trial in 0..TRIALS {
        let program = random_program(&mut rng);
        let (trace_a, stats_a, regs_a) = traced_run(&program, trial);
        let (trace_b, stats_b, regs_b) = traced_run(&program, trial);

        assert_eq!(
            trace_a.len(),
            trace_b.len(),
            "trial {trial}: runs diverged in event count"
        );
        for (i, (a, b)) in trace_a.iter().zip(trace_b.iter()).enumerate() {
            assert_eq!(a, b, "trial {trial}: runs diverged at trace event {i}");
        }
        assert_eq!(stats_a, stats_b, "trial {trial}: final stats diverged");
        assert_eq!(
            regs_a, regs_b,
            "trial {trial}: architectural state diverged"
        );

        total_squashes += stats_a.mispredict_squashes;
        total_blocks += stats_a.blocked_committed_loads;
    }
    assert!(
        total_squashes > 10,
        "generator must provoke squashes (saw {total_squashes})"
    );
    assert!(
        total_blocks > 0,
        "policy must provoke block/replay traffic (saw {total_blocks})"
    );
}

//! Behavioural tests for the out-of-order core: squash nesting, RAS
//! pressure, store-data forwarding stalls, structural-hazard stress, and
//! the hazard-filter block/replay machinery (driven by a test-local
//! `SecurityPolicy`).

use condspec_frontend::{FrontEnd, PredictorConfig};
use condspec_isa::{AluOp, BranchCond, ProgramBuilder, Reg};
use condspec_mem::{CacheHierarchy, HierarchyConfig, LruUpdate, PageTable, Tlb, TlbConfig};
use condspec_pipeline::policy::{
    BlockFilter, DispatchInfo, IqEntryView, MemAccessQuery, MemDecision, SecurityPolicy,
};
use condspec_pipeline::{Core, CoreConfig, ExitReason};

fn core_with(config: CoreConfig, policy: Box<dyn SecurityPolicy>) -> Core {
    Core::new(
        config,
        FrontEnd::new(PredictorConfig::paper_default()),
        CacheHierarchy::new(HierarchyConfig::paper_default()),
        Tlb::new(TlbConfig::paper_default()),
        PageTable::new(),
        policy,
    )
}

/// Blocks every load's first `n` issue attempts, then permits it.
/// Exercises the bounce / re-issue machinery without the condspec crate.
struct BlockFirstN {
    n: u32,
    attempts: std::collections::HashMap<u64, u32>,
}

impl BlockFirstN {
    fn new(n: u32) -> Self {
        BlockFirstN {
            n,
            attempts: std::collections::HashMap::new(),
        }
    }
}

impl SecurityPolicy for BlockFirstN {
    fn name(&self) -> &'static str {
        "block-first-n"
    }
    fn on_dispatch(&mut self, _info: DispatchInfo, _older: &[IqEntryView]) {}
    fn suspect_on_issue(&self, _slot: usize) -> bool {
        true
    }
    fn on_issue(&mut self, _slot: usize) {}
    fn on_slot_freed(&mut self, _slot: usize) {}
    fn has_pending_dependence(&self, _slot: usize) -> bool {
        false // deps "clear" immediately; only the replay penalty delays
    }
    fn check_mem_access(&mut self, query: &MemAccessQuery) -> MemDecision {
        let count = self.attempts.entry(query.seq).or_insert(0);
        *count += 1;
        if *count <= self.n {
            MemDecision::Block {
                filter: BlockFilter::Baseline,
            }
        } else {
            MemDecision::Proceed {
                l1_update: LruUpdate::Normal,
            }
        }
    }
}

fn simple_load_program() -> condspec_isa::Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(Reg::R1, 0x20000);
    b.load(Reg::R2, Reg::R1, 0);
    b.halt();
    b.data_u64s(0x20000, &[0xfeed]);
    b.build().expect("assembles")
}

#[test]
fn blocked_loads_replay_and_still_produce_correct_values() {
    let mut core = core_with(CoreConfig::paper_default(), Box::new(BlockFirstN::new(3)));
    core.load_program(std::sync::Arc::new(simple_load_program()));
    assert_eq!(core.run(100_000).exit, ExitReason::Halted);
    assert_eq!(core.read_arch_reg(Reg::R2), 0xfeed);
    assert_eq!(
        core.stats().block_events,
        3,
        "three bounces before the access proceeds"
    );
    assert_eq!(core.stats().blocked_committed_loads, 1);
}

#[test]
fn replay_penalty_delays_re_issue() {
    // With deps always clear, each bounce costs at least the configured
    // replay penalty.
    let mut config = CoreConfig::paper_default();
    config.block_replay_penalty = 50;
    let mut slow = core_with(config, Box::new(BlockFirstN::new(4)));
    slow.load_program(std::sync::Arc::new(simple_load_program()));
    slow.run(100_000);
    let slow_cycles = slow.stats().cycles;

    let mut config = CoreConfig::paper_default();
    config.block_replay_penalty = 1;
    let mut fast = core_with(config, Box::new(BlockFirstN::new(4)));
    fast.load_program(std::sync::Arc::new(simple_load_program()));
    fast.run(100_000);
    let fast_cycles = fast.stats().cycles;

    assert!(
        slow_cycles >= fast_cycles + 3 * (50 - 1),
        "4 bounces x 49 extra penalty cycles must show up: slow={slow_cycles} fast={fast_cycles}"
    );
}

#[test]
fn nested_mispredictions_recover() {
    // A mispredicted branch whose wrong path contains another branch;
    // squash must unwind cleanly and the architectural result must be
    // exact.
    let mut core = Core::with_defaults();
    let mut b = ProgramBuilder::new(0x1000);
    b.li(Reg::R1, 1);
    b.li(Reg::R2, 1);
    for _ in 0..10 {
        b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2); // delay: r2 stays 1
    }
    b.branch_to(BranchCond::Eq, Reg::R2, Reg::R1, "outer_taken"); // taken, predicted NT
                                                                  // Wrong path: another slow branch, also "taken" if executed.
    b.branch_to(BranchCond::Eq, Reg::R2, Reg::R1, "inner_taken");
    b.alu_imm(AluOp::Add, Reg::R10, Reg::R10, 100); // doubly-wrong path
    b.label("inner_taken").expect("fresh");
    b.alu_imm(AluOp::Add, Reg::R11, Reg::R11, 100); // wrong path
    b.label("outer_taken").expect("fresh");
    b.alu_imm(AluOp::Add, Reg::R12, Reg::R12, 1);
    b.halt();
    core.load_program(std::sync::Arc::new(b.build().expect("assembles")));
    assert_eq!(core.run(100_000).exit, ExitReason::Halted);
    assert_eq!(
        core.read_arch_reg(Reg::R10),
        0,
        "doubly-wrong path rolled back"
    );
    assert_eq!(core.read_arch_reg(Reg::R11), 0, "wrong path rolled back");
    assert_eq!(core.read_arch_reg(Reg::R12), 1, "correct path committed");
}

#[test]
fn deep_recursion_overflows_ras_but_stays_correct() {
    // 24 nested calls against a 16-deep RAS: the predictor mispredicts
    // some returns, the machine must still compute the right answer.
    let mut core = Core::with_defaults();
    let mut b = ProgramBuilder::new(0x1000);
    // Iterative "recursion": call chain f0 -> f1 -> ... -> f23 with
    // distinct link registers is impossible (32 regs), so spill return
    // addresses to memory in a stack discipline.
    b.li(Reg::R1, 0x30000); // stack pointer
    b.li(Reg::R2, 0);
    b.call_to("f", Reg::R31);
    b.halt();
    b.label("f").expect("fresh");
    // push link
    b.store(Reg::R31, Reg::R1, 0);
    b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 8);
    b.alu_imm(AluOp::Add, Reg::R2, Reg::R2, 1);
    // if depth < 24 recurse
    b.li(Reg::R3, 24);
    b.branch_to(BranchCond::GeU, Reg::R2, Reg::R3, "unwind");
    b.call_to("f", Reg::R31);
    b.label("unwind").expect("fresh");
    b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, -8);
    b.load(Reg::R31, Reg::R1, 0);
    b.ret(Reg::R31);
    b.reserve(0x30000, 4096);
    core.load_program(std::sync::Arc::new(b.build().expect("assembles")));
    assert_eq!(core.run(1_000_000).exit, ExitReason::Halted);
    assert_eq!(core.read_arch_reg(Reg::R2), 24);
}

#[test]
fn load_waits_for_older_store_data() {
    // Store with fast address but slow data; an overlapping younger load
    // must wait and then forward the correct value.
    let mut core = Core::with_defaults();
    let mut b = ProgramBuilder::new(0x1000);
    b.li(Reg::R1, 0x40000);
    b.li(Reg::R2, 3);
    for _ in 0..8 {
        b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2); // slow data chain
    }
    b.store(Reg::R2, Reg::R1, 0); // address ready instantly, data late
    b.load(Reg::R3, Reg::R1, 0); // overlaps: must wait for the data
    b.halt();
    b.reserve(0x40000, 64);
    core.load_program(std::sync::Arc::new(b.build().expect("assembles")));
    assert_eq!(core.run(100_000).exit, ExitReason::Halted);
    let expected = {
        let mut v = 3u64;
        for _ in 0..8 {
            v = v.wrapping_mul(v);
        }
        v
    };
    assert_eq!(core.read_arch_reg(Reg::R3), expected);
    assert_eq!(core.read_memory(0x40000, 8), expected);
}

#[test]
fn tiny_machine_survives_structural_pressure() {
    // A 1-wide machine with minimal queues: everything stalls constantly
    // but the result must be exact.
    let config = CoreConfig {
        fetch_width: 1,
        dispatch_width: 1,
        issue_width: 1,
        commit_width: 1,
        rob_entries: 4,
        iq_entries: 2,
        ldq_entries: 1,
        stq_entries: 1,
        phys_regs: 40,
        decode_latency: 1,
        redirect_penalty: 2,
        spec_store_bypass: true,
        cache_ports: 1,
        fetch_queue: 2,
        mul_latency: 3,
        block_replay_penalty: 12,
        icache_filter: false,
    };
    let mut core = core_with(config, Box::new(condspec_pipeline::NullPolicy));
    let mut b = ProgramBuilder::new(0x1000);
    b.li(Reg::R1, 0x50000);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 30);
    b.label("loop").expect("fresh");
    b.store(Reg::R2, Reg::R1, 0);
    b.load(Reg::R4, Reg::R1, 0);
    b.alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R4);
    b.alu_imm(AluOp::Add, Reg::R2, Reg::R2, 1);
    b.branch_to(BranchCond::LtU, Reg::R2, Reg::R3, "loop");
    b.halt();
    b.reserve(0x50000, 64);
    core.load_program(std::sync::Arc::new(b.build().expect("assembles")));
    assert_eq!(core.run(1_000_000).exit, ExitReason::Halted);
    assert_eq!(core.read_arch_reg(Reg::R5), (0..30).sum::<u64>());
}

#[test]
fn violation_squash_restarts_from_the_oldest_violating_load() {
    // Two younger loads bypass a slow-address store; both overlap. The
    // squash must replay both and produce stored values.
    let mut core = Core::with_defaults();
    let mut b = ProgramBuilder::new(0x1000);
    b.li(Reg::R1, 0x60000);
    b.li(Reg::R2, 0x99);
    b.li(Reg::R3, 1);
    for _ in 0..8 {
        b.alu(AluOp::Mul, Reg::R3, Reg::R3, Reg::R3);
    }
    b.alu(AluOp::Mul, Reg::R4, Reg::R1, Reg::R3); // slow copy of the address
    b.store(Reg::R2, Reg::R4, 0);
    b.load(Reg::R5, Reg::R1, 0); // bypasses, reads stale 0
    b.load(Reg::R6, Reg::R1, 4); // overlaps the 8-byte store too
    b.halt();
    b.reserve(0x60000, 64);
    core.load_program(std::sync::Arc::new(b.build().expect("assembles")));
    assert_eq!(core.run(100_000).exit, ExitReason::Halted);
    assert_eq!(core.read_arch_reg(Reg::R5), 0x99);
    assert_eq!(
        core.read_arch_reg(Reg::R6),
        0,
        "upper half of the store is zero"
    );
    assert!(core.stats().violation_squashes >= 1);
}

#[test]
fn fence_costs_cycles_but_changes_nothing_else() {
    let build = |fences: bool| {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(Reg::R1, 0x70000);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 40);
        b.label("loop").expect("fresh");
        b.load(Reg::R4, Reg::R1, 0);
        if fences {
            b.fence();
        }
        b.alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R4);
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.branch_to(BranchCond::LtU, Reg::R2, Reg::R3, "loop");
        b.halt();
        b.data_u64s(0x70000, &[7]);
        b.build().expect("assembles")
    };
    let run = |fences: bool| {
        let mut core = Core::with_defaults();
        core.load_program(std::sync::Arc::new(build(fences)));
        assert_eq!(core.run(1_000_000).exit, ExitReason::Halted);
        (core.read_arch_reg(Reg::R5), core.stats().cycles)
    };
    let (plain_sum, plain_cycles) = run(false);
    let (fenced_sum, fenced_cycles) = run(true);
    assert_eq!(plain_sum, 280);
    assert_eq!(fenced_sum, 280, "fences never change results");
    assert!(
        fenced_cycles > plain_cycles,
        "serialization must cost: {fenced_cycles} vs {plain_cycles}"
    );
}

#[test]
fn trace_records_the_pipeline_story() {
    let mut core = core_with(CoreConfig::paper_default(), Box::new(BlockFirstN::new(1)));
    core.enable_trace(1024);
    core.load_program(std::sync::Arc::new(simple_load_program()));
    assert_eq!(core.run(100_000).exit, ExitReason::Halted);
    let trace = core.disable_trace().expect("tracing was enabled");
    use condspec_pipeline::TraceEvent;
    let mut saw_dispatch = false;
    let mut saw_block = false;
    let mut saw_commit = false;
    let mut last_cycle = 0;
    for event in trace.events() {
        assert!(event.cycle() >= last_cycle, "events are time-ordered");
        last_cycle = event.cycle();
        match event {
            TraceEvent::Dispatch { .. } => saw_dispatch = true,
            TraceEvent::Block { .. } => saw_block = true,
            TraceEvent::Commit { .. } => saw_commit = true,
            _ => {}
        }
    }
    assert!(
        saw_dispatch && saw_block && saw_commit,
        "full story: {trace}"
    );
    assert!(
        core.trace_buffer().is_none(),
        "disable_trace takes the buffer"
    );
}

//! Issue queue in hot/cold SoA form with per-state bitmap words.
//!
//! Slots are stable for the lifetime of an entry because the security
//! dependence matrix (in the `condspec` crate) is indexed by IQ position,
//! exactly like the paper's Figure 2.
//!
//! The entry storage is a flat [`IqHot`] record array (`Copy`, no
//! `Option` wrapping — validity lives in the `occupied` bitmap), mirroring
//! `rob.rs`. Scheduling state is kept in four per-slot bit masks
//! maintained incrementally — `occupied`, `unissued`, `ops_ready` and
//! `blocked` — so candidate collection is a word-wise
//! `unissued & ops_ready` and the idle fast-forward's blocked-entry scan
//! is a masked-word walk instead of a full-capacity entry loop. The
//! `ops_ready` bits are driven by the register file's per-register
//! consumer wakeup lists (see `regfile.rs`): a writeback wakes exactly its
//! subscribers.
//!
//! A dense, insertion-ordered snapshot of the occupied entries backs the
//! per-dispatch [`IqEntryView`] slices, so the security-matrix snapshot no
//! longer rebuilds from a full-capacity scan on every dispatch.

use crate::bits;
use crate::policy::{InstClass, IqEntryView};
use crate::regfile::PhysReg;

/// The hot (per-cycle) record of one issue-queue entry.
///
/// Scheduler-visible state (`issued`, `blocked`) is private and mutated
/// only through [`IssueQueue::mark_issued`] and [`IssueQueue::bounce`],
/// which keep the bitmap words coherent with the records; freshly
/// constructed entries are not-issued and not-blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqHot {
    /// Global sequence number.
    pub seq: u64,
    /// Classification for the security matrix.
    pub class: InstClass,
    /// Source physical registers that must be ready before issue.
    pub srcs: [Option<PhysReg>; 2],
    /// Whether this is a memory instruction (consumes a cache port).
    pub is_mem: bool,
    /// Whether this is a fence.
    pub is_fence: bool,
    issued: bool,
    blocked: bool,
}

impl IqHot {
    /// A fresh, not-yet-issued entry.
    pub fn new(
        seq: u64,
        class: InstClass,
        srcs: [Option<PhysReg>; 2],
        is_mem: bool,
        is_fence: bool,
    ) -> Self {
        IqHot {
            seq,
            class,
            srcs,
            is_mem,
            is_fence,
            issued: false,
            blocked: false,
        }
    }

    /// Whether the entry has issued (and not been bounced back).
    pub fn issued(&self) -> bool {
        self.issued
    }

    /// Whether a hazard filter blocked the entry; it re-issues only once
    /// its security dependences clear.
    pub fn blocked(&self) -> bool {
        self.blocked
    }
}

/// Sentinel in `view_pos` for unoccupied slots.
const NO_VIEW: usize = usize::MAX;

/// A fixed-capacity issue queue with stable slots, a free list, SoA hot
/// records and an incrementally maintained bitmap scoreboard.
///
/// Entry state that the scheduler depends on (`issued`, `blocked`,
/// operand readiness) is mutated only through
/// [`IssueQueue::mark_issued`], [`IssueQueue::bounce`] and
/// [`IssueQueue::set_ops_ready`], which keep the bit masks and the dense
/// view list coherent with the records; [`IssueQueue::check_bitmaps`]
/// re-derives every word from the records to verify that.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::iq::{IssueQueue, IqHot};
/// use condspec_pipeline::policy::InstClass;
///
/// let mut iq = IssueQueue::new(4);
/// let entry = IqHot::new(0, InstClass::Other, [None, None], false, false);
/// let slot = iq.allocate(entry).unwrap();
/// iq.set_ops_ready(slot);
/// let mut ready = Vec::new();
/// iq.collect_ready(&mut ready);
/// assert_eq!(ready, vec![(0, slot)]);
/// iq.free_slot(slot);
/// assert!(iq.get(slot).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct IssueQueue {
    /// Flat hot records; `hot[slot]` is meaningful only when the
    /// `occupied` bit for `slot` is set (stale otherwise).
    hot: Vec<IqHot>,
    free: Vec<usize>,
    /// One bit per occupied slot.
    occupied: Vec<u64>,
    /// One bit per occupied slot that has not (or not successfully)
    /// issued — the complement of `issued` over occupied slots.
    unissued: Vec<u64>,
    /// One bit per occupied slot whose source operands are all ready.
    /// Operand readiness is monotone for a resident entry (results are
    /// delivered through next-cycle completion events, and a squash frees
    /// the consumer before its sources can be re-renamed), so this bit is
    /// set once — at allocation or by a wakeup — and cleared only when
    /// the slot is freed.
    ops_ready: Vec<u64>,
    /// One bit per occupied slot a hazard filter bounced (secure-blocked);
    /// the idle fast-forward walks exactly these bits.
    blocked: Vec<u64>,
    /// Dense snapshot of the occupied entries, insertion-ordered (holes
    /// closed by swap-remove), kept in sync by the mutation methods.
    views: Vec<IqEntryView>,
    /// Position of each occupied slot in `views` (`NO_VIEW` when free).
    view_pos: Vec<usize>,
    /// Scratch for the rare [`IssueQueue::views_excluding`] fallback where
    /// the excluded slot is not the most recently allocated one.
    views_scratch: Vec<IqEntryView>,
}

impl IssueQueue {
    /// Creates an empty issue queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IQ capacity must be nonzero");
        let words = capacity.div_ceil(64);
        IssueQueue {
            hot: vec![IqHot::new(0, InstClass::Other, [None, None], false, false); capacity],
            free: (0..capacity).rev().collect(),
            occupied: vec![0; words],
            unissued: vec![0; words],
            ops_ready: vec![0; words],
            blocked: vec![0; words],
            views: Vec::with_capacity(capacity),
            view_pos: vec![NO_VIEW; capacity],
            views_scratch: Vec::with_capacity(capacity),
        }
    }

    /// Empties the queue, returning every slot to the free list. Keeps
    /// allocated storage so a reloaded core stays allocation-free.
    pub fn reset(&mut self) {
        self.free.clear();
        self.free.extend((0..self.hot.len()).rev());
        self.occupied.iter_mut().for_each(|w| *w = 0);
        self.unissued.iter_mut().for_each(|w| *w = 0);
        self.ops_ready.iter_mut().for_each(|w| *w = 0);
        self.blocked.iter_mut().for_each(|w| *w = 0);
        self.views.clear();
        self.view_pos.iter_mut().for_each(|p| *p = NO_VIEW);
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.hot.len()
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.views.len()
    }

    /// Whether no slot is free.
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Inserts an entry, returning its slot, or `None` when full.
    pub fn allocate(&mut self, entry: IqHot) -> Option<usize> {
        let slot = self.free.pop()?;
        debug_assert!(!bits::test_bit(&self.occupied, slot));
        debug_assert!(
            !bits::test_bit(&self.ops_ready, slot),
            "stale ready bit on a free slot"
        );
        debug_assert!(!entry.issued && !entry.blocked);
        bits::set_bit(&mut self.occupied, slot);
        bits::set_bit(&mut self.unissued, slot);
        self.view_pos[slot] = self.views.len();
        self.views.push(IqEntryView {
            slot,
            seq: entry.seq,
            class: entry.class,
            issued: false,
        });
        self.hot[slot] = entry;
        Some(slot)
    }

    /// Releases a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free.
    pub fn free_slot(&mut self, slot: usize) {
        assert!(
            bits::test_bit(&self.occupied, slot),
            "freeing an already-free IQ slot {slot}"
        );
        bits::clear_bit(&mut self.occupied, slot);
        bits::clear_bit(&mut self.unissued, slot);
        bits::clear_bit(&mut self.ops_ready, slot);
        bits::clear_bit(&mut self.blocked, slot);
        let pos = self.view_pos[slot];
        self.view_pos[slot] = NO_VIEW;
        self.views.swap_remove(pos);
        if let Some(moved) = self.views.get(pos) {
            self.view_pos[moved.slot] = pos;
        }
        self.free.push(slot);
    }

    /// The entry in `slot`, if occupied.
    pub fn get(&self, slot: usize) -> Option<&IqHot> {
        if slot < self.hot.len() && bits::test_bit(&self.occupied, slot) {
            Some(&self.hot[slot])
        } else {
            None
        }
    }

    /// Marks the entry as issued (clearing any blocked state).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn mark_issued(&mut self, slot: usize) {
        assert!(
            bits::test_bit(&self.occupied, slot),
            "mark_issued on free slot"
        );
        let entry = &mut self.hot[slot];
        entry.issued = true;
        entry.blocked = false;
        bits::clear_bit(&mut self.unissued, slot);
        bits::clear_bit(&mut self.blocked, slot);
        self.views[self.view_pos[slot]].issued = true;
    }

    /// Returns an issued entry to the not-issued, blocked state (a hazard
    /// filter cancelled it, or it must wait on an older store).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn bounce(&mut self, slot: usize) {
        assert!(bits::test_bit(&self.occupied, slot), "bounce on free slot");
        let entry = &mut self.hot[slot];
        entry.issued = false;
        entry.blocked = true;
        bits::set_bit(&mut self.unissued, slot);
        bits::set_bit(&mut self.blocked, slot);
        self.views[self.view_pos[slot]].issued = false;
    }

    /// Records that every source operand of the entry in `slot` is ready.
    /// Idempotent; called at allocation (all-ready dispatch) or when a
    /// wakeup observes the last outstanding operand becoming ready.
    pub fn set_ops_ready(&mut self, slot: usize) {
        debug_assert!(
            bits::test_bit(&self.occupied, slot),
            "ready bit for a free slot"
        );
        bits::set_bit(&mut self.ops_ready, slot);
    }

    /// Whether the operands-ready bit is set for `slot`.
    pub fn ops_ready(&self, slot: usize) -> bool {
        bits::test_bit(&self.ops_ready, slot)
    }

    /// Iterates over `(slot, entry)` for occupied slots, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &IqHot)> {
        self.occupied
            .iter()
            .enumerate()
            .flat_map(move |(w, &word)| {
                let mut mask = word;
                std::iter::from_fn(move || {
                    if mask == 0 {
                        return None;
                    }
                    let slot = w * 64 + mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    Some(slot)
                })
            })
            .map(move |slot| (slot, &self.hot[slot]))
    }

    /// Calls `f(slot)` for every secure-blocked entry — a masked walk of
    /// the `blocked` word, so the idle fast-forward touches only bounced
    /// entries instead of scanning the whole queue.
    #[inline]
    pub fn for_each_blocked(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.blocked.iter().enumerate() {
            let mut mask = word;
            while mask != 0 {
                f(w * 64 + mask.trailing_zeros() as usize);
                mask &= mask - 1;
            }
        }
    }

    /// Appends every not-issued entry whose operands are ready to `out`
    /// as `(seq, slot)` — the issue-select candidate set, straight from
    /// the scoreboard masks.
    pub fn collect_ready(&self, out: &mut Vec<(u64, usize)>) {
        for (w, (unissued, ready)) in self.unissued.iter().zip(&self.ops_ready).enumerate() {
            let mut mask = unissued & ready;
            while mask != 0 {
                let slot = w * 64 + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                debug_assert!(bits::test_bit(&self.occupied, slot));
                out.push((self.hot[slot].seq, slot));
            }
        }
    }

    /// Views of every occupied slot, for the security matrix's
    /// initialization formula. Insertion-ordered (with swap-remove hole
    /// filling), *not* slot-ordered; the matrix consumes the set, not the
    /// order.
    pub fn views(&self) -> &[IqEntryView] {
        &self.views
    }

    /// Like [`IssueQueue::views`], but omits `skip` — used at dispatch to
    /// snapshot the queue as it was before the newest entry was allocated.
    /// O(1) when `skip` is the most recently allocated entry (the
    /// dispatch pattern); the returned slice borrows internal storage and
    /// is valid until the next mutation.
    pub fn views_excluding(&mut self, skip: usize) -> &[IqEntryView] {
        if skip >= self.hot.len() || !bits::test_bit(&self.occupied, skip) {
            return &self.views;
        }
        let pos = self.view_pos[skip];
        if pos + 1 == self.views.len() {
            return &self.views[..pos];
        }
        self.views_scratch.clear();
        self.views_scratch
            .extend(self.views.iter().filter(|v| v.slot != skip));
        &self.views_scratch
    }

    /// Removes all entries with `seq > target`; clears `out` and fills it
    /// with their slots so callers can reuse one buffer across squashes.
    pub fn squash_after_into(&mut self, target: u64, out: &mut Vec<usize>) {
        out.clear();
        for w in 0..self.occupied.len() {
            let mut mask = self.occupied[w];
            while mask != 0 {
                let slot = w * 64 + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if self.hot[slot].seq > target {
                    self.free_slot(slot);
                    out.push(slot);
                }
            }
        }
    }

    /// Re-derives every bitmap word, the dense view list and the free
    /// list from the hot records and verifies they agree with the
    /// incrementally maintained state. Diagnostic; run from
    /// `Core::check_invariants` and the differential scheduler tests,
    /// mirroring `Rob::check_bitmaps`.
    pub fn check_bitmaps(&self) -> Result<(), String> {
        let mut free_seen = vec![false; self.hot.len()];
        for &slot in &self.free {
            if free_seen[slot] {
                return Err(format!("slot {slot} appears twice in the IQ free list"));
            }
            free_seen[slot] = true;
        }
        for (slot, &free) in free_seen.iter().enumerate() {
            let occ = bits::test_bit(&self.occupied, slot);
            if occ == free {
                return Err(format!(
                    "occupied bit and free list disagree for slot {slot}"
                ));
            }
            if occ {
                let entry = &self.hot[slot];
                if bits::test_bit(&self.unissued, slot) == entry.issued {
                    return Err(format!("unissued bit stale for slot {slot}"));
                }
                if bits::test_bit(&self.blocked, slot) != entry.blocked {
                    return Err(format!("blocked bit stale for slot {slot}"));
                }
                if entry.issued && entry.blocked {
                    return Err(format!("slot {slot} both issued and blocked"));
                }
                let pos = self.view_pos[slot];
                let Some(view) = self.views.get(pos) else {
                    return Err(format!("view position out of range for slot {slot}"));
                };
                if view.slot != slot
                    || view.seq != entry.seq
                    || view.class != entry.class
                    || view.issued != entry.issued
                {
                    return Err(format!("dense view stale for slot {slot}: {view:?}"));
                }
            } else {
                if bits::test_bit(&self.unissued, slot)
                    || bits::test_bit(&self.ops_ready, slot)
                    || bits::test_bit(&self.blocked, slot)
                {
                    return Err(format!("scoreboard bit set for free slot {slot}"));
                }
                if self.view_pos[slot] != NO_VIEW {
                    return Err(format!("free slot {slot} still has a view position"));
                }
            }
        }
        if self.views.len() != self.hot.len() - self.free.len() {
            return Err(format!(
                "dense view count {} != occupancy {}",
                self.views.len(),
                self.hot.len() - self.free.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> IqHot {
        IqHot::new(seq, InstClass::Other, [None, None], false, false)
    }

    fn ready_set(iq: &IssueQueue) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        iq.collect_ready(&mut out);
        out.sort_unstable();
        out
    }

    fn blocked_set(iq: &IssueQueue) -> Vec<usize> {
        let mut out = Vec::new();
        iq.for_each_blocked(|s| out.push(s));
        out
    }

    #[test]
    fn allocate_until_full() {
        let mut iq = IssueQueue::new(2);
        assert!(iq.allocate(entry(0)).is_some());
        assert!(iq.allocate(entry(1)).is_some());
        assert!(iq.is_full());
        assert!(iq.allocate(entry(2)).is_none());
        assert_eq!(iq.occupancy(), 2);
        iq.check_bitmaps().unwrap();
    }

    #[test]
    fn slots_are_stable_and_reusable() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(0)).unwrap();
        let s1 = iq.allocate(entry(1)).unwrap();
        assert_ne!(s0, s1);
        iq.free_slot(s0);
        assert_eq!(iq.get(s1).unwrap().seq, 1, "other slots untouched");
        let s2 = iq.allocate(entry(2)).unwrap();
        assert_eq!(s2, s0, "freed slot is reused");
        iq.check_bitmaps().unwrap();
    }

    #[test]
    fn views_reflect_state() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(7)).unwrap();
        iq.mark_issued(s0);
        let views = iq.views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].seq, 7);
        assert!(views[0].issued);
        assert_eq!(views[0].slot, s0);
        iq.bounce(s0);
        assert!(!iq.views()[0].issued, "bounce un-issues the view");
        assert!(iq.get(s0).unwrap().blocked());
        iq.check_bitmaps().unwrap();
    }

    #[test]
    fn blocked_bitmap_tracks_bounce_and_reissue() {
        let mut iq = IssueQueue::new(130); // spans three words
        let a = iq.allocate(entry(1)).unwrap();
        let b = iq.allocate(entry(2)).unwrap();
        assert!(blocked_set(&iq).is_empty());
        iq.mark_issued(a);
        iq.bounce(a);
        iq.mark_issued(b);
        iq.bounce(b);
        assert_eq!(blocked_set(&iq), vec![a, b]);
        iq.mark_issued(a);
        assert_eq!(blocked_set(&iq), vec![b], "re-issue clears the bit");
        iq.free_slot(b);
        assert!(blocked_set(&iq).is_empty(), "free clears the bit");
        iq.check_bitmaps().unwrap();
    }

    #[test]
    fn views_excluding_omits_one_slot() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(3)).unwrap();
        let s1 = iq.allocate(entry(4)).unwrap();
        let views: Vec<IqEntryView> = iq.views_excluding(s1).to_vec();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].slot, s0);
        // The non-last exclusion takes the scratch fallback.
        let views: Vec<IqEntryView> = iq.views_excluding(s0).to_vec();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].slot, s1);
        assert_eq!(iq.views().len(), 2, "plain views sees every entry");
        // Excluding a free slot changes nothing.
        iq.free_slot(s0);
        assert_eq!(iq.views_excluding(s0).len(), 1);
    }

    #[test]
    fn dense_views_survive_interior_free() {
        let mut iq = IssueQueue::new(8);
        let slots: Vec<usize> = (0..5).map(|s| iq.allocate(entry(s)).unwrap()).collect();
        iq.free_slot(slots[1]);
        iq.free_slot(slots[3]);
        let mut seqs: Vec<u64> = iq.views().iter().map(|v| v.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 2, 4]);
        iq.check_bitmaps().unwrap();
    }

    #[test]
    fn reset_frees_every_slot() {
        let mut iq = IssueQueue::new(3);
        let s = iq.allocate(entry(0)).unwrap();
        iq.set_ops_ready(s);
        iq.mark_issued(s);
        iq.bounce(s);
        iq.allocate(entry(1)).unwrap();
        iq.reset();
        assert_eq!(iq.occupancy(), 0);
        assert!(ready_set(&iq).is_empty(), "reset clears the scoreboard");
        assert!(blocked_set(&iq).is_empty(), "reset clears blocked bits");
        iq.check_bitmaps().unwrap();
        // All slots allocatable again, lowest index first.
        assert_eq!(iq.allocate(entry(2)), Some(0));
    }

    #[test]
    fn squash_removes_younger_only() {
        let mut iq = IssueQueue::new(4);
        iq.allocate(entry(1)).unwrap();
        iq.allocate(entry(5)).unwrap();
        iq.allocate(entry(9)).unwrap();
        let mut removed = Vec::new();
        iq.squash_after_into(5, &mut removed);
        assert_eq!(removed.len(), 1);
        assert_eq!(iq.occupancy(), 2);
        assert!(iq.iter().all(|(_, e)| e.seq <= 5));
        iq.check_bitmaps().unwrap();
    }

    #[test]
    fn collect_ready_tracks_scoreboard() {
        let mut iq = IssueQueue::new(130); // spans three words
        let a = iq.allocate(entry(10)).unwrap();
        let b = iq.allocate(entry(11)).unwrap();
        let c = iq.allocate(entry(12)).unwrap();
        assert!(ready_set(&iq).is_empty(), "nothing ready yet");
        iq.set_ops_ready(a);
        iq.set_ops_ready(c);
        assert_eq!(ready_set(&iq), vec![(10, a), (12, c)]);
        iq.mark_issued(a);
        assert_eq!(ready_set(&iq), vec![(12, c)], "issued entries drop out");
        iq.bounce(a);
        assert_eq!(
            ready_set(&iq),
            vec![(10, a), (12, c)],
            "bounced entries return (operands stay ready)"
        );
        iq.set_ops_ready(b);
        iq.free_slot(b);
        assert_eq!(ready_set(&iq), vec![(10, a), (12, c)]);
        iq.check_bitmaps().unwrap();
    }

    #[test]
    #[should_panic(expected = "already-free")]
    fn double_free_panics() {
        let mut iq = IssueQueue::new(2);
        let s = iq.allocate(entry(0)).unwrap();
        iq.free_slot(s);
        iq.free_slot(s);
    }
}

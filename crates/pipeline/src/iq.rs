//! Issue queue with stable slot indices and a bitset scheduler scoreboard.
//!
//! Slots are stable for the lifetime of an entry because the security
//! dependence matrix (in the `condspec` crate) is indexed by IQ position,
//! exactly like the paper's Figure 2.
//!
//! Scheduling state is kept in three per-slot bit masks maintained
//! incrementally — `occupied`, `unissued` and `ops_ready` — so candidate
//! collection is a word-wise `unissued & ops_ready` instead of re-testing
//! every entry's operands each cycle. The `ops_ready` bits are driven by
//! the register file's per-register consumer wakeup lists (see
//! `regfile.rs`): a writeback wakes exactly its subscribers.
//!
//! A dense, insertion-ordered snapshot of the occupied entries backs the
//! per-dispatch [`IqEntryView`] slices, so the security-matrix snapshot no
//! longer rebuilds from a full-capacity scan on every dispatch.

use crate::policy::{InstClass, IqEntryView};
use crate::regfile::PhysReg;

/// One issue-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// Global sequence number.
    pub seq: u64,
    /// Classification for the security matrix.
    pub class: InstClass,
    /// Source physical registers that must be ready before issue.
    pub srcs: [Option<PhysReg>; 2],
    /// Whether the entry has issued (and not been bounced back).
    pub issued: bool,
    /// Whether a hazard filter blocked the entry; it re-issues only once
    /// its security dependences clear.
    pub blocked: bool,
    /// Whether this is a memory instruction (consumes a cache port).
    pub is_mem: bool,
    /// Whether this is a fence.
    pub is_fence: bool,
}

#[inline]
fn word_bit(slot: usize) -> (usize, u64) {
    (slot / 64, 1u64 << (slot % 64))
}

/// Sentinel in `view_pos` for unoccupied slots.
const NO_VIEW: usize = usize::MAX;

/// A fixed-capacity issue queue with stable slots, a free list and an
/// incrementally maintained scheduling scoreboard.
///
/// Entry state that the scheduler depends on (`issued`, operand
/// readiness) is mutated only through [`IssueQueue::mark_issued`],
/// [`IssueQueue::bounce`] and [`IssueQueue::set_ops_ready`], which keep
/// the bit masks and the dense view list coherent with the entries.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::iq::{IssueQueue, IqEntry};
/// use condspec_pipeline::policy::InstClass;
///
/// let mut iq = IssueQueue::new(4);
/// let entry = IqEntry {
///     seq: 0, class: InstClass::Other, srcs: [None, None],
///     issued: false, blocked: false, is_mem: false, is_fence: false,
/// };
/// let slot = iq.allocate(entry).unwrap();
/// iq.set_ops_ready(slot);
/// let mut ready = Vec::new();
/// iq.collect_ready(&mut ready);
/// assert_eq!(ready, vec![(0, slot)]);
/// iq.free_slot(slot);
/// assert!(iq.get(slot).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct IssueQueue {
    slots: Vec<Option<IqEntry>>,
    free: Vec<usize>,
    /// One bit per occupied slot.
    occupied: Vec<u64>,
    /// One bit per occupied slot that has not (or not successfully)
    /// issued — the complement of `issued` over occupied slots.
    unissued: Vec<u64>,
    /// One bit per occupied slot whose source operands are all ready.
    /// Operand readiness is monotone for a resident entry (results are
    /// delivered through next-cycle completion events, and a squash frees
    /// the consumer before its sources can be re-renamed), so this bit is
    /// set once — at allocation or by a wakeup — and cleared only when
    /// the slot is freed.
    ops_ready: Vec<u64>,
    /// Dense snapshot of the occupied entries, insertion-ordered (holes
    /// closed by swap-remove), kept in sync by the mutation methods.
    views: Vec<IqEntryView>,
    /// Position of each occupied slot in `views` (`NO_VIEW` when free).
    view_pos: Vec<usize>,
    /// Scratch for the rare [`IssueQueue::views_excluding`] fallback where
    /// the excluded slot is not the most recently allocated one.
    views_scratch: Vec<IqEntryView>,
}

impl IssueQueue {
    /// Creates an empty issue queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IQ capacity must be nonzero");
        let words = capacity.div_ceil(64);
        IssueQueue {
            slots: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            occupied: vec![0; words],
            unissued: vec![0; words],
            ops_ready: vec![0; words],
            views: Vec::with_capacity(capacity),
            view_pos: vec![NO_VIEW; capacity],
            views_scratch: Vec::with_capacity(capacity),
        }
    }

    /// Empties the queue, returning every slot to the free list. Keeps
    /// allocated storage so a reloaded core stays allocation-free.
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.free.clear();
        self.free.extend((0..self.slots.len()).rev());
        self.occupied.iter_mut().for_each(|w| *w = 0);
        self.unissued.iter_mut().for_each(|w| *w = 0);
        self.ops_ready.iter_mut().for_each(|w| *w = 0);
        self.views.clear();
        self.view_pos.iter_mut().for_each(|p| *p = NO_VIEW);
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.views.len()
    }

    /// Whether no slot is free.
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Inserts an entry, returning its slot, or `None` when full.
    pub fn allocate(&mut self, entry: IqEntry) -> Option<usize> {
        let slot = self.free.pop()?;
        debug_assert!(self.slots[slot].is_none());
        let (w, b) = word_bit(slot);
        debug_assert_eq!(self.ops_ready[w] & b, 0, "stale ready bit on a free slot");
        self.occupied[w] |= b;
        if !entry.issued {
            self.unissued[w] |= b;
        }
        self.view_pos[slot] = self.views.len();
        self.views.push(IqEntryView {
            slot,
            seq: entry.seq,
            class: entry.class,
            issued: entry.issued,
        });
        self.slots[slot] = Some(entry);
        Some(slot)
    }

    /// Releases a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free.
    pub fn free_slot(&mut self, slot: usize) {
        assert!(
            self.slots[slot].is_some(),
            "freeing an already-free IQ slot {slot}"
        );
        self.slots[slot] = None;
        let (w, b) = word_bit(slot);
        self.occupied[w] &= !b;
        self.unissued[w] &= !b;
        self.ops_ready[w] &= !b;
        let pos = self.view_pos[slot];
        self.view_pos[slot] = NO_VIEW;
        self.views.swap_remove(pos);
        if let Some(moved) = self.views.get(pos) {
            self.view_pos[moved.slot] = pos;
        }
        self.free.push(slot);
    }

    /// The entry in `slot`, if occupied.
    pub fn get(&self, slot: usize) -> Option<&IqEntry> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Marks the entry as issued (clearing any blocked state).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn mark_issued(&mut self, slot: usize) {
        let entry = self.slots[slot].as_mut().expect("mark_issued on free slot");
        entry.issued = true;
        entry.blocked = false;
        let (w, b) = word_bit(slot);
        self.unissued[w] &= !b;
        self.views[self.view_pos[slot]].issued = true;
    }

    /// Returns an issued entry to the not-issued, blocked state (a hazard
    /// filter cancelled it, or it must wait on an older store).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn bounce(&mut self, slot: usize) {
        let entry = self.slots[slot].as_mut().expect("bounce on free slot");
        entry.issued = false;
        entry.blocked = true;
        let (w, b) = word_bit(slot);
        self.unissued[w] |= b;
        self.views[self.view_pos[slot]].issued = false;
    }

    /// Records that every source operand of the entry in `slot` is ready.
    /// Idempotent; called at allocation (all-ready dispatch) or when a
    /// wakeup observes the last outstanding operand becoming ready.
    pub fn set_ops_ready(&mut self, slot: usize) {
        let (w, b) = word_bit(slot);
        debug_assert_ne!(self.occupied[w] & b, 0, "ready bit for a free slot");
        self.ops_ready[w] |= b;
    }

    /// Whether the operands-ready bit is set for `slot`.
    pub fn ops_ready(&self, slot: usize) -> bool {
        let (w, b) = word_bit(slot);
        self.ops_ready[w] & b != 0
    }

    /// Iterates over `(slot, entry)` for occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &IqEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
    }

    /// Appends every not-issued entry whose operands are ready to `out`
    /// as `(seq, slot)` — the issue-select candidate set, straight from
    /// the scoreboard masks.
    pub fn collect_ready(&self, out: &mut Vec<(u64, usize)>) {
        for (w, (unissued, ready)) in self.unissued.iter().zip(&self.ops_ready).enumerate() {
            let mut mask = unissued & ready;
            while mask != 0 {
                let slot = w * 64 + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let entry = self.slots[slot]
                    .as_ref()
                    .expect("scoreboard bit set on a free slot");
                out.push((entry.seq, slot));
            }
        }
    }

    /// Views of every occupied slot, for the security matrix's
    /// initialization formula. Insertion-ordered (with swap-remove hole
    /// filling), *not* slot-ordered; the matrix consumes the set, not the
    /// order.
    pub fn views(&self) -> &[IqEntryView] {
        &self.views
    }

    /// Like [`IssueQueue::views`], but omits `skip` — used at dispatch to
    /// snapshot the queue as it was before the newest entry was allocated.
    /// O(1) when `skip` is the most recently allocated entry (the
    /// dispatch pattern); the returned slice borrows internal storage and
    /// is valid until the next mutation.
    pub fn views_excluding(&mut self, skip: usize) -> &[IqEntryView] {
        let Some(pos) = self
            .slots
            .get(skip)
            .and_then(|s| s.as_ref())
            .map(|_| self.view_pos[skip])
        else {
            return &self.views;
        };
        if pos + 1 == self.views.len() {
            return &self.views[..pos];
        }
        self.views_scratch.clear();
        self.views_scratch
            .extend(self.views.iter().filter(|v| v.slot != skip));
        &self.views_scratch
    }

    /// Removes all entries with `seq > target`; clears `out` and fills it
    /// with their slots so callers can reuse one buffer across squashes.
    pub fn squash_after_into(&mut self, target: u64, out: &mut Vec<usize>) {
        out.clear();
        for w in 0..self.occupied.len() {
            let mut mask = self.occupied[w];
            while mask != 0 {
                let slot = w * 64 + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if self.slots[slot].as_ref().is_some_and(|e| e.seq > target) {
                    self.free_slot(slot);
                    out.push(slot);
                }
            }
        }
    }

    /// Checks that the scoreboard masks, dense view list and free list
    /// agree with the entry storage. Diagnostic; used by the core's
    /// invariant checker and the differential scheduler tests.
    pub fn check_coherence(&self) -> Result<(), String> {
        for slot in 0..self.slots.len() {
            let (w, b) = word_bit(slot);
            let occ = self.occupied[w] & b != 0;
            match &self.slots[slot] {
                Some(entry) => {
                    if !occ {
                        return Err(format!("occupied bit clear for live slot {slot}"));
                    }
                    if (self.unissued[w] & b != 0) == entry.issued {
                        return Err(format!("unissued bit stale for slot {slot}"));
                    }
                    let pos = self.view_pos[slot];
                    let Some(view) = self.views.get(pos) else {
                        return Err(format!("view position out of range for slot {slot}"));
                    };
                    if view.slot != slot
                        || view.seq != entry.seq
                        || view.class != entry.class
                        || view.issued != entry.issued
                    {
                        return Err(format!("dense view stale for slot {slot}: {view:?}"));
                    }
                }
                None => {
                    if occ || self.unissued[w] & b != 0 || self.ops_ready[w] & b != 0 {
                        return Err(format!("scoreboard bit set for free slot {slot}"));
                    }
                    if self.view_pos[slot] != NO_VIEW {
                        return Err(format!("free slot {slot} still has a view position"));
                    }
                }
            }
        }
        if self.views.len() != self.slots.len() - self.free.len() {
            return Err(format!(
                "dense view count {} != occupancy {}",
                self.views.len(),
                self.slots.len() - self.free.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> IqEntry {
        IqEntry {
            seq,
            class: InstClass::Other,
            srcs: [None, None],
            issued: false,
            blocked: false,
            is_mem: false,
            is_fence: false,
        }
    }

    fn ready_set(iq: &IssueQueue) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        iq.collect_ready(&mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn allocate_until_full() {
        let mut iq = IssueQueue::new(2);
        assert!(iq.allocate(entry(0)).is_some());
        assert!(iq.allocate(entry(1)).is_some());
        assert!(iq.is_full());
        assert!(iq.allocate(entry(2)).is_none());
        assert_eq!(iq.occupancy(), 2);
        iq.check_coherence().unwrap();
    }

    #[test]
    fn slots_are_stable_and_reusable() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(0)).unwrap();
        let s1 = iq.allocate(entry(1)).unwrap();
        assert_ne!(s0, s1);
        iq.free_slot(s0);
        assert_eq!(iq.get(s1).unwrap().seq, 1, "other slots untouched");
        let s2 = iq.allocate(entry(2)).unwrap();
        assert_eq!(s2, s0, "freed slot is reused");
        iq.check_coherence().unwrap();
    }

    #[test]
    fn views_reflect_state() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(7)).unwrap();
        iq.mark_issued(s0);
        let views = iq.views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].seq, 7);
        assert!(views[0].issued);
        assert_eq!(views[0].slot, s0);
        iq.bounce(s0);
        assert!(!iq.views()[0].issued, "bounce un-issues the view");
        assert!(iq.get(s0).unwrap().blocked);
        iq.check_coherence().unwrap();
    }

    #[test]
    fn views_excluding_omits_one_slot() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(3)).unwrap();
        let s1 = iq.allocate(entry(4)).unwrap();
        let views: Vec<IqEntryView> = iq.views_excluding(s1).to_vec();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].slot, s0);
        // The non-last exclusion takes the scratch fallback.
        let views: Vec<IqEntryView> = iq.views_excluding(s0).to_vec();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].slot, s1);
        assert_eq!(iq.views().len(), 2, "plain views sees every entry");
        // Excluding a free slot changes nothing.
        iq.free_slot(s0);
        assert_eq!(iq.views_excluding(s0).len(), 1);
    }

    #[test]
    fn dense_views_survive_interior_free() {
        let mut iq = IssueQueue::new(8);
        let slots: Vec<usize> = (0..5).map(|s| iq.allocate(entry(s)).unwrap()).collect();
        iq.free_slot(slots[1]);
        iq.free_slot(slots[3]);
        let mut seqs: Vec<u64> = iq.views().iter().map(|v| v.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 2, 4]);
        iq.check_coherence().unwrap();
    }

    #[test]
    fn reset_frees_every_slot() {
        let mut iq = IssueQueue::new(3);
        let s = iq.allocate(entry(0)).unwrap();
        iq.set_ops_ready(s);
        iq.allocate(entry(1)).unwrap();
        iq.reset();
        assert_eq!(iq.occupancy(), 0);
        assert!(ready_set(&iq).is_empty(), "reset clears the scoreboard");
        iq.check_coherence().unwrap();
        // All slots allocatable again, lowest index first.
        assert_eq!(iq.allocate(entry(2)), Some(0));
    }

    #[test]
    fn squash_removes_younger_only() {
        let mut iq = IssueQueue::new(4);
        iq.allocate(entry(1)).unwrap();
        iq.allocate(entry(5)).unwrap();
        iq.allocate(entry(9)).unwrap();
        let mut removed = Vec::new();
        iq.squash_after_into(5, &mut removed);
        assert_eq!(removed.len(), 1);
        assert_eq!(iq.occupancy(), 2);
        assert!(iq.iter().all(|(_, e)| e.seq <= 5));
        iq.check_coherence().unwrap();
    }

    #[test]
    fn collect_ready_tracks_scoreboard() {
        let mut iq = IssueQueue::new(130); // spans three words
        let a = iq.allocate(entry(10)).unwrap();
        let b = iq.allocate(entry(11)).unwrap();
        let c = iq.allocate(entry(12)).unwrap();
        assert!(ready_set(&iq).is_empty(), "nothing ready yet");
        iq.set_ops_ready(a);
        iq.set_ops_ready(c);
        assert_eq!(ready_set(&iq), vec![(10, a), (12, c)]);
        iq.mark_issued(a);
        assert_eq!(ready_set(&iq), vec![(12, c)], "issued entries drop out");
        iq.bounce(a);
        assert_eq!(
            ready_set(&iq),
            vec![(10, a), (12, c)],
            "bounced entries return (operands stay ready)"
        );
        iq.set_ops_ready(b);
        iq.free_slot(b);
        assert_eq!(ready_set(&iq), vec![(10, a), (12, c)]);
        iq.check_coherence().unwrap();
    }

    #[test]
    #[should_panic(expected = "already-free")]
    fn double_free_panics() {
        let mut iq = IssueQueue::new(2);
        let s = iq.allocate(entry(0)).unwrap();
        iq.free_slot(s);
        iq.free_slot(s);
    }
}

//! Issue queue with stable slot indices.
//!
//! Slots are stable for the lifetime of an entry because the security
//! dependence matrix (in the `condspec` crate) is indexed by IQ position,
//! exactly like the paper's Figure 2.

use crate::policy::{InstClass, IqEntryView};
use crate::regfile::PhysReg;

/// One issue-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// Global sequence number.
    pub seq: u64,
    /// Classification for the security matrix.
    pub class: InstClass,
    /// Source physical registers that must be ready before issue.
    pub srcs: [Option<PhysReg>; 2],
    /// Whether the entry has issued (and not been bounced back).
    pub issued: bool,
    /// Whether a hazard filter blocked the entry; it re-issues only once
    /// its security dependences clear.
    pub blocked: bool,
    /// Whether this is a memory instruction (consumes a cache port).
    pub is_mem: bool,
    /// Whether this is a fence.
    pub is_fence: bool,
}

/// A fixed-capacity issue queue with stable slots and a free list.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::iq::{IssueQueue, IqEntry};
/// use condspec_pipeline::policy::InstClass;
///
/// let mut iq = IssueQueue::new(4);
/// let entry = IqEntry {
///     seq: 0, class: InstClass::Other, srcs: [None, None],
///     issued: false, blocked: false, is_mem: false, is_fence: false,
/// };
/// let slot = iq.allocate(entry).unwrap();
/// assert_eq!(iq.get(slot).unwrap().seq, 0);
/// iq.free_slot(slot);
/// assert!(iq.get(slot).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct IssueQueue {
    slots: Vec<Option<IqEntry>>,
    free: Vec<usize>,
    /// Scratch for [`IssueQueue::views`] / [`IssueQueue::views_excluding`]:
    /// filled in place each call so the per-dispatch snapshot never
    /// allocates after construction.
    views_scratch: Vec<IqEntryView>,
}

impl IssueQueue {
    /// Creates an empty issue queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IQ capacity must be nonzero");
        IssueQueue {
            slots: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            views_scratch: Vec::with_capacity(capacity),
        }
    }

    /// Empties the queue, returning every slot to the free list. Keeps
    /// allocated storage so a reloaded core stays allocation-free.
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.free.clear();
        self.free.extend((0..self.slots.len()).rev());
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no slot is free.
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Inserts an entry, returning its slot, or `None` when full.
    pub fn allocate(&mut self, entry: IqEntry) -> Option<usize> {
        let slot = self.free.pop()?;
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(entry);
        Some(slot)
    }

    /// Releases a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free.
    pub fn free_slot(&mut self, slot: usize) {
        assert!(
            self.slots[slot].is_some(),
            "freeing an already-free IQ slot {slot}"
        );
        self.slots[slot] = None;
        self.free.push(slot);
    }

    /// The entry in `slot`, if occupied.
    pub fn get(&self, slot: usize) -> Option<&IqEntry> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Mutable access to the entry in `slot`.
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut IqEntry> {
        self.slots.get_mut(slot).and_then(|s| s.as_mut())
    }

    /// Iterates over `(slot, entry)` for occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &IqEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
    }

    /// Views of every occupied slot, for the security matrix's
    /// initialization formula. The returned slice borrows an internal
    /// scratch buffer; it is valid until the next `views*` call.
    pub fn views(&mut self) -> &[IqEntryView] {
        self.views_excluding(usize::MAX)
    }

    /// Like [`IssueQueue::views`], but omits `skip` — used at dispatch to
    /// snapshot the queue as it was before the newest entry was allocated.
    pub fn views_excluding(&mut self, skip: usize) -> &[IqEntryView] {
        let scratch = &mut self.views_scratch;
        scratch.clear();
        scratch.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|&(slot, _)| slot != skip)
                .filter_map(|(slot, s)| {
                    s.as_ref().map(|e| IqEntryView {
                        slot,
                        seq: e.seq,
                        class: e.class,
                        issued: e.issued,
                    })
                }),
        );
        scratch
    }

    /// Removes all entries with `seq > target`, returning their slots.
    pub fn squash_after(&mut self, target: u64) -> Vec<usize> {
        let mut removed = Vec::new();
        for slot in 0..self.slots.len() {
            if matches!(&self.slots[slot], Some(e) if e.seq > target) {
                self.free_slot(slot);
                removed.push(slot);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> IqEntry {
        IqEntry {
            seq,
            class: InstClass::Other,
            srcs: [None, None],
            issued: false,
            blocked: false,
            is_mem: false,
            is_fence: false,
        }
    }

    #[test]
    fn allocate_until_full() {
        let mut iq = IssueQueue::new(2);
        assert!(iq.allocate(entry(0)).is_some());
        assert!(iq.allocate(entry(1)).is_some());
        assert!(iq.is_full());
        assert!(iq.allocate(entry(2)).is_none());
        assert_eq!(iq.occupancy(), 2);
    }

    #[test]
    fn slots_are_stable_and_reusable() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(0)).unwrap();
        let s1 = iq.allocate(entry(1)).unwrap();
        assert_ne!(s0, s1);
        iq.free_slot(s0);
        assert_eq!(iq.get(s1).unwrap().seq, 1, "other slots untouched");
        let s2 = iq.allocate(entry(2)).unwrap();
        assert_eq!(s2, s0, "freed slot is reused");
    }

    #[test]
    fn views_reflect_state() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(7)).unwrap();
        iq.get_mut(s0).unwrap().issued = true;
        let views = iq.views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].seq, 7);
        assert!(views[0].issued);
        assert_eq!(views[0].slot, s0);
    }

    #[test]
    fn views_excluding_omits_one_slot() {
        let mut iq = IssueQueue::new(4);
        let s0 = iq.allocate(entry(3)).unwrap();
        let s1 = iq.allocate(entry(4)).unwrap();
        let views = iq.views_excluding(s1);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].slot, s0);
        assert_eq!(iq.views().len(), 2, "plain views sees every entry");
    }

    #[test]
    fn reset_frees_every_slot() {
        let mut iq = IssueQueue::new(3);
        iq.allocate(entry(0)).unwrap();
        iq.allocate(entry(1)).unwrap();
        iq.reset();
        assert_eq!(iq.occupancy(), 0);
        // All slots allocatable again, lowest index first.
        assert_eq!(iq.allocate(entry(2)), Some(0));
    }

    #[test]
    fn squash_removes_younger_only() {
        let mut iq = IssueQueue::new(4);
        iq.allocate(entry(1)).unwrap();
        iq.allocate(entry(5)).unwrap();
        iq.allocate(entry(9)).unwrap();
        let removed = iq.squash_after(5);
        assert_eq!(removed.len(), 1);
        assert_eq!(iq.occupancy(), 2);
        assert!(iq.iter().all(|(_, e)| e.seq <= 5));
    }

    #[test]
    #[should_panic(expected = "already-free")]
    fn double_free_panics() {
        let mut iq = IssueQueue::new(2);
        let s = iq.allocate(entry(0)).unwrap();
        iq.free_slot(s);
        iq.free_slot(s);
    }
}

//! The out-of-order core: fetch → dispatch/rename → issue → execute →
//! writeback → commit, with full wrong-path execution and squash recovery.
//!
//! The design mirrors the paper's Figure 1 processor: a bit-matrix
//! scheduler Issue Queue (with the security dependence matrix attached via
//! [`SecurityPolicy`]), separate load/store queues with speculative store
//! bypass, checkpointed-by-walk-back register renaming, and an L1-first
//! memory pipeline where the Cache-hit and TPBuf filters intercept suspect
//! accesses before they can change cache state.
//!
//! Key modelling choices (see DESIGN.md for rationale):
//!
//! * Issue and execute are fused; multi-cycle results (loads, multiplies)
//!   complete through timed events.
//! * Wrong-path instructions genuinely execute: they read simulated
//!   memory, fill caches and pollute the TLB until squashed. Squash rolls
//!   back registers and queues but never cache contents — the Spectre
//!   attack surface.
//! * Stores write memory and cache at commit; speculative store data lives
//!   in the store queue and forwards to younger loads.
//! * Branches train the predictor at commit (clean history); mispredicts
//!   are detected and squashed at execute.

use crate::events::{Completion, EventWheel};
use crate::iq::{IqHot, IssueQueue};
use crate::lsq::Lsq;
use crate::policy::{
    BlockFilter, DispatchInfo, InstClass, MemAccessQuery, MemDecision, NullPolicy, SecurityPolicy,
};
use crate::regfile::RegFile;
use crate::rob::{CommitClass, Rob, RobState};
use crate::sampler::TimeSeriesSampler;
use crate::snapshot::CoreSnapshot;
use crate::stats::PipelineStats;
use crate::taint::{LeakReport, TaintConfig, TaintOracle};
use crate::trace::{LeakChannel, SquashCause, TraceBuffer, TraceEvent};
use condspec_frontend::FrontEnd;
use condspec_isa::{Inst, Program, Reg, INST_BYTES};
use condspec_mem::{page_number, CacheHierarchy, LruUpdate, MainMemory, PageTable, Tlb};
use condspec_stats::{Histogram, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::Arc;

/// Core (pipeline) configuration. Cache and predictor configuration live
/// in their own crates; the `condspec` crate combines everything into
/// machine presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Issue queue entries (the security dependence matrix is this²).
    pub iq_entries: usize,
    /// Load queue entries.
    pub ldq_entries: usize,
    /// Store queue entries.
    pub stq_entries: usize,
    /// Physical registers.
    pub phys_regs: usize,
    /// Fetch-to-dispatch latency in cycles (front-end depth).
    pub decode_latency: u64,
    /// Additional redirect penalty on a squash (back-end depth).
    pub redirect_penalty: u64,
    /// Whether loads may issue past older stores with unresolved
    /// addresses (speculative store bypass — required for Spectre V4).
    pub spec_store_bypass: bool,
    /// Loads that may access the data cache per cycle.
    pub cache_ports: usize,
    /// Fetch queue capacity.
    pub fetch_queue: usize,
    /// Extra execute latency for multiplies.
    pub mul_latency: u64,
    /// Cycles between a hazard filter cancelling an access and the
    /// instruction becoming eligible to re-issue, modelling the
    /// L1-to-Issue-Queue cancel signal and re-arbitration (§V.C's
    /// "re-issue logic").
    pub block_replay_penalty: u64,
    /// The §VII.B *ICache-hit filter* extension: while any conditional
    /// branch, indirect jump or return is unresolved anywhere in the
    /// pipeline, the next-PC is treated as unsafe and instruction fetch
    /// may proceed only if it hits L1I — a speculative fetch is never
    /// allowed to change instruction-cache contents.
    pub icache_filter: bool,
}

impl CoreConfig {
    /// The paper's Table III core: 4-wide, 15-stage, 192-entry ROB,
    /// 64-entry IQ, 32/24 LDQ/STQ.
    pub fn paper_default() -> Self {
        CoreConfig {
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 192,
            iq_entries: 64,
            ldq_entries: 32,
            stq_entries: 24,
            phys_regs: 256,
            decode_latency: 5,
            redirect_penalty: 9,
            spec_store_bypass: true,
            cache_ports: 2,
            fetch_queue: 16,
            mul_latency: 3,
            block_replay_penalty: 12,
            icache_filter: false,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or size is zero, or `phys_regs` cannot cover
    /// the architectural registers plus the ROB.
    pub fn validate(&self) {
        assert!(
            self.fetch_width > 0
                && self.dispatch_width > 0
                && self.issue_width > 0
                && self.commit_width > 0,
            "pipeline widths must be nonzero"
        );
        assert!(
            self.rob_entries > 0
                && self.iq_entries > 0
                && self.ldq_entries > 0
                && self.stq_entries > 0
                && self.fetch_queue > 0,
            "queue sizes must be nonzero"
        );
        assert!(
            self.phys_regs > 32,
            "need more physical than architectural registers"
        );
        assert!(self.cache_ports > 0, "at least one cache port required");
    }
}

/// Why [`Core::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// A `halt` instruction committed.
    Halted,
    /// The cycle budget was exhausted.
    CycleLimit,
    /// No instruction committed for a long time (deadlock watchdog) —
    /// indicates a malformed program (e.g. running off the end of code).
    Stuck,
    /// The commit target of [`Core::run_until_committed`] was reached.
    CommitLimit,
}

/// Why [`Core::run_functional`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionalExit {
    /// A `halt` instruction retired.
    Halted,
    /// The instruction budget was exhausted.
    InstLimit,
    /// The PC left every mapped code region — a malformed program (the
    /// detailed pipeline reports the same condition as
    /// [`ExitReason::Stuck`] after wedging fetch).
    FetchFault,
}

/// Result of a [`Core::run_functional`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalResult {
    /// Why functional execution ended.
    pub exit: FunctionalExit,
    /// Instructions retired by this call (the halt included).
    pub retired: u64,
}

/// Result of a [`Core::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Why the run ended.
    pub exit: ExitReason,
    /// Cycles simulated by this call.
    pub cycles: u64,
    /// Instructions committed by this call.
    pub committed: u64,
}

#[derive(Debug, Clone)]
struct FetchedInst {
    pc: u64,
    inst: Inst,
    predicted_next: u64,
    ras_snapshot: Option<Box<condspec_frontend::ras::RasSnapshot>>,
    ready_cycle: u64,
}

/// Why an IQ entry bounced back to the not-issued state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockReason {
    /// A hazard filter blocked it; wait for security dependences to clear.
    Security,
    /// An older store's address is unknown and store bypass is disabled.
    StoreAddr,
    /// An older overlapping store's data is not yet available.
    StoreData {
        /// The load's virtual address.
        vaddr: u64,
        /// The load's size in bytes.
        size: u64,
    },
}

/// The simulated out-of-order core plus its memory system and front end.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::{Core, CoreConfig};
/// use condspec_isa::{ProgramBuilder, Reg, AluOp};
///
/// # fn main() -> Result<(), condspec_isa::BuildError> {
/// let mut core = Core::with_defaults();
/// let mut b = ProgramBuilder::new(0x1000);
/// b.li(Reg::R1, 20);
/// b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 22);
/// b.halt();
/// core.load_program(std::sync::Arc::new(b.build()?));
/// let result = core.run(10_000);
/// assert_eq!(core.read_arch_reg(Reg::R2), 42);
/// # Ok(())
/// # }
/// ```
pub struct Core {
    config: CoreConfig,
    frontend: FrontEnd,
    hierarchy: CacheHierarchy,
    tlb: Tlb,
    page_table: PageTable,
    memory: MainMemory,
    policy: Box<dyn SecurityPolicy>,

    regfile: RegFile,
    rob: Rob,
    iq: IssueQueue,
    lsq: Lsq,
    block_reasons: Vec<Option<BlockReason>>,
    /// Earliest re-issue cycle for blocked IQ entries (replay penalty).
    blocked_until: Vec<u64>,

    program: Option<Arc<Program>>,
    /// Additional resident code regions (shared libraries / other
    /// processes' executable pages). Unlike the main program these
    /// survive [`Core::load_program`], exactly like the shared predictor
    /// state: they model the shared mapped code pages of the threat
    /// model. Speculative (and architectural) fetch falls back to them
    /// when the PC is outside the main program. `Arc` (not `Rc`): the
    /// engine's cross-worker program cache hands the same decoded
    /// program to cores on different threads.
    shared_code: Vec<Arc<Program>>,
    fetch_pc: u64,
    fetch_stall_until: u64,
    fetch_wedged: bool,
    fetch_queue: VecDeque<FetchedInst>,

    /// Timed completion events, bucketed by due cycle. Never bulk-swept:
    /// squashes and program reloads leave stale events behind, and
    /// delivery drops them by dispatch-stamp mismatch (lazy invalidation).
    events: EventWheel,
    /// Stores whose address has resolved but whose data register is not
    /// yet ready: `(seq, data physical register)`.
    pending_store_data: Vec<(u64, crate::regfile::PhysReg)>,
    /// Unresolved branch-class instructions in the fetch queue.
    fq_unresolved_branches: usize,
    /// Unresolved branch-class instructions in the ROB.
    rob_unresolved_branches: usize,
    /// Sequence numbers of dispatched, not-yet-executed fences, oldest
    /// first. The front is the fence serialization barrier; fences
    /// provably execute in program order (a younger fence cannot issue
    /// past the barrier), so execute pops the front and squash trims the
    /// back.
    fence_seqs: VecDeque<u64>,
    cycle: u64,
    next_seq: u64,
    /// Monotone dispatch counter backing [`crate::rob::RobHot::stamp`].
    /// Never reset
    /// (not even by [`Core::load_program`]), so a stamp uniquely names one
    /// dispatched instruction for the lifetime of the core.
    next_stamp: u64,
    halted: bool,
    last_commit_cycle: u64,
    stats: PipelineStats,
    trace: Option<TraceBuffer>,
    /// Windowed time-series sampler, off (`None`) by default; boxed so
    /// the disabled case costs the hot loop one pointer-sized branch.
    sampler: Option<Box<TimeSeriesSampler>>,
    /// Taint-tracking leak oracle, off (`None`) by default; boxed for the
    /// same reason — with the oracle off the hot loop pays one `Option`
    /// branch per hook and allocates nothing.
    taint: Option<Box<TaintOracle>>,

    // Per-cycle scratch buffers. Each is cleared and refilled where it is
    // used (via `mem::take` so `&mut self` stage methods can run while it
    // is held), and pre-sized at construction so the steady-state hot
    // loop never touches the heap.
    /// `issue_stage`'s ready-candidate list (`(seq, slot)`, oldest first).
    issue_scratch: Vec<(u64, usize)>,
    /// `deliver_completions`' due-event drain.
    due_scratch: Vec<Completion>,
    /// `capture_store_data`'s completed-store list.
    store_done_scratch: Vec<u64>,
    /// `squash_from`'s removed-LSQ-sequence buffer.
    lsq_squash_scratch: Vec<u64>,
    /// `deliver_completions`' woken-subscriber drain (IQ slots).
    woken_scratch: Vec<u16>,
    /// Recycled RAS-snapshot boxes. Snapshots are boxed to keep the ROB's
    /// cold records small, but boxing must not make fetch allocate per
    /// control instruction: dead snapshots (commit, squash, program
    /// reset) return here and fetch reuses them, so the steady-state hot
    /// loop stays heap-free. The pool stores the boxes themselves (not
    /// unboxed values) — recycling must preserve the allocation.
    #[allow(clippy::vec_box)]
    ras_box_pool: Vec<Box<condspec_frontend::ras::RasSnapshot>>,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cycle", &self.cycle)
            .field("committed", &self.stats.committed)
            .field("policy", &self.policy.name())
            .field("halted", &self.halted)
            .finish()
    }
}

/// Watchdog threshold: cycles without a commit before declaring the run
/// stuck.
const STUCK_THRESHOLD: u64 = 100_000;

fn operand_regs(inst: &Inst) -> [Option<Reg>; 2] {
    match *inst {
        Inst::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
        Inst::AluImm { rs1, .. } => [Some(rs1), None],
        Inst::LoadImm { .. } => [None, None],
        Inst::Load { base, .. } => [Some(base), None],
        Inst::Store { base, src, .. } => [Some(base), Some(src)],
        Inst::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
        Inst::Jump { .. } | Inst::Call { .. } => [None, None],
        Inst::JumpIndirect { base, .. } => [Some(base), None],
        Inst::Ret { link } => [Some(link), None],
        Inst::Flush { base, .. } => [Some(base), None],
        Inst::Fence | Inst::Nop | Inst::Halt => [None, None],
    }
}

fn classify(inst: &Inst) -> InstClass {
    if inst.is_mem() {
        InstClass::Memory
    } else if inst.is_branch() {
        InstClass::Branch
    } else {
        InstClass::Other
    }
}

impl Core {
    /// Creates a core from explicit parts.
    pub fn new(
        config: CoreConfig,
        frontend: FrontEnd,
        hierarchy: CacheHierarchy,
        tlb: Tlb,
        page_table: PageTable,
        policy: Box<dyn SecurityPolicy>,
    ) -> Self {
        config.validate();
        Core {
            regfile: RegFile::new(config.phys_regs),
            rob: Rob::new(config.rob_entries),
            iq: IssueQueue::new(config.iq_entries),
            lsq: Lsq::new(config.ldq_entries, config.stq_entries),
            block_reasons: vec![None; config.iq_entries],
            blocked_until: vec![0; config.iq_entries],
            frontend,
            hierarchy,
            tlb,
            page_table,
            memory: MainMemory::new(),
            policy,
            program: None,
            shared_code: Vec::new(),
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_wedged: true,
            fetch_queue: VecDeque::with_capacity(config.fetch_queue),
            // Completions and pending store data are bounded by the number
            // of in-flight instructions; pre-sizing them (and the scratch
            // buffers below) keeps `step` heap-free in steady state. A
            // wheel bucket holds only events due at one cycle, scheduled
            // by at most `issue_width` executes per source cycle across
            // the machine's few distinct completion latencies.
            events: EventWheel::with_bucket_capacity(config.issue_width * 16),
            pending_store_data: Vec::with_capacity(config.stq_entries),
            issue_scratch: Vec::with_capacity(config.iq_entries),
            due_scratch: Vec::with_capacity(config.rob_entries),
            store_done_scratch: Vec::with_capacity(config.stq_entries),
            lsq_squash_scratch: Vec::with_capacity(config.ldq_entries + config.stq_entries),
            // At most two operand subscriptions per IQ entry exist at any
            // moment, so this bound keeps the wakeup drain heap-free.
            woken_scratch: Vec::with_capacity(config.iq_entries * 2),
            ras_box_pool: Vec::new(),
            config,
            fq_unresolved_branches: 0,
            rob_unresolved_branches: 0,
            fence_seqs: VecDeque::with_capacity(config.rob_entries),
            cycle: 0,
            next_seq: 0,
            next_stamp: 0,
            halted: false,
            last_commit_cycle: 0,
            stats: PipelineStats::default(),
            trace: None,
            sampler: None,
            taint: None,
        }
    }

    /// A paper-default core with an unprotected ([`NullPolicy`]) back end.
    pub fn with_defaults() -> Self {
        Core::new(
            CoreConfig::paper_default(),
            FrontEnd::new(condspec_frontend::PredictorConfig::paper_default()),
            CacheHierarchy::new(condspec_mem::HierarchyConfig::paper_default()),
            Tlb::new(condspec_mem::TlbConfig::paper_default()),
            PageTable::new(),
            Box::new(NullPolicy),
        )
    }

    /// Loads a program: resets all architectural and pipeline state,
    /// copies the program's data segments into memory, and points fetch at
    /// the entry. Microarchitectural state (caches, predictors, TLB,
    /// cycle counter, statistics) is deliberately *preserved* so that
    /// attacker and victim programs can be run back-to-back on warm state.
    /// Takes shared ownership: reloading the same `Arc` (the attack-round
    /// and sweep-engine pattern) is a pointer bump instead of a deep copy
    /// of the code and data segments.
    pub fn load_program(&mut self, program: Arc<Program>) {
        self.regfile.reset();
        // Drain (rather than clear) the ROB and fetch queue so in-flight
        // RAS-snapshot boxes return to the pool instead of being freed.
        self.rob.clear_recycle(&mut self.ras_box_pool);
        self.iq.reset();
        self.lsq.reset();
        self.block_reasons.iter_mut().for_each(|r| *r = None);
        self.blocked_until.iter_mut().for_each(|c| *c = 0);
        for fetched in self.fetch_queue.drain(..) {
            if let Some(snap) = fetched.ras_snapshot {
                self.ras_box_pool.push(snap);
            }
        }
        // `events` is deliberately NOT cleared: in-flight completions of
        // the previous program stay scheduled and are dropped at delivery
        // by their dispatch-stamp mismatch (`next_stamp` never resets).
        // This keeps reload O(live state) instead of O(wheel).
        self.pending_store_data.clear();
        self.fq_unresolved_branches = 0;
        self.rob_unresolved_branches = 0;
        self.fence_seqs.clear();
        self.halted = false;
        self.fetch_wedged = false;
        self.fetch_stall_until = self.cycle;
        self.fetch_pc = program.entry();
        self.next_seq = 0;
        self.last_commit_cycle = self.cycle;
        self.policy.reset_transient();
        // Pipeline taint state dies with the pipeline; leaks still pending
        // resolve as squash-surviving (their instructions never commit and
        // the microarchitectural state persists across the reload).
        if let Some(oracle) = self.taint.as_deref_mut() {
            oracle.on_program_load();
        }
        for seg in program.data() {
            let paddr = self.page_table.translate(seg.base);
            self.memory.write_bytes(paddr, &seg.bytes);
            if let Some(oracle) = self.taint.as_deref_mut() {
                oracle.clear_bytes(paddr, seg.bytes.len() as u64);
            }
        }
        if let Some(oracle) = self.taint.as_deref_mut() {
            oracle.mark_config_ranges();
        }
        self.drain_leak_events();
        self.program = Some(program);
    }

    /// Maps an additional resident code region (and loads its data
    /// segments). Shared mappings survive [`Core::load_program`]; use
    /// [`Core::clear_shared_code`] to drop them.
    pub fn map_shared_code(&mut self, program: Arc<Program>) {
        for seg in program.data() {
            let paddr = self.page_table.translate(seg.base);
            self.memory.write_bytes(paddr, &seg.bytes);
        }
        self.shared_code.push(program);
    }

    /// Removes all shared code mappings.
    pub fn clear_shared_code(&mut self) {
        self.shared_code.clear();
    }

    /// Returns the whole machine to the cold power-on state — caches,
    /// predictors, TLB, page table, memory, clock, statistics — without
    /// giving up any allocation. [`Core::load_program`] deliberately
    /// keeps microarchitectural state warm across loads; this is its
    /// complement, used by the sweep engine to reuse one core across
    /// *independent* jobs, where any carried-over state would break
    /// artifact determinism. The caller supplies a freshly built
    /// security policy (policies are rebuilt rather than deep-reset:
    /// they are small, and construction is the one reset path already
    /// proven correct).
    ///
    /// After this call the core is observationally identical to
    /// [`Core::new`] with the same configuration: the event wheel is
    /// empty, so `next_stamp` can rewind to zero without any stale
    /// completion surviving to alias a recycled stamp.
    pub fn reset_cold(&mut self, policy: Box<dyn SecurityPolicy>) {
        self.frontend.reset();
        self.hierarchy.reset();
        self.tlb.reset();
        self.page_table.clear();
        self.memory.reset();
        self.policy = policy;
        self.regfile.reset();
        self.rob.clear_recycle(&mut self.ras_box_pool);
        self.iq.reset();
        self.lsq.reset();
        self.block_reasons.iter_mut().for_each(|r| *r = None);
        self.blocked_until.iter_mut().for_each(|c| *c = 0);
        for fetched in self.fetch_queue.drain(..) {
            if let Some(snap) = fetched.ras_snapshot {
                self.ras_box_pool.push(snap);
            }
        }
        self.events.clear();
        self.pending_store_data.clear();
        self.fq_unresolved_branches = 0;
        self.rob_unresolved_branches = 0;
        self.fence_seqs.clear();
        self.cycle = 0;
        self.next_seq = 0;
        self.next_stamp = 0;
        self.halted = false;
        self.fetch_wedged = false;
        self.fetch_stall_until = 0;
        self.fetch_pc = 0;
        self.last_commit_cycle = 0;
        self.stats = PipelineStats::default();
        self.trace = None;
        self.sampler = None;
        self.taint = None;
        self.program = None;
        self.shared_code.clear();
    }

    fn fetch_inst_at(&self, pc: u64) -> Option<Inst> {
        if let Some(inst) = self.program.as_ref().and_then(|p| p.fetch(pc)) {
            return Some(inst);
        }
        self.shared_code.iter().find_map(|p| p.fetch(pc))
    }

    /// Runs until halt, the cycle budget, or a deadlock watchdog fires.
    ///
    /// Cycles on which the machine provably does nothing — every stage is
    /// waiting on a future time gate — are fast-forwarded in one jump
    /// instead of stepped one by one. The jump is exact: statistics
    /// (cycle and occupancy accounting included) and all architectural
    /// and microarchitectural state are identical to stepping through
    /// the idle window, so drivers that call [`Core::step`] directly see
    /// the same machine at every cycle.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let start_cycle = self.cycle;
        let start_committed = self.stats.committed;
        let limit = start_cycle.saturating_add(max_cycles);
        let mut exit = ExitReason::CycleLimit;
        // One signature computation per step: the post-step fingerprint
        // doubles as the next iteration's pre-step one, and
        // `fast_forward_idle` cannot invalidate it (a skip touches only
        // the clock and the per-cycle statistics, none of which are
        // fingerprinted).
        let mut before = self.activity_signature();
        while self.cycle < limit {
            if self.halted {
                exit = ExitReason::Halted;
                break;
            }
            if self.cycle - self.last_commit_cycle > STUCK_THRESHOLD {
                exit = ExitReason::Stuck;
                break;
            }
            self.step();
            let after = self.activity_signature();
            if after == before {
                self.fast_forward_idle(limit);
            } else {
                before = after;
            }
        }
        if self.halted {
            exit = ExitReason::Halted;
        }
        RunResult {
            exit,
            cycles: self.cycle - start_cycle,
            committed: self.stats.committed - start_committed,
        }
    }

    /// A fingerprint that changes whenever a cycle does *any* work.
    ///
    /// Every state mutation a [`Core::step`] can make is witnessed by one
    /// of these fields: commits and issues (including filter bounces and
    /// squashes, which only start at an issue or an event delivery) bump
    /// monotone counters; dispatch grows the ROB (a simultaneous commit
    /// bumps `committed`); fetch grows the fetch queue, moves `fetch_pc`,
    /// wedges, stalls, or counts an I-cache-filter stall; completions and
    /// store-data captures shrink the event wheel / pending-store list.
    /// Policy, predictor, LSQ and cache state mutate only inside those
    /// same actions. If the fingerprint is unchanged across a step, the
    /// cycle was architecturally and statistically a no-op.
    #[allow(clippy::type_complexity)]
    fn activity_signature(
        &self,
    ) -> (
        u64,
        u64,
        u64,
        usize,
        usize,
        usize,
        usize,
        u64,
        u64,
        bool,
        bool,
    ) {
        (
            self.stats.committed,
            self.stats.issued,
            self.stats.icache_fetch_stalls,
            self.rob.len(),
            self.fetch_queue.len(),
            self.events.len(),
            self.pending_store_data.len(),
            self.fetch_pc,
            self.fetch_stall_until,
            self.fetch_wedged,
            self.halted,
        )
    }

    /// After a no-op cycle, jumps the clock to the next cycle at which
    /// anything *can* happen, clamped to `limit` (the run budget).
    ///
    /// The machine's only time-gated wake-ups are: a completion event
    /// coming due, a blocked IQ entry's replay timer expiring, the fetch
    /// stall ending, the fetch-queue front finishing decode, and the
    /// deadlock watchdog firing. Waking early is harmless (the next step
    /// is another no-op and skipping resumes); the gates above make
    /// waking late impossible. Skipped cycles accrue the exact per-cycle
    /// statistics an idle [`Core::step`] would have: the machine is
    /// unchanged, so occupancy integrals grow linearly.
    fn fast_forward_idle(&mut self, limit: u64) {
        // Serial dependence chains produce single idle cycles between an
        // issue and its completion: the completion is due on the very next
        // step and nothing can be skipped. Bail out on a one-bucket probe
        // before paying for the full gate scan below. (The probe is exact
        // here because the step that just ran drained the wheel at
        // `cycle - 1`, migrating any overflow event that came within a
        // lap.)
        if self.events.due_now(self.cycle) {
            return;
        }
        // Gates are compared with `>=`: the no-op step that got us here ran
        // at `cycle - 1`, so anything due at exactly `cycle` belongs to the
        // step that has NOT run yet and must clamp the skip to zero.
        let mut target = limit.min(self.last_commit_cycle + STUCK_THRESHOLD + 1);
        if !self.fetch_wedged && self.fetch_stall_until >= self.cycle {
            target = target.min(self.fetch_stall_until);
        }
        if let Some(front) = self.fetch_queue.front() {
            if front.ready_cycle >= self.cycle {
                target = target.min(front.ready_cycle);
            }
        }
        // Masked walk of the IQ's blocked bitmap word: only bounced
        // entries can gate the jump, so don't scan the whole queue.
        let blocked_until = &self.blocked_until;
        let cycle = self.cycle;
        let mut blocked_gate = target;
        self.iq.for_each_blocked(|slot| {
            let until = blocked_until[slot];
            if until >= cycle {
                blocked_gate = blocked_gate.min(until);
            }
        });
        target = blocked_gate;
        if let Some(at) = self.events.next_due(self.cycle, target) {
            target = target.min(at);
        }
        // The sampler cuts windows at exact statistics-cycle boundaries;
        // clamp the jump so `stats.cycles` lands on the boundary instead
        // of leaping past it. The next iteration resumes skipping.
        if let Some(sampler) = &self.sampler {
            let remaining = sampler.next_boundary().saturating_sub(self.stats.cycles);
            target = target.min(self.cycle + remaining);
        }
        let skipped = target.saturating_sub(self.cycle);
        if skipped == 0 {
            return;
        }
        self.trace(TraceEvent::FastForward {
            cycle: self.cycle,
            skipped,
        });
        self.cycle = target;
        self.stats.cycles += skipped;
        self.stats.rob_occupancy_sum += skipped * self.rob.len() as u64;
        self.stats.iq_occupancy_sum += skipped * self.iq.occupancy() as u64;
        self.sample_tick();
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.commit_stage();
        self.deliver_completions();
        self.capture_store_data();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        self.cycle += 1;
        self.stats.cycles += 1;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.iq_occupancy_sum += self.iq.occupancy() as u64;
        self.sample_tick();
        self.drain_leak_events();
    }

    /// Moves leak events resolved this step by the oracle into the trace
    /// buffer. One `Option` branch when the oracle is off or idle.
    #[inline]
    fn drain_leak_events(&mut self) {
        let events = match self.taint.as_deref_mut() {
            Some(oracle) if oracle.has_events() => oracle.take_events(),
            _ => return,
        };
        if self.trace.is_some() {
            for event in events.iter().copied() {
                self.trace(event);
            }
        }
        if let Some(oracle) = self.taint.as_deref_mut() {
            oracle.restore_event_buffer(events);
        }
    }

    /// Cuts a sample window if the cycle that just ended reached the
    /// sampler's boundary. One `Option` branch when sampling is off.
    #[inline]
    fn sample_tick(&mut self) {
        if let Some(sampler) = self.sampler.as_deref_mut() {
            if self.stats.cycles >= sampler.next_boundary() {
                sampler.cut(&self.stats);
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit_stage(&mut self) {
        for _ in 0..self.config.commit_width {
            // One bitmap bit test answers "may the head commit?".
            if !self.rob.head_completed() {
                break;
            }
            let entry = *self.rob.head_hot().expect("head exists");
            // The commit class (precomputed at dispatch) says whether the
            // cold record is needed; `Simple` — the common case — commits
            // off the hot record alone. Cold scalars are copied out here,
            // before the pop invalidates the head slot.
            let cold = match entry.class {
                CommitClass::Simple | CommitClass::Control | CommitClass::Halt => None,
                _ => {
                    let c = self.rob.head_cold().expect("head exists");
                    let store_size = match c.inst {
                        Inst::Store { size, .. } => size.bytes(),
                        _ => 0,
                    };
                    Some((
                        c.mem_paddr,
                        c.store_data,
                        store_size,
                        c.actual_next,
                        c.branch_taken,
                    ))
                }
            };
            self.rob.pop_head_recycle(&mut self.ras_box_pool);
            if self.trace.is_some() {
                self.trace(TraceEvent::Commit {
                    cycle: self.cycle,
                    seq: entry.seq,
                    pc: entry.pc,
                });
            }
            self.last_commit_cycle = self.cycle;
            self.stats.committed += 1;
            if let Some(oracle) = self.taint.as_deref_mut() {
                // Pending leaks of a committing instruction were
                // architectural flows: resolve with survived_squash=false.
                oracle.on_commit(entry.seq);
            }
            if let Some((_, _, old)) = entry.dest {
                self.regfile.release(old);
            }
            match entry.class {
                CommitClass::Simple => {}
                CommitClass::Control => {
                    self.stats.committed_branches += 1;
                }
                CommitClass::Load => {
                    let (mem_paddr, ..) = cold.expect("cold copied for loads");
                    self.stats.committed_loads += 1;
                    if entry.was_blocked {
                        self.stats.blocked_committed_loads += 1;
                    }
                    if entry.deferred_lru {
                        if let Some(paddr) = mem_paddr {
                            self.hierarchy.touch_l1d(paddr);
                        }
                    }
                    self.lsq.release_load(entry.seq);
                    self.policy.on_lsq_release(entry.seq);
                }
                CommitClass::Store => {
                    let (mem_paddr, store_data, store_size, ..) =
                        cold.expect("cold copied for stores");
                    self.stats.committed_stores += 1;
                    let paddr = mem_paddr.expect("committed store has an address");
                    let data = store_data.expect("committed store has data");
                    self.memory.write(paddr, data, store_size);
                    if let Some(oracle) = self.taint.as_deref_mut() {
                        // The store's data taint becomes the bytes' taint
                        // (a clean store scrubs previously tainted bytes).
                        oracle.on_store_commit(entry.seq, paddr, store_size);
                    }
                    // Committed stores are architectural: they may fill the
                    // cache (write-allocate) without any security filter.
                    self.hierarchy.access_data(paddr, LruUpdate::Normal);
                    self.lsq.release_store(entry.seq);
                    self.policy.on_lsq_release(entry.seq);
                }
                CommitClass::Flush => {
                    let (mem_paddr, ..) = cold.expect("cold copied for flushes");
                    if let Some(paddr) = mem_paddr {
                        self.hierarchy.flush_line(paddr);
                    }
                }
                CommitClass::Branch => {
                    let (.., actual_next, branch_taken) = cold.expect("cold copied for branches");
                    self.stats.committed_branches += 1;
                    let taken = branch_taken.unwrap_or(false);
                    let target = taken.then_some(actual_next.unwrap_or(0));
                    self.frontend.update_branch(entry.pc, taken, target);
                }
                CommitClass::JumpIndirect => {
                    let (.., actual_next, _) = cold.expect("cold copied for indirect jumps");
                    self.stats.committed_branches += 1;
                    if let Some(t) = actual_next {
                        self.frontend.update_indirect(entry.pc, t);
                    }
                }
                CommitClass::Halt => {
                    self.halted = true;
                    return;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    fn deliver_completions(&mut self) {
        let now = self.cycle;
        // Drain this cycle's bucket into the owned scratch buffer (taken
        // so the delivery loop below can borrow `self` mutably).
        let mut due = std::mem::take(&mut self.due_scratch);
        self.events.drain_due(now, &mut due);
        let mut woken = std::mem::take(&mut self.woken_scratch);
        for event in due.iter().copied() {
            let Some(entry) = self.rob.hot_mut(event.seq) else {
                continue; // squashed while in flight
            };
            if entry.stamp != event.stamp {
                continue; // squashed and the seq was recycled
            }
            if entry.state() != RobState::Issued {
                continue;
            }
            let dest = entry.dest;
            let slot = entry.iq_slot.take();
            self.rob.mark_completed(event.seq);
            if let Some((_, preg, _)) = dest {
                self.regfile.write_and_wake(preg, event.value, &mut woken);
            }
            if self.trace.is_some() {
                self.trace(TraceEvent::Complete {
                    cycle: self.cycle,
                    seq: event.seq,
                });
            }
            if event.is_load {
                self.policy.on_mem_writeback(event.seq);
            }
            if let Some(slot) = slot {
                let slot = slot as usize;
                self.iq.free_slot(slot);
                self.policy.on_slot_freed(slot);
                self.block_reasons[slot] = None;
            }
        }
        // Wakeup: re-check each subscribed slot against its actual
        // operands. A stale subscription (the slot was squashed, possibly
        // reused by a different instruction) is re-checked harmlessly —
        // the ready bit is defined purely by the current entry's sources.
        for slot in woken.drain(..) {
            let slot = slot as usize;
            if let Some(entry) = self.iq.get(slot) {
                if entry
                    .srcs
                    .iter()
                    .flatten()
                    .all(|p| self.regfile.is_ready(*p))
                {
                    self.iq.set_ops_ready(slot);
                }
            }
        }
        self.woken_scratch = woken;
        self.due_scratch = due;
    }

    /// Completes stores whose data register has become ready: the data
    /// enters the store queue (enabling forwarding), the TPBuf W bit is
    /// set, and the store becomes eligible to commit.
    fn capture_store_data(&mut self) {
        if self.pending_store_data.is_empty() {
            return;
        }
        let mut completed = std::mem::take(&mut self.store_done_scratch);
        completed.clear();
        let regfile = &self.regfile;
        self.pending_store_data.retain(|(seq, preg)| {
            if regfile.is_ready(*preg) {
                completed.push(*seq);
                false
            } else {
                true
            }
        });
        for seq in completed.iter().copied() {
            let Some(entry) = self.rob.hot(seq) else {
                continue;
            };
            let data_preg = entry.src_pregs[1].expect("stores have a data operand");
            let data = self.regfile.read(data_preg);
            self.rob.cold_mut(seq).expect("in flight").store_data = Some(data);
            self.rob.mark_completed(seq);
            self.lsq.resolve_store_data(seq, data);
            self.policy.on_mem_writeback(seq);
            if let Some(oracle) = self.taint.as_deref_mut() {
                let tainted = oracle.reg(data_preg);
                oracle.on_store_data(seq, tainted);
            }
        }
        self.store_done_scratch = completed;
    }

    // ------------------------------------------------------------------
    // Issue + execute
    // ------------------------------------------------------------------

    fn issue_stage(&mut self) {
        // Fence serialization barrier: the oldest incomplete fence,
        // maintained incrementally as the front of `fence_seqs`.
        let fence_barrier = self.fence_seqs.front().copied();

        // Gather candidates with ready operands, oldest first, into the
        // owned scratch buffer (pre-sized to the IQ capacity, so this
        // never allocates). The candidate set comes straight from the
        // scoreboard masks (`unissued & ops_ready`); ready bits are set
        // by the writeback wakeups, so readiness cannot change inside
        // this stage — execution results are delivered through
        // next-cycle completion events.
        let mut candidates = std::mem::take(&mut self.issue_scratch);
        candidates.clear();
        self.iq.collect_ready(&mut candidates);
        candidates.sort_unstable();

        let mut issued = 0;
        let mut mem_issued = 0;
        for (seq, slot) in candidates.iter().copied() {
            if issued == self.config.issue_width {
                break;
            }
            // A squash earlier in this round may have freed the slot.
            let Some(entry) = self.iq.get(slot).copied() else {
                continue;
            };
            if entry.seq != seq {
                continue;
            }
            if let Some(barrier) = fence_barrier {
                if seq > barrier {
                    // Held by the serialization barrier. Only noted for
                    // memory candidates (the security-relevant case) and
                    // only at stepped cycles — fast-forward collapses
                    // repeated holds of an idle window into none.
                    if entry.is_mem {
                        self.trace(TraceEvent::FenceHold {
                            cycle: self.cycle,
                            seq,
                        });
                    }
                    continue; // younger than a pending fence
                }
            }
            if entry.is_fence && !self.rob.all_older_completed(seq) {
                continue;
            }
            if entry.blocked() {
                if self.cycle < self.blocked_until[slot] {
                    continue;
                }
                let awake = match self.block_reasons[slot] {
                    Some(BlockReason::Security) => {
                        let cleared = !self.policy.has_pending_dependence(slot);
                        if cleared {
                            // The security dependence matrix column went
                            // clear: the unsafe window closed and the
                            // blocked access may replay.
                            self.trace(TraceEvent::MatrixClear {
                                cycle: self.cycle,
                                seq,
                                slot,
                            });
                        }
                        cleared
                    }
                    Some(BlockReason::StoreAddr) => !self.lsq.older_store_unknown(seq),
                    Some(BlockReason::StoreData { vaddr, size }) => {
                        !self.lsq.older_store_data_unknown(seq, vaddr, size)
                    }
                    None => true,
                };
                if !awake {
                    continue;
                }
            }
            // Operands were ready at collection and a mid-loop squash
            // cannot clear ready bits (it only remaps and frees them).
            debug_assert!(
                entry
                    .srcs
                    .iter()
                    .flatten()
                    .all(|p| self.regfile.is_ready(*p)),
                "candidate lost operand readiness mid-stage"
            );
            if entry.is_mem && mem_issued == self.config.cache_ports {
                continue;
            }

            // Issue.
            let suspect = self.policy.suspect_on_issue(slot);
            self.iq.mark_issued(slot);
            self.block_reasons[slot] = None;
            self.rob.mark_issued(seq);
            self.rob.hot_mut(seq).expect("in flight").suspect = suspect;
            self.stats.issued += 1;
            if self.trace.is_some() {
                self.trace(TraceEvent::Issue {
                    cycle: self.cycle,
                    seq,
                    suspect,
                });
            }
            if entry.is_mem {
                mem_issued += 1;
            }
            issued += 1;

            let bounced = self.execute(seq, slot, suspect);
            if bounced {
                // The entry stays queue-resident, un-issued.
                self.rob.mark_dispatched(seq);
                continue;
            }
            // Successful issue: clear the security-matrix column and free
            // the slot unless the instruction still needs it (loads keep
            // their ROB linkage only; the IQ slot can go).
            self.policy.on_issue(slot);
            // Only loads completing through a timed event keep their
            // slot until writeback; stores (even with pending data) and
            // everything else release it now.
            let keeps_slot = matches!(
                self.rob.hot(seq).map(|e| (e.state(), e.is_load())),
                Some((RobState::Issued, true))
            );
            if keeps_slot {
                // In-flight load completing via an event: slot released at
                // writeback so a squash can find and free it precisely.
                continue;
            }
            self.rob.hot_mut(seq).expect("in flight").iq_slot = None;
            self.iq.free_slot(slot);
            self.policy.on_slot_freed(slot);
        }
        self.issue_scratch = candidates;
    }

    /// Executes a just-issued instruction. Returns `true` if the
    /// instruction bounced back to the IQ (filter block or store-address
    /// wait).
    fn execute(&mut self, seq: u64, slot: usize, suspect: bool) -> bool {
        let entry = self.rob.hot(seq).expect("in flight");
        let pc = entry.pc;
        let src_pregs = entry.src_pregs;
        let stamp = entry.stamp;
        let dest_preg = entry.dest.map(|(_, new, _)| new);
        // Execute is the dispatch/resolve path: the one place the hot
        // loop legitimately reads the cold record.
        let cold = self.rob.cold(seq).expect("in flight");
        let inst = cold.inst;
        let predicted_next = cold.predicted_next;
        let val =
            |idx: usize, rf: &RegFile| -> u64 { src_pregs[idx].map(|p| rf.read(p)).unwrap_or(0) };

        match inst {
            Inst::Alu { op, .. } => {
                let result = op.eval(val(0, &self.regfile), val(1, &self.regfile));
                if let Some(oracle) = self.taint.as_deref_mut() {
                    let tainted = oracle.srcs_tainted(&src_pregs);
                    oracle.set_dest(dest_preg, tainted);
                }
                if op == condspec_isa::AluOp::Mul && self.config.mul_latency > 1 {
                    self.events.schedule(
                        self.cycle,
                        Completion {
                            at: self.cycle + self.config.mul_latency,
                            seq,
                            stamp,
                            value: result,
                            is_load: false,
                        },
                    );
                } else {
                    self.complete_with_value(seq, stamp, result);
                }
                false
            }
            Inst::AluImm { op, imm, .. } => {
                let result = op.eval(val(0, &self.regfile), imm as u64);
                if let Some(oracle) = self.taint.as_deref_mut() {
                    let tainted = oracle.srcs_tainted(&src_pregs);
                    oracle.set_dest(dest_preg, tainted);
                }
                self.complete_with_value(seq, stamp, result);
                false
            }
            Inst::LoadImm { imm, .. } => {
                self.complete_with_value(seq, stamp, imm);
                false
            }
            Inst::Branch { cond, target, .. } => {
                let taken = cond.eval(val(0, &self.regfile), val(1, &self.regfile));
                let actual = if taken { target } else { pc + INST_BYTES };
                self.resolve_control(seq, actual, predicted_next, Some(taken));
                false
            }
            Inst::Jump { target } => {
                self.resolve_control(seq, target, predicted_next, None);
                false
            }
            Inst::Call { target, .. } => {
                let link_value = pc + INST_BYTES;
                self.complete_with_value(seq, stamp, link_value);
                self.resolve_control_after_value(seq, target, predicted_next);
                false
            }
            Inst::Ret { .. } => {
                let actual = val(0, &self.regfile);
                self.resolve_control(seq, actual, predicted_next, None);
                false
            }
            Inst::JumpIndirect { offset, .. } => {
                let actual = val(0, &self.regfile).wrapping_add(offset as u64);
                self.resolve_control(seq, actual, predicted_next, None);
                false
            }
            Inst::Fence => {
                // The issue gate (`seq <= fence_barrier`) means only the
                // barrier fence itself — the deque front — can get here.
                let front = self.fence_seqs.pop_front();
                debug_assert_eq!(front, Some(seq), "fences execute oldest-first");
                self.mark_completed(seq);
                false
            }
            Inst::Nop | Inst::Halt => {
                self.mark_completed(seq);
                false
            }
            Inst::Flush { offset, .. } => {
                let vaddr = val(0, &self.regfile).wrapping_add(offset as u64);
                let addr_tainted = self
                    .taint
                    .as_deref()
                    .is_some_and(|o| o.srcs_tainted(&src_pregs));
                let tlb_misses_before = addr_tainted.then(|| self.tlb.stats().misses());
                let (paddr, _) = self.tlb.translate(vaddr, &self.page_table);
                if let Some(before) = tlb_misses_before {
                    let tlb_filled = self.tlb.stats().misses() > before;
                    let cycle = self.cycle;
                    let oracle = self.taint.as_deref_mut().expect("tainted implies oracle");
                    if tlb_filled {
                        oracle.record_leak(seq, cycle, LeakChannel::TlbFill, paddr, false);
                    }
                    // A tainted-address flush evicts a secret-selected
                    // line; the eviction applies at commit, so a squash
                    // drops the record.
                    oracle.record_leak(seq, cycle, LeakChannel::CacheFill, paddr, true);
                }
                let e = self.rob.cold_mut(seq).expect("in flight");
                e.mem_vaddr = Some(vaddr);
                e.mem_paddr = Some(paddr);
                self.mark_completed(seq);
                false
            }
            Inst::Store { size, offset, .. } => {
                // A store issues once its *address* operands are ready;
                // the data may arrive later (captured by
                // `capture_store_data`). This matches real LSQ behaviour
                // and the paper's dependence-clearance semantics: an
                // issued store no longer holds younger accesses
                // security-dependent.
                let vaddr = val(0, &self.regfile).wrapping_add(offset as u64);
                let addr_tainted = self
                    .taint
                    .as_deref()
                    .is_some_and(|o| src_pregs[0].is_some_and(|p| o.reg(p)));
                let tlb_misses_before = addr_tainted.then(|| self.tlb.stats().misses());
                let (paddr, _) = self.tlb.translate(vaddr, &self.page_table);
                {
                    let e = self.rob.cold_mut(seq).expect("in flight");
                    e.mem_vaddr = Some(vaddr);
                    e.mem_paddr = Some(paddr);
                }
                self.lsq.resolve_store_addr(seq, vaddr);
                self.policy.on_mem_address(seq, page_number(paddr), suspect);
                if let Some(oracle) = self.taint.as_deref_mut() {
                    oracle.on_store_addr(seq, vaddr, size.bytes());
                }
                if let Some(before) = tlb_misses_before {
                    let tlb_filled = self.tlb.stats().misses() > before;
                    let records_pages = self.policy.records_page_addresses();
                    let cycle = self.cycle;
                    let oracle = self.taint.as_deref_mut().expect("tainted implies oracle");
                    if tlb_filled {
                        oracle.record_leak(seq, cycle, LeakChannel::TlbFill, paddr, false);
                    }
                    if records_pages {
                        oracle.record_leak(seq, cycle, LeakChannel::TpbufInsert, paddr, false);
                    }
                }
                let data_preg = src_pregs[1].expect("stores have a data operand");
                if self.regfile.is_ready(data_preg) {
                    let data = self.regfile.read(data_preg);
                    self.rob.cold_mut(seq).expect("in flight").store_data = Some(data);
                    self.rob.mark_completed(seq);
                    self.lsq.resolve_store_data(seq, data);
                    self.policy.on_mem_writeback(seq);
                    if let Some(oracle) = self.taint.as_deref_mut() {
                        let tainted = oracle.reg(data_preg);
                        oracle.on_store_data(seq, tainted);
                    }
                } else {
                    self.pending_store_data.push((seq, data_preg));
                }
                // Memory-order violation check: younger loads that already
                // executed against this address must replay.
                if let Some(load_seq) = self.lsq.violation_on_store(seq, vaddr, size.bytes()) {
                    let redirect = self.rob.hot(load_seq).expect("violating load in flight").pc;
                    self.stats.violation_squashes += 1;
                    self.squash_from(load_seq.saturating_sub(1), redirect, SquashCause::MemOrder);
                }
                false
            }
            Inst::Load { size, offset, .. } => {
                let vaddr = val(0, &self.regfile).wrapping_add(offset as u64);
                let older_unknown = self.lsq.older_store_unknown(seq);
                if older_unknown && !self.config.spec_store_bypass {
                    // Conservative memory disambiguation: wait in the IQ.
                    // (Store-hazard bounces trace the *virtual* page —
                    // translation has not happened yet — and do not count
                    // as defense block events.)
                    self.trace(TraceEvent::Block {
                        cycle: self.cycle,
                        seq,
                        filter: BlockFilter::StoreAddr,
                        vaddr,
                        page: page_number(vaddr),
                    });
                    self.iq.bounce(slot);
                    self.block_reasons[slot] = Some(BlockReason::StoreAddr);
                    self.blocked_until[slot] = self.cycle + self.config.block_replay_penalty;
                    return true;
                }
                if self.lsq.older_store_data_unknown(seq, vaddr, size.bytes()) {
                    // An older store to these bytes has a known address
                    // but pending data: wait for it (forwarding stall).
                    self.trace(TraceEvent::Block {
                        cycle: self.cycle,
                        seq,
                        filter: BlockFilter::StoreData,
                        vaddr,
                        page: page_number(vaddr),
                    });
                    self.iq.bounce(slot);
                    self.block_reasons[slot] = Some(BlockReason::StoreData {
                        vaddr,
                        size: size.bytes(),
                    });
                    self.blocked_until[slot] = self.cycle + self.config.block_replay_penalty;
                    return true;
                }
                let addr_tainted = self
                    .taint
                    .as_deref()
                    .is_some_and(|o| src_pregs[0].is_some_and(|p| o.reg(p)));
                let tlb_misses_before = addr_tainted.then(|| self.tlb.stats().misses());
                let (paddr, tlb_latency) = self.tlb.translate(vaddr, &self.page_table);
                let l1_hit = self.hierarchy.probe_l1d(paddr);
                {
                    let e = self.rob.cold_mut(seq).expect("in flight");
                    e.mem_vaddr = Some(vaddr);
                    e.mem_paddr = Some(paddr);
                }
                self.policy.on_mem_address(seq, page_number(paddr), suspect);
                // Translation and TPBuf recording happen *before* the
                // security filters get to veto the access — exactly the
                // paper's blind spot: even a load the filter then blocks
                // has already planted a TLB entry (and, under the TPBuf
                // policy, an S-Pattern page).
                if let Some(before) = tlb_misses_before {
                    let tlb_filled = self.tlb.stats().misses() > before;
                    let records_pages = self.policy.records_page_addresses();
                    let cycle = self.cycle;
                    let oracle = self.taint.as_deref_mut().expect("tainted implies oracle");
                    if tlb_filled {
                        oracle.record_leak(seq, cycle, LeakChannel::TlbFill, paddr, false);
                    }
                    if records_pages {
                        oracle.record_leak(seq, cycle, LeakChannel::TpbufInsert, paddr, false);
                    }
                }
                if suspect {
                    self.stats.suspect_l1.record(l1_hit);
                } else {
                    self.stats.clean_l1.record(l1_hit);
                }
                let query = MemAccessQuery {
                    seq,
                    slot,
                    suspect,
                    l1_hit,
                    ppn: page_number(paddr),
                };
                let decision = self.policy.check_mem_access(&query);
                // TPBuf probe reconstruction: a suspect L1D miss is
                // exactly the case the S-Pattern filter probes. The
                // outcome is inferred from the decision (an S-Pattern
                // block means the page matched a trained pattern), so the
                // event reflects the *installed* policy — a TPBuf-less
                // policy that lets a suspect miss proceed reads as a
                // non-matching probe.
                if self.trace.is_some() && suspect && !l1_hit {
                    let matched = matches!(
                        decision,
                        MemDecision::Block {
                            filter: BlockFilter::SPattern
                        }
                    );
                    self.trace(TraceEvent::TpbufProbe {
                        cycle: self.cycle,
                        seq,
                        page: page_number(paddr),
                        matched,
                    });
                }
                match decision {
                    MemDecision::Block { filter } => {
                        self.stats.block_events += 1;
                        self.trace(TraceEvent::Block {
                            cycle: self.cycle,
                            seq,
                            filter,
                            vaddr,
                            page: page_number(paddr),
                        });
                        let rob_entry = self.rob.hot_mut(seq).expect("in flight");
                        rob_entry.was_blocked = true;
                        self.iq.bounce(slot);
                        self.block_reasons[slot] = Some(BlockReason::Security);
                        self.blocked_until[slot] = self.cycle + self.config.block_replay_penalty;
                        true
                    }
                    MemDecision::Proceed { l1_update } => {
                        // Suspect accesses never trigger the prefetcher:
                        // a prefetch is a cache-content change the
                        // filters could not police.
                        let outcome = self
                            .hierarchy
                            .access_data_with_prefetch(paddr, l1_update, !suspect);
                        if l1_update == LruUpdate::Deferred && outcome.l1_hit() {
                            self.rob.hot_mut(seq).expect("in flight").deferred_lru = true;
                        }
                        let memory_value = self.memory.read(paddr, size.bytes());
                        let value = self.lsq.overlay(seq, vaddr, size.bytes(), memory_value);
                        self.lsq.resolve_load(seq, vaddr, older_unknown);
                        self.stats.load_accesses += 1;
                        if let Some(oracle) = self.taint.as_deref_mut() {
                            let cycle = self.cycle;
                            if addr_tainted {
                                if !outcome.l1_hit() {
                                    oracle.record_leak(
                                        seq,
                                        cycle,
                                        LeakChannel::CacheFill,
                                        paddr,
                                        false,
                                    );
                                } else {
                                    match l1_update {
                                        LruUpdate::Normal => oracle.record_leak(
                                            seq,
                                            cycle,
                                            LeakChannel::CacheLru,
                                            paddr,
                                            false,
                                        ),
                                        // The deferred touch only happens
                                        // at commit; a squash drops it.
                                        LruUpdate::Deferred => oracle.record_leak(
                                            seq,
                                            cycle,
                                            LeakChannel::CacheLru,
                                            paddr,
                                            true,
                                        ),
                                        LruUpdate::None => {}
                                    }
                                }
                            }
                            // Load-value taint: tainted address (the value
                            // was secret-selected), tainted memory bytes,
                            // or tainted forwarded store data.
                            let value_taint = addr_tainted
                                || oracle.load_value_taint(seq, vaddr, paddr, size.bytes());
                            oracle.set_dest(dest_preg, value_taint);
                        }
                        self.events.schedule(
                            self.cycle,
                            Completion {
                                at: self.cycle + tlb_latency + outcome.latency,
                                seq,
                                stamp,
                                value,
                                is_load: true,
                            },
                        );
                        false
                    }
                }
            }
        }
    }

    /// Schedules a 1-cycle-latency result: the value becomes visible to
    /// consumers (and the instruction completes) at the next cycle, giving
    /// correct back-to-back timing for dependent single-cycle operations.
    fn complete_with_value(&mut self, seq: u64, stamp: u64, value: u64) {
        self.events.schedule(
            self.cycle,
            Completion {
                at: self.cycle + 1,
                seq,
                stamp,
                value,
                is_load: false,
            },
        );
    }

    fn mark_completed(&mut self, seq: u64) {
        self.rob.mark_completed(seq);
    }

    fn resolve_control(&mut self, seq: u64, actual: u64, predicted: u64, taken: Option<bool>) {
        {
            let cold = self.rob.cold_mut(seq).expect("in flight");
            cold.actual_next = Some(actual);
            cold.branch_taken = taken;
        }
        self.rob.mark_completed(seq);
        if self.rob.hot(seq).expect("in flight").is_branch {
            self.rob_unresolved_branches = self.rob_unresolved_branches.saturating_sub(1);
        }
        if actual != predicted {
            self.rob.hot_mut(seq).expect("in flight").mispredicted = true;
            self.stats.mispredict_squashes += 1;
            self.squash_from(seq, actual, SquashCause::Mispredict);
        }
    }

    /// Like [`resolve_control`] but for calls, whose link value was
    /// already written.
    fn resolve_control_after_value(&mut self, seq: u64, actual: u64, predicted: u64) {
        self.rob.cold_mut(seq).expect("in flight").actual_next = Some(actual);
        if actual != predicted {
            self.rob.hot_mut(seq).expect("in flight").mispredicted = true;
            self.stats.mispredict_squashes += 1;
            self.squash_from(seq, actual, SquashCause::Mispredict);
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Squashes every instruction younger than `keep_seq` and redirects
    /// fetch to `redirect_pc`.
    fn squash_from(&mut self, keep_seq: u64, redirect_pc: u64, cause: SquashCause) {
        self.trace(TraceEvent::Squash {
            cycle: self.cycle,
            keep_seq,
            redirect_pc,
            cause,
        });
        // Detach the ROB so its in-place squash walk can borrow the rest
        // of the core. A squash used to copy every removed entry into a
        // scratch buffer; the walk-back now happens directly on the ring,
        // youngest first, moving nothing.
        let mut rob = std::mem::take(&mut self.rob);
        // The RAS must be restored to the state at the *oldest* squashed
        // control instruction (its snapshot predates its own RAS effect).
        // Walking youngest-first, every snapshot seen supersedes the one
        // before it; the superseded boxes go straight back to the pool.
        let mut ras_restore: Option<Box<condspec_frontend::ras::RasSnapshot>> = None;
        let squashed = rob.squash_after_with(keep_seq, |entry, cold| {
            // Walk back renaming, youngest first.
            if let Some((arch, new, old)) = entry.dest {
                self.regfile.unrename(arch, new, old);
            }
            if let Some(slot) = entry.iq_slot {
                let slot = slot as usize;
                // Drop the entry's wakeup subscriptions so consumer lists
                // stay tight. (Any subscription already wiped by a
                // younger squashed entry's register release is a no-op.)
                if let Some(iq_entry) = self.iq.get(slot) {
                    let srcs = iq_entry.srcs;
                    for p in srcs.iter().flatten() {
                        if !self.regfile.is_ready(*p) {
                            self.regfile.unsubscribe(*p, slot);
                        }
                    }
                }
                self.iq.free_slot(slot);
                self.policy.on_slot_freed(slot);
                self.block_reasons[slot] = None;
            }
            if entry.is_branch && entry.state() != RobState::Completed {
                self.rob_unresolved_branches = self.rob_unresolved_branches.saturating_sub(1);
            }
            if let Some(snap) = cold.ras_snapshot.take() {
                if let Some(superseded) = ras_restore.replace(snap) {
                    self.ras_box_pool.push(superseded);
                }
            }
        });
        self.rob = rob;
        self.stats.squashed_insts += squashed;
        // Squashed fences are exactly the trailing deque entries younger
        // than the squash point (completed fences left at execute).
        while matches!(self.fence_seqs.back(), Some(&s) if s > keep_seq) {
            self.fence_seqs.pop_back();
        }
        let mut lsq_squashed = std::mem::take(&mut self.lsq_squash_scratch);
        self.lsq.squash_after_into(keep_seq, &mut lsq_squashed);
        for seq in lsq_squashed.iter().copied() {
            self.policy.on_lsq_release(seq);
        }
        self.lsq_squash_scratch = lsq_squashed;
        if let Some(oracle) = self.taint.as_deref_mut() {
            // Pending leaks of the squashed instructions resolve now:
            // cache fills and TLB entries survive the squash, TPBuf
            // entries were just released with their LSQ slots.
            oracle.on_squash(keep_seq);
        }
        // Squashed sequence numbers are recycled (the next dispatch reuses
        // them), keeping ROB sequence numbers contiguous. Completion
        // events still in flight for squashed instructions are NOT swept
        // here: they stay in the wheel and are dropped at delivery
        // because their dispatch stamp cannot match a reincarnation's.
        self.pending_store_data.retain(|(s, _)| *s <= keep_seq);
        self.next_seq = keep_seq + 1;
        // Restore the RAS: the oldest squashed control instruction's
        // snapshot (collected by the squash walk above), falling back to
        // the oldest snapshot still in the fetch queue.
        if let Some(snap) = ras_restore {
            self.frontend.restore_ras(&snap);
            self.ras_box_pool.push(snap);
        } else if let Some(snap) = self
            .fetch_queue
            .iter()
            .find_map(|f| f.ras_snapshot.as_deref())
        {
            // `snap` borrows `fetch_queue`, disjoint from `frontend`, so
            // no defensive clone is needed.
            self.frontend.restore_ras(snap);
        }
        // The flushed fetch queue's snapshots are dead now that the RAS
        // is restored; recycle their boxes.
        for fetched in self.fetch_queue.drain(..) {
            if let Some(snap) = fetched.ras_snapshot {
                self.ras_box_pool.push(snap);
            }
        }
        self.fq_unresolved_branches = 0;
        self.fetch_pc = redirect_pc;
        self.fetch_wedged = false;
        self.fetch_stall_until = self.cycle + self.config.redirect_penalty;
        self.drain_leak_events();
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------

    fn dispatch_stage(&mut self) {
        for _ in 0..self.config.dispatch_width {
            let Some(fetched) = self.fetch_queue.front() else {
                break;
            };
            if fetched.ready_cycle > self.cycle {
                break;
            }
            if self.rob.is_full() || self.iq.is_full() {
                break;
            }
            let inst = fetched.inst;
            if inst.is_load() && !self.lsq.load_has_space() {
                break;
            }
            if inst.is_store() && !self.lsq.store_has_space() {
                break;
            }
            if inst.dest().is_some() && self.regfile.free_count() == 0 {
                break;
            }
            let fetched = self.fetch_queue.pop_front().expect("checked front");
            if fetched.inst.is_branch() {
                self.fq_unresolved_branches = self.fq_unresolved_branches.saturating_sub(1);
                self.rob_unresolved_branches += 1;
            }
            let seq = self.next_seq;
            self.next_seq += 1;

            let stamp = self.next_stamp;
            self.next_stamp += 1;

            // Capture operand mappings before renaming the destination
            // (handles `add r1, r1, r1`).
            let ops = operand_regs(&inst);
            let src_pregs = [
                ops[0].map(|r| self.regfile.lookup(r)),
                ops[1].map(|r| self.regfile.lookup(r)),
            ];
            let dest = inst.dest().map(|arch| {
                let (new, old) = self
                    .regfile
                    .rename_dest(arch)
                    .expect("free_count checked above");
                (arch, new, old)
            });
            if let Some(oracle) = self.taint.as_deref_mut() {
                // A freshly renamed destination holds no value: clean
                // until its producer writes it.
                if let Some((_, new, _)) = dest {
                    oracle.on_rename(new);
                }
            }

            let class = classify(&inst);
            // Stores issue on their address operand alone; the data
            // operand is captured when it becomes ready.
            let iq_srcs = if inst.is_store() {
                [src_pregs[0], None]
            } else {
                src_pregs
            };
            let iq_entry = IqHot::new(seq, class, iq_srcs, inst.is_mem(), inst.is_fence());
            let slot = self.iq.allocate(iq_entry).expect("IQ space checked above");
            // Event-driven wakeup: subscribe to each not-yet-ready source
            // so the producing writeback sets this entry's ready bit; an
            // all-ready entry is an issue candidate immediately.
            let mut all_ready = true;
            for p in iq_srcs.iter().flatten() {
                if self.regfile.is_ready(*p) {
                    continue;
                }
                all_ready = false;
                self.regfile.subscribe(*p, slot);
            }
            if all_ready {
                self.iq.set_ops_ready(slot);
            }
            // Snapshot the occupied entries *excluding* the slot we just
            // filled — the same set the pre-allocate snapshot used to
            // carry — and only when the policy actually consumes it.
            if self.policy.wants_dispatch_views() {
                let views = self.iq.views_excluding(slot);
                self.policy
                    .on_dispatch(DispatchInfo { slot, seq, class }, views);
            } else {
                self.policy
                    .on_dispatch(DispatchInfo { slot, seq, class }, &[]);
            }
            // The dispatch hook is where the security dependence matrix
            // records unresolved-branch dependences for this entry.
            if self.trace.is_some() && self.policy.has_pending_dependence(slot) {
                self.trace(TraceEvent::MatrixSet {
                    cycle: self.cycle,
                    seq,
                    slot,
                });
            }

            if inst.is_load() {
                self.lsq
                    .allocate_load(seq, load_size(&inst))
                    .expect("LDQ space checked");
                self.policy.on_lsq_allocate(seq, true);
            } else if inst.is_store() {
                self.lsq
                    .allocate_store(seq, store_size(&inst))
                    .expect("STQ space checked");
                self.policy.on_lsq_allocate(seq, false);
            } else if inst.is_fence() {
                self.fence_seqs.push_back(seq);
            }
            self.trace(TraceEvent::Dispatch {
                cycle: self.cycle,
                seq,
                pc: fetched.pc,
            });
            let (hot, cold) = self.rob.push(seq, fetched.pc, inst, fetched.predicted_next);
            hot.stamp = stamp;
            hot.src_pregs = src_pregs;
            hot.dest = dest;
            hot.iq_slot = Some(slot as u16);
            cold.ras_snapshot = fetched.ras_snapshot;
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    /// Captures the current RAS state into a (recycled) box.
    fn capture_ras_snapshot(&mut self) -> Box<condspec_frontend::ras::RasSnapshot> {
        let mut snap = self.ras_box_pool.pop().unwrap_or_default();
        self.frontend.ras().snapshot_into(&mut snap);
        snap
    }

    fn fetch_stage(&mut self) {
        if self.fetch_wedged || self.cycle < self.fetch_stall_until {
            return;
        }
        if self.program.is_none() {
            return;
        }
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= self.config.fetch_queue {
                break;
            }
            let pc = self.fetch_pc;
            let Some(inst) = self.fetch_inst_at(pc) else {
                // Fetch ran off the code region (wrong path): wedge until
                // a squash redirects us.
                self.fetch_wedged = true;
                break;
            };
            let code_paddr = self.page_table.translate(pc);
            if self.config.icache_filter
                && self.fq_unresolved_branches + self.rob_unresolved_branches > 0
                && !self.hierarchy.probe_l1i(code_paddr)
            {
                // §VII.B ICache-hit filter: the next-PC is unsafe while a
                // branch is unresolved, and it would miss L1I — the fetch
                // is stalled so speculation cannot change I-cache state.
                self.stats.icache_fetch_stalls += 1;
                break;
            }
            let outcome = self.hierarchy.access_inst(code_paddr);
            let icache_miss = !outcome.l1_hit();
            if icache_miss {
                self.fetch_stall_until = self.cycle + outcome.latency;
            }

            let mut ras_snapshot = None;
            let next = match inst {
                Inst::Branch { .. } => {
                    ras_snapshot = Some(self.capture_ras_snapshot());
                    let p = self.frontend.predict_conditional(pc);
                    if p.taken {
                        p.target.unwrap_or(pc + INST_BYTES)
                    } else {
                        pc + INST_BYTES
                    }
                }
                Inst::Jump { target } => target,
                Inst::Call { target, .. } => {
                    ras_snapshot = Some(self.capture_ras_snapshot());
                    self.frontend.on_call(pc + INST_BYTES);
                    target
                }
                Inst::Ret { .. } => {
                    ras_snapshot = Some(self.capture_ras_snapshot());
                    self.frontend.predict_return().unwrap_or(pc + INST_BYTES)
                }
                Inst::JumpIndirect { .. } => {
                    ras_snapshot = Some(self.capture_ras_snapshot());
                    self.frontend
                        .predict_indirect(pc)
                        .unwrap_or(pc + INST_BYTES)
                }
                _ => pc + INST_BYTES,
            };
            if inst.is_branch() {
                self.fq_unresolved_branches += 1;
            }
            self.fetch_queue.push_back(FetchedInst {
                pc,
                inst,
                predicted_next: next,
                ras_snapshot,
                ready_cycle: self.cycle + self.config.decode_latency,
            });
            self.fetch_pc = next;
            if matches!(inst, Inst::Halt) {
                self.fetch_wedged = true;
                break;
            }
            if icache_miss {
                break;
            }
        }
    }

    #[inline]
    fn trace(&mut self, event: TraceEvent) {
        if let Some(buffer) = self.trace.as_mut() {
            buffer.push(event);
        }
    }

    /// Turns on pipeline event tracing with a bounded buffer of
    /// `capacity` events (oldest dropped on overflow). Re-enabling
    /// replaces the buffer.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// Turns tracing off and returns the buffer, if any.
    pub fn disable_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take()
    }

    /// The current trace buffer, if tracing is enabled.
    pub fn trace_buffer(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Turns on windowed time-series sampling: every `window` cycles
    /// the statistics deltas are cut into a [`SampleRow`], up to
    /// `max_rows` rows. Re-enabling replaces the series. While sampling
    /// is on, idle fast-forward jumps are clamped to window boundaries,
    /// so the sampled series is identical to stepping every cycle.
    ///
    /// [`SampleRow`]: crate::sampler::SampleRow
    pub fn enable_sampler(&mut self, window: u64, max_rows: usize) {
        self.sampler = Some(Box::new(TimeSeriesSampler::new(
            window,
            max_rows,
            &self.stats,
        )));
    }

    /// Turns sampling off and returns the series (with a final partial
    /// window flushed), if any.
    pub fn disable_sampler(&mut self) -> Option<TimeSeriesSampler> {
        let mut sampler = self.sampler.take()?;
        sampler.flush(&self.stats);
        Some(*sampler)
    }

    /// The current sampler, if sampling is enabled.
    pub fn sampler(&self) -> Option<&TimeSeriesSampler> {
        self.sampler.as_deref()
    }

    /// Turns on the taint-tracking leak oracle. `config` names the
    /// physical-address byte ranges that hold secrets; from then on the
    /// oracle tracks their flow through registers and memory and records
    /// a leak every time a tainted value reaches microarchitecturally
    /// persistent state (cache fill, LRU update, TLB fill, TPBuf
    /// insertion). Re-enabling replaces the oracle.
    pub fn enable_taint(&mut self, config: TaintConfig) {
        let mut oracle = Box::new(TaintOracle::new(self.config.phys_regs, config));
        oracle.mark_config_ranges();
        self.taint = Some(oracle);
    }

    /// Turns the leak oracle off and returns it (with any still-pending
    /// leak events drained into the trace buffer first), if any.
    pub fn disable_taint(&mut self) -> Option<Box<TaintOracle>> {
        self.drain_leak_events();
        self.taint.take()
    }

    /// The current leak oracle, if taint tracking is enabled.
    pub fn taint_oracle(&self) -> Option<&TaintOracle> {
        self.taint.as_deref()
    }

    /// The leak totals accumulated so far, if taint tracking is enabled.
    pub fn leak_report(&self) -> Option<LeakReport> {
        self.taint.as_deref().map(|oracle| oracle.report())
    }

    // ------------------------------------------------------------------
    // Checkpoint / functional execution
    // ------------------------------------------------------------------

    /// Whether the pipeline holds no in-flight work: empty ROB and fetch
    /// queue, no pending store data and no dispatched fences. At such a
    /// boundary the IQ, LSQ, security dependence matrix and TPBuf are
    /// empty too (each tracks a subset of the in-flight instructions),
    /// so the machine state collapses to a [`CoreSnapshot`].
    pub fn is_quiesced(&self) -> bool {
        self.rob.is_empty()
            && self.fetch_queue.is_empty()
            && self.pending_store_data.is_empty()
            && self.fence_seqs.is_empty()
    }

    /// Drains the pipeline to the nearest architectural instruction
    /// boundary: every uncommitted instruction is squashed and fetch is
    /// redirected to the next architectural PC. The discarded work simply
    /// re-executes when the core resumes, so quiescing never changes
    /// architectural results — only timing (and the squash statistics).
    ///
    /// Afterwards [`Core::is_quiesced`] holds and any pending fetch
    /// stall is cleared, making the state canonical for
    /// [`Core::capture_snapshot`].
    pub fn quiesce(&mut self) {
        // The squash walk expresses "discard everything younger than
        // keep_seq"; discarding the head itself needs keep = head-1,
        // which cannot be expressed when the head is seq 0. Step until
        // the head commits (it is the oldest instruction, so it always
        // makes progress), moving the head seq past 0.
        while matches!(self.rob.head_hot(), Some(h) if h.seq == 0) {
            self.step();
        }
        if let Some(head) = self.rob.head_hot().copied() {
            // The head has not committed: it is the next architectural
            // instruction. Squash it and everything younger.
            self.squash_from(head.seq - 1, head.pc, SquashCause::Quiesce);
        } else if let Some(front_pc) = self.fetch_queue.front().map(|f| f.pc) {
            // Nothing dispatched, but decode holds fetched instructions:
            // rewind fetch to the queue front and restore the RAS to the
            // oldest snapshot (which predates every speculative RAS
            // effect of the queued instructions).
            if let Some(snap) = self
                .fetch_queue
                .iter()
                .find_map(|f| f.ras_snapshot.as_deref())
            {
                self.frontend.restore_ras(snap);
            }
            for fetched in self.fetch_queue.drain(..) {
                if let Some(snap) = fetched.ras_snapshot {
                    self.ras_box_pool.push(snap);
                }
            }
            self.fq_unresolved_branches = 0;
            self.fetch_pc = front_pc;
            self.fetch_wedged = false;
        }
        self.fetch_stall_until = self.cycle;
        debug_assert!(self.is_quiesced(), "quiesce left in-flight state");
    }

    /// Captures the complete state of a quiesced core (see
    /// [`CoreSnapshot`] for the exact inventory). Call [`Core::quiesce`]
    /// first if the pipeline may hold in-flight work.
    ///
    /// # Errors
    ///
    /// Returns an error if the pipeline is not quiesced.
    pub fn capture_snapshot(&self) -> Result<CoreSnapshot, String> {
        if !self.is_quiesced() {
            return Err(format!(
                "cannot checkpoint a busy pipeline ({} ROB entries, {} fetched instructions); \
                 call quiesce() first",
                self.rob.len(),
                self.fetch_queue.len()
            ));
        }
        debug_assert_eq!(self.iq.occupancy(), 0, "IQ entry without a ROB entry");
        let (tlb_entries, tlb_tick) = self.tlb.snapshot_entries();
        Ok(CoreSnapshot {
            cycle: self.cycle,
            fetch_pc: self.fetch_pc,
            next_seq: self.next_seq,
            next_stamp: self.next_stamp,
            halted: self.halted,
            arch_regs: self.regfile.arch_values(),
            memory_pages: self
                .memory
                .snapshot_pages()
                .into_iter()
                .map(|(pn, bytes)| (pn, bytes.to_vec()))
                .collect(),
            page_table: self.page_table.snapshot_mappings(),
            tlb_entries,
            tlb_tick,
            hierarchy: self.hierarchy.snapshot(),
            frontend: self.frontend.snapshot(),
        })
    }

    /// Restores a captured snapshot into this core, which must have the
    /// same configuration as the capturing one. The caller supplies the
    /// program (snapshots store state, not code) and a freshly built
    /// security policy, exactly as [`Core::reset_cold`] does.
    ///
    /// The program's data segments are *not* re-copied into memory —
    /// the snapshot's pages already hold their current contents — which
    /// is why this must not go through [`Core::load_program`]. Shared
    /// code mappings are not part of a snapshot; map them again
    /// afterwards if the continuation needs them.
    ///
    /// After this call the core is observationally identical to the
    /// capturing core at the capture point: continuing either one in
    /// detailed mode produces identical statistics and state.
    pub fn restore_snapshot(
        &mut self,
        snap: &CoreSnapshot,
        program: Arc<Program>,
        policy: Box<dyn SecurityPolicy>,
    ) {
        self.reset_cold(policy);
        for (pn, bytes) in &snap.memory_pages {
            self.memory.restore_page(*pn, bytes);
        }
        for &(vpn, ppn) in &snap.page_table {
            self.page_table.map(vpn, ppn);
        }
        self.tlb.restore_entries(&snap.tlb_entries, snap.tlb_tick);
        self.hierarchy.restore(&snap.hierarchy);
        self.frontend.restore(&snap.frontend);
        for (i, &v) in snap.arch_regs.iter().enumerate().skip(1) {
            self.regfile
                .write_arch(Reg::from_index(i).expect("i < 32"), v);
        }
        self.cycle = snap.cycle;
        self.fetch_pc = snap.fetch_pc;
        self.next_seq = snap.next_seq;
        self.next_stamp = snap.next_stamp;
        self.halted = snap.halted;
        self.fetch_wedged = false;
        self.fetch_stall_until = snap.cycle;
        self.last_commit_cycle = snap.cycle;
        self.program = Some(program);
    }

    /// Runs until halt, the cycle budget, the watchdog, **or** until
    /// `target` more instructions have committed — the detailed-window
    /// primitive of sampled simulation. Identical to [`Core::run`]
    /// except for the extra exit condition; the commit count may
    /// overshoot the target by up to `commit_width - 1` (the check sits
    /// between full cycles), which the caller reads back from
    /// [`RunResult::committed`].
    pub fn run_until_committed(&mut self, target: u64, max_cycles: u64) -> RunResult {
        let start_cycle = self.cycle;
        let start_committed = self.stats.committed;
        let goal = start_committed.saturating_add(target);
        let limit = start_cycle.saturating_add(max_cycles);
        let mut exit = ExitReason::CycleLimit;
        let mut before = self.activity_signature();
        while self.cycle < limit {
            if self.halted {
                exit = ExitReason::Halted;
                break;
            }
            if self.stats.committed >= goal {
                exit = ExitReason::CommitLimit;
                break;
            }
            if self.cycle - self.last_commit_cycle > STUCK_THRESHOLD {
                exit = ExitReason::Stuck;
                break;
            }
            self.step();
            let after = self.activity_signature();
            if after == before {
                self.fast_forward_idle(limit);
            } else {
                before = after;
            }
        }
        if self.halted {
            exit = ExitReason::Halted;
        } else if exit == ExitReason::CycleLimit && self.stats.committed >= goal {
            exit = ExitReason::CommitLimit;
        }
        RunResult {
            exit,
            cycles: self.cycle - start_cycle,
            committed: self.stats.committed - start_committed,
        }
    }

    /// Retires up to `max_insts` instructions *functionally*: pure
    /// architectural interpretation with no pipeline, cache, TLB,
    /// predictor or statistics modelling — the fast-forward engine of
    /// sampled simulation (tens of Minst/s against the detailed model's
    /// hundreds of Kinst/s).
    ///
    /// Functional stepping touches exactly four pieces of state: the
    /// architectural registers, memory (stores apply immediately —
    /// retirement is in-order), the fetch PC and the halted flag.
    /// Everything else — the cycle clock, all statistics, caches, TLB
    /// and predictors — is left untouched, so a checkpoint captured
    /// after a functional fast-forward carries cold (or pre-existing)
    /// microarchitectural state by construction.
    ///
    /// `Flush` retires as a no-op (there is no cache model to flush);
    /// `Fence` and `Nop` likewise. Loads and stores translate through
    /// the page table directly (no TLB).
    ///
    /// # Errors
    ///
    /// Returns an error if the pipeline is not quiesced (functional and
    /// detailed execution cannot interleave mid-flight) or no program is
    /// loaded.
    pub fn run_functional(&mut self, max_insts: u64) -> Result<FunctionalResult, String> {
        self.functional_loop(max_insts, |_, _| {})
    }

    /// [`Core::run_functional`] with a per-retirement hook `(pc, inst)`,
    /// for differential testing against the detailed pipeline's commit
    /// stream. The hook makes this the *reference* architectural trace:
    /// functional execution has no wrong path.
    pub fn run_functional_traced(
        &mut self,
        max_insts: u64,
        on_retire: impl FnMut(u64, &Inst),
    ) -> Result<FunctionalResult, String> {
        self.functional_loop(max_insts, on_retire)
    }

    fn functional_loop(
        &mut self,
        max_insts: u64,
        mut on_retire: impl FnMut(u64, &Inst),
    ) -> Result<FunctionalResult, String> {
        if !self.is_quiesced() {
            return Err("cannot run functionally with in-flight detailed state; \
                 call quiesce() first"
                .to_string());
        }
        let Some(program) = self.program.clone() else {
            return Err("no program loaded".to_string());
        };
        if self.halted {
            return Ok(FunctionalResult {
                exit: FunctionalExit::Halted,
                retired: 0,
            });
        }
        // Interpret against a local register array; the rename fabric is
        // synced once at exit. Index 0 is never written (r0).
        let mut regs = self.regfile.arch_values();
        let mut pc = self.fetch_pc;
        let mut retired = 0u64;
        let mut exit = FunctionalExit::InstLimit;
        while retired < max_insts {
            let inst = match program.fetch(pc) {
                Some(inst) => inst,
                None => match self.shared_code.iter().find_map(|p| p.fetch(pc)) {
                    Some(inst) => inst,
                    None => {
                        exit = FunctionalExit::FetchFault;
                        break;
                    }
                },
            };
            let mut next = pc + INST_BYTES;
            match inst {
                Inst::Alu { op, rd, rs1, rs2 } => {
                    let v = op.eval(regs[rs1.index()], regs[rs2.index()]);
                    if !rd.is_zero() {
                        regs[rd.index()] = v;
                    }
                }
                Inst::AluImm { op, rd, rs1, imm } => {
                    let v = op.eval(regs[rs1.index()], imm as u64);
                    if !rd.is_zero() {
                        regs[rd.index()] = v;
                    }
                }
                Inst::LoadImm { rd, imm } => {
                    if !rd.is_zero() {
                        regs[rd.index()] = imm;
                    }
                }
                Inst::Load {
                    rd,
                    base,
                    offset,
                    size,
                } => {
                    let vaddr = regs[base.index()].wrapping_add(offset as u64);
                    let paddr = self.page_table.translate(vaddr);
                    let v = self.memory.read(paddr, size.bytes());
                    if !rd.is_zero() {
                        regs[rd.index()] = v;
                    }
                }
                Inst::Store {
                    src,
                    base,
                    offset,
                    size,
                } => {
                    let vaddr = regs[base.index()].wrapping_add(offset as u64);
                    let paddr = self.page_table.translate(vaddr);
                    self.memory.write(paddr, regs[src.index()], size.bytes());
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    if cond.eval(regs[rs1.index()], regs[rs2.index()]) {
                        next = target;
                    }
                }
                Inst::Jump { target } => {
                    next = target;
                }
                Inst::Call { target, link } => {
                    if !link.is_zero() {
                        regs[link.index()] = pc + INST_BYTES;
                    }
                    next = target;
                }
                Inst::Ret { link } => {
                    next = regs[link.index()];
                }
                Inst::JumpIndirect { base, offset } => {
                    next = regs[base.index()].wrapping_add(offset as u64);
                }
                Inst::Flush { .. } | Inst::Fence | Inst::Nop => {}
                Inst::Halt => {
                    retired += 1;
                    on_retire(pc, &inst);
                    self.halted = true;
                    exit = FunctionalExit::Halted;
                    break;
                }
            }
            retired += 1;
            on_retire(pc, &inst);
            pc = next;
        }
        for (i, &v) in regs.iter().enumerate().skip(1) {
            self.regfile
                .write_arch(Reg::from_index(i).expect("i < 32"), v);
        }
        self.fetch_pc = pc;
        Ok(FunctionalResult { exit, retired })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Current cycle count (monotonic across program loads).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether a halt instruction has committed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Pipeline statistics.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Resets pipeline, hierarchy, TLB, predictor and policy statistics
    /// (after warm-up). Does not touch microarchitectural state. An
    /// active time-series sampler restarts at window zero.
    pub fn reset_stats(&mut self) {
        self.stats = PipelineStats::default();
        self.hierarchy.reset_stats();
        self.tlb.reset_stats();
        self.frontend.reset_stats();
        self.policy.reset_stats();
        if let Some(sampler) = self.sampler.as_deref_mut() {
            sampler.restart(&self.stats);
        }
    }

    /// Fills `registry` with the core's named metrics: every
    /// [`PipelineStats`] counter under `core.*`, derived gauges (IPC,
    /// blocked rate, mean occupancies), the installed policy's counters
    /// under `policy.*`, and — when sampling is enabled — a per-window
    /// IPC histogram. Existing entries with other names are preserved.
    pub fn fill_metrics(&self, registry: &mut MetricsRegistry) {
        let s = &self.stats;
        registry.set_counter("core.cycles", s.cycles);
        registry.set_counter("core.committed", s.committed);
        registry.set_counter("core.committed_loads", s.committed_loads);
        registry.set_counter("core.committed_stores", s.committed_stores);
        registry.set_counter("core.committed_branches", s.committed_branches);
        registry.set_counter("core.blocked_committed_loads", s.blocked_committed_loads);
        registry.set_counter("core.block_events", s.block_events);
        registry.set_counter("core.issued", s.issued);
        registry.set_counter("core.load_accesses", s.load_accesses);
        registry.set_counter("core.mispredict_squashes", s.mispredict_squashes);
        registry.set_counter("core.violation_squashes", s.violation_squashes);
        registry.set_counter("core.squashed_insts", s.squashed_insts);
        registry.set_counter("core.icache_fetch_stalls", s.icache_fetch_stalls);
        registry.set_counter("core.suspect_l1_hits", s.suspect_l1.hits());
        registry.set_counter("core.suspect_l1_accesses", s.suspect_l1.total());
        registry.set_gauge("core.ipc", s.ipc());
        registry.set_gauge("core.blocked_rate", s.blocked_rate());
        registry.set_gauge("core.suspect_l1_hit_rate", s.suspect_l1.rate());
        registry.set_gauge("core.avg_rob_occupancy", s.avg_rob_occupancy());
        registry.set_gauge("core.avg_iq_occupancy", s.avg_iq_occupancy());
        let p = self.policy.stats();
        registry.set_counter("policy.suspect_flags", p.suspect_flags);
        registry.set_counter("policy.blocks", p.blocks);
        registry.set_counter("policy.tpbuf_queries", p.tpbuf_queries);
        registry.set_counter("policy.tpbuf_mismatches", p.tpbuf_mismatches);
        registry.set_gauge(
            "policy.s_pattern_mismatch_rate",
            p.s_pattern_mismatch_rate(),
        );
        if let Some(sampler) = self.sampler.as_deref() {
            registry.set_histogram("core.window_ipc_x100", sampler.ipc_histogram());
        }
        if let Some(oracle) = self.taint.as_deref() {
            let l = oracle.report();
            registry.set_counter("leak.cache_fills", l.cache_fills);
            registry.set_counter("leak.cache_fills_survived", l.cache_fills_survived);
            registry.set_counter("leak.cache_lru", l.cache_lru);
            registry.set_counter("leak.cache_lru_survived", l.cache_lru_survived);
            registry.set_counter("leak.tlb_fills", l.tlb_fills);
            registry.set_counter("leak.tlb_fills_survived", l.tlb_fills_survived);
            registry.set_counter("leak.tpbuf_inserts", l.tpbuf_inserts);
            registry.set_counter("leak.tpbuf_inserts_survived", l.tpbuf_inserts_survived);
            let mut by_channel = Histogram::new(1, LeakChannel::ALL.len());
            for (index, channel) in LeakChannel::ALL.iter().copied().enumerate() {
                let (_, survived) = l.channel(channel);
                for _ in 0..survived {
                    by_channel.record(index as u64);
                }
            }
            registry.set_histogram("leak.survived_by_channel", by_channel);
        }
    }

    /// The architectural value of `reg` (through the current rename map —
    /// call after [`run`](Core::run) returns `Halted` for committed
    /// state).
    pub fn read_arch_reg(&self, reg: Reg) -> u64 {
        self.regfile.read_arch(reg)
    }

    /// Reads simulated memory at a *virtual* address.
    pub fn read_memory(&self, vaddr: u64, size: u64) -> u64 {
        self.memory.read(self.page_table.translate(vaddr), size)
    }

    /// Writes simulated memory at a *virtual* address. An external write
    /// carries attacker-known data, so it scrubs the bytes' taint.
    pub fn write_memory(&mut self, vaddr: u64, value: u64, size: u64) {
        let paddr = self.page_table.translate(vaddr);
        self.memory.write(paddr, value, size);
        if let Some(oracle) = self.taint.as_deref_mut() {
            oracle.clear_bytes(paddr, size);
        }
    }

    /// The cache hierarchy (attack orchestration: flush/prime/probe).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Mutable cache hierarchy access.
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hierarchy
    }

    /// The page table (set up shared mappings before loading programs).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable page-table access.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// The front end (predictor training / poisoning).
    pub fn frontend(&self) -> &FrontEnd {
        &self.frontend
    }

    /// Mutable front-end access.
    pub fn frontend_mut(&mut self) -> &mut FrontEnd {
        &mut self.frontend
    }

    /// The security policy driving this core.
    pub fn policy(&self) -> &dyn SecurityPolicy {
        self.policy.as_ref()
    }

    /// Mutable policy access.
    pub fn policy_mut(&mut self) -> &mut dyn SecurityPolicy {
        self.policy.as_mut()
    }

    /// Cross-structure consistency check, for tests and debugging. Holds
    /// between any two [`Core::step`] calls; squash recovery in
    /// particular must leave no residue for the squashed instructions.
    ///
    /// Verified invariants:
    ///
    /// * a free IQ slot has no block reason and no outstanding security
    ///   dependence (its matrix row was cleared);
    /// * an occupied IQ slot is owned by exactly the in-flight ROB entry
    ///   that records it, and that entry is not yet completed;
    /// * every stamp-matching completion event targets an instruction
    ///   still waiting for it (stale events awaiting lazy invalidation
    ///   are permitted), and every store-data capture refers to an
    ///   instruction still in the ROB;
    /// * the event-driven scheduler structures agree with the scan-based
    ///   reference model ([`Core::check_scheduler_coherence`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        for slot in 0..self.iq.capacity() {
            match self.iq.get(slot) {
                None => {
                    if self.block_reasons[slot].is_some() {
                        return Err(format!("free IQ slot {slot} has a stale block reason"));
                    }
                    if self.policy.has_pending_dependence(slot) {
                        return Err(format!(
                            "free IQ slot {slot} still has a security dependence row"
                        ));
                    }
                }
                Some(entry) => {
                    let Some(rob_entry) = self.rob.hot(entry.seq) else {
                        return Err(format!(
                            "IQ slot {slot} holds seq {} which is not in the ROB",
                            entry.seq
                        ));
                    };
                    if rob_entry.iq_slot != Some(slot as u16) {
                        return Err(format!(
                            "IQ slot {slot} / ROB seq {} disagree on ownership ({:?})",
                            entry.seq, rob_entry.iq_slot
                        ));
                    }
                    if rob_entry.state() == RobState::Completed {
                        return Err(format!(
                            "completed seq {} still occupies IQ slot {slot}",
                            entry.seq
                        ));
                    }
                }
            }
        }
        // Re-derive the LSQ's per-state bitmap words from its records
        // (the IQ's are re-derived by the scheduler coherence check).
        self.lsq.check_bitmaps()?;
        for event in self.events.iter() {
            // Events are lazily invalidated: one whose stamp no longer
            // matches the resident entry (or whose seq left the ROB)
            // belongs to a squashed instruction or a previous program and
            // will be dropped at delivery. A stamp-matching event must
            // target an instruction still waiting for it.
            if let Some(entry) = self.rob.hot(event.seq) {
                if entry.stamp == event.stamp && entry.state() != RobState::Issued {
                    return Err(format!(
                        "pending completion event for seq {} in state {:?}",
                        event.seq,
                        entry.state()
                    ));
                }
            }
        }
        for (seq, _) in &self.pending_store_data {
            if !self.rob.contains(*seq) {
                return Err(format!(
                    "pending store-data capture for seq {seq} which is not in flight"
                ));
            }
        }
        // SoA coherence: the per-state bitmap words must agree with every
        // resident entry's state, and no stale bit may survive on a free
        // slot.
        self.rob.check_bitmaps()?;
        // Stamps are assigned from a monotone dispatch counter in seq
        // order, so among resident entries they must strictly increase
        // with seq (a squash + redispatch reuses seqs but never stamps).
        let mut prev: Option<(u64, u64)> = None;
        for hot in self.rob.iter_hot() {
            if let Some((pseq, pstamp)) = prev {
                if hot.seq != pseq + 1 {
                    return Err(format!("ROB seqs not contiguous: {pseq} then {}", hot.seq));
                }
                if hot.stamp <= pstamp {
                    return Err(format!(
                        "ROB stamps not monotone: seq {pseq} stamp {pstamp}, seq {} stamp {}",
                        hot.seq, hot.stamp
                    ));
                }
            }
            prev = Some((hot.seq, hot.stamp));
        }
        self.check_scheduler_coherence()
    }

    /// Differential check of the event-driven scheduler against the naive
    /// scan-based model it replaced. Holds between any two
    /// [`Core::step`] calls:
    ///
    /// * the scoreboard candidate set (`unissued & ops_ready`) equals a
    ///   full-queue scan testing every entry's operands in the register
    ///   file — i.e. no wakeup was missed and none fired early;
    /// * the cached fence barrier (front of the fence deque) equals the
    ///   oldest-incomplete-fence ROB scan;
    /// * the incrementally maintained dispatch views equal a fresh
    ///   full-capacity snapshot (as a set — the dense list is
    ///   insertion-ordered).
    ///
    /// Diagnostic (allocates); used by the scheduler property tests, not
    /// by the simulation loop.
    pub fn check_scheduler_coherence(&self) -> Result<(), String> {
        self.iq.check_bitmaps()?;
        // Candidate set: scoreboard vs operand scan.
        let mut fast = Vec::new();
        self.iq.collect_ready(&mut fast);
        fast.sort_unstable();
        let mut reference: Vec<(u64, usize)> = self
            .iq
            .iter()
            .filter(|(_, e)| {
                !e.issued() && e.srcs.iter().flatten().all(|p| self.regfile.is_ready(*p))
            })
            .map(|(slot, e)| (e.seq, slot))
            .collect();
        reference.sort_unstable();
        if fast != reference {
            return Err(format!(
                "scoreboard candidates {fast:?} != scanned candidates {reference:?}"
            ));
        }
        // Fence barrier: deque front vs ROB scan.
        let cached = self.fence_seqs.front().copied();
        let scanned = self
            .rob
            .iter_hot()
            .find(|e| e.is_fence() && e.state() != RobState::Completed)
            .map(|e| e.seq);
        if cached != scanned {
            return Err(format!(
                "cached fence barrier {cached:?} != scanned barrier {scanned:?}"
            ));
        }
        // Dispatch views: dense incremental list vs fresh slot scan.
        let mut dense: Vec<crate::policy::IqEntryView> = self.iq.views().to_vec();
        dense.sort_by_key(|v| v.slot);
        let scan: Vec<crate::policy::IqEntryView> = self
            .iq
            .iter()
            .map(|(slot, e)| crate::policy::IqEntryView {
                slot,
                seq: e.seq,
                class: e.class,
                issued: e.issued(),
            })
            .collect();
        if dense != scan {
            return Err("incremental dispatch views diverged from a fresh scan".to_string());
        }
        Ok(())
    }
}

fn load_size(inst: &Inst) -> u64 {
    match inst {
        Inst::Load { size, .. } => size.bytes(),
        _ => unreachable!("load_size on non-load"),
    }
}

fn store_size(inst: &Inst) -> u64 {
    match inst {
        Inst::Store { size, .. } => size.bytes(),
        _ => unreachable!("store_size on non-store"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condspec_isa::{AluOp, BranchCond, ProgramBuilder};

    fn run_program(build: impl FnOnce(&mut ProgramBuilder)) -> Core {
        let mut core = Core::with_defaults();
        let mut b = ProgramBuilder::new(0x1000);
        build(&mut b);
        let program = b.build().expect("valid test program");
        core.load_program(Arc::new(program));
        let result = core.run(1_000_000);
        assert_eq!(result.exit, ExitReason::Halted, "program must halt");
        core
    }

    #[test]
    fn arithmetic_and_immediates() {
        let core = run_program(|b| {
            b.li(Reg::R1, 10);
            b.li(Reg::R2, 32);
            b.alu(AluOp::Add, Reg::R3, Reg::R1, Reg::R2);
            b.alu_imm(AluOp::Mul, Reg::R4, Reg::R3, 3);
            b.halt();
        });
        assert_eq!(core.read_arch_reg(Reg::R3), 42);
        assert_eq!(core.read_arch_reg(Reg::R4), 126);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let core = run_program(|b| {
            b.li(Reg::R1, 0x20000);
            b.li(Reg::R2, 0xdead);
            b.store(Reg::R2, Reg::R1, 0);
            b.load(Reg::R3, Reg::R1, 0);
            b.halt();
            b.reserve(0x20000, 64);
        });
        assert_eq!(
            core.read_arch_reg(Reg::R3),
            0xdead,
            "store-to-load forwarding"
        );
        assert_eq!(core.read_memory(0x20000, 8), 0xdead, "committed to memory");
    }

    #[test]
    fn initialized_data_segment_is_loaded() {
        let core = run_program(|b| {
            b.li(Reg::R1, 0x30000);
            b.load(Reg::R2, Reg::R1, 8);
            b.halt();
            b.data_u64s(0x30000, &[111, 222]);
        });
        assert_eq!(core.read_arch_reg(Reg::R2), 222);
    }

    #[test]
    fn taken_loop_executes_correct_count() {
        let core = run_program(|b| {
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 10);
            b.label("loop").unwrap();
            b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
            b.branch_to(BranchCond::LtU, Reg::R1, Reg::R2, "loop");
            b.halt();
        });
        assert_eq!(core.read_arch_reg(Reg::R1), 10);
        assert!(
            core.stats().committed >= 22,
            "2 + 2*10 committed instructions"
        );
    }

    #[test]
    fn wrong_path_loads_fill_cache_on_origin() {
        // A branch that is architecturally not-taken but (after training
        // via loop iterations) predicted taken would be complex to set up;
        // instead exploit the cold not-taken prediction: branch IS taken,
        // mispredicted as not-taken, so the fall-through (wrong path)
        // executes speculatively and loads a line.
        let core = run_program(|b| {
            b.li(Reg::R1, 1);
            b.li(Reg::R9, 0x40000);
            // r2 = slow-to-resolve operand via a chain of multiplies.
            b.li(Reg::R2, 1);
            for _ in 0..8 {
                b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R1);
            }
            b.branch_to(BranchCond::Eq, Reg::R2, Reg::R1, "skip"); // taken; predicted NT when cold
                                                                   // Wrong path: load 0x40000.
            b.load(Reg::R3, Reg::R9, 0);
            b.nop();
            b.label("skip").unwrap();
            b.halt();
            b.reserve(0x40000, 64);
        });
        // The wrong-path load left its line in the cache (tag check via
        // peek latency = L1 hit latency).
        let lat = core.hierarchy().peek_latency(0x40000);
        assert_eq!(lat, 2, "wrong-path fill persisted after squash");
        assert_eq!(
            core.read_arch_reg(Reg::R3),
            0,
            "architecturally never loaded"
        );
        assert!(core.stats().mispredict_squashes >= 1);
    }

    #[test]
    fn store_bypass_violation_replays() {
        // Store to X with a slow address; younger load from X issues
        // first (speculative store bypass), reads stale 0, then replays
        // after the violation and sees 77.
        let core = run_program(|b| {
            b.li(Reg::R1, 0x50000);
            b.li(Reg::R2, 77);
            // Slow down the store's address with a multiply chain.
            b.li(Reg::R3, 1);
            for _ in 0..6 {
                b.alu(AluOp::Mul, Reg::R3, Reg::R3, Reg::R3);
            }
            b.alu(AluOp::Mul, Reg::R4, Reg::R1, Reg::R3); // r4 = 0x50000 * 1
            b.store(Reg::R2, Reg::R4, 0);
            b.load(Reg::R5, Reg::R1, 0);
            b.halt();
            b.reserve(0x50000, 64);
        });
        assert_eq!(
            core.read_arch_reg(Reg::R5),
            77,
            "violation replay fixed the value"
        );
        assert!(
            core.stats().violation_squashes >= 1,
            "the bypass was detected"
        );
    }

    #[test]
    fn fence_serializes_but_preserves_results() {
        let core = run_program(|b| {
            b.li(Reg::R1, 5);
            b.fence();
            b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, 1);
            b.fence();
            b.halt();
        });
        assert_eq!(core.read_arch_reg(Reg::R2), 6);
    }

    #[test]
    fn call_and_ret() {
        let core = run_program(|b| {
            b.li(Reg::R1, 1);
            b.call_to("f", Reg::R31);
            b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 100);
            b.halt();
            b.label("f").unwrap();
            b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 10);
            b.ret(Reg::R31);
        });
        assert_eq!(core.read_arch_reg(Reg::R1), 111);
    }

    #[test]
    fn indirect_jump() {
        let core = run_program(|b| {
            b.li(Reg::R1, 0x1000 + 5 * 4); // address of the halt below
            b.jump_indirect(Reg::R1, 0);
            b.li(Reg::R2, 0xbad);
            b.li(Reg::R2, 0xbad);
            b.li(Reg::R2, 0xbad);
            b.halt();
        });
        assert_eq!(core.read_arch_reg(Reg::R2), 0);
    }

    #[test]
    fn flush_instruction_evicts_line() {
        let core = run_program(|b| {
            b.li(Reg::R1, 0x60000);
            b.load(Reg::R2, Reg::R1, 0); // bring the line in
            b.fence();
            b.flush(Reg::R1, 0);
            b.fence();
            b.halt();
            b.reserve(0x60000, 64);
        });
        assert!(core.hierarchy().peek_latency(0x60000) > 2, "line flushed");
    }

    #[test]
    fn stuck_program_detected() {
        let mut core = Core::with_defaults();
        let mut b = ProgramBuilder::new(0x1000);
        b.label("spin").unwrap();
        b.jump_to("spin"); // commits forever... actually commits jumps; use wedge instead
        let program = b.build().unwrap();
        core.load_program(Arc::new(program));
        // An infinite loop commits instructions forever — CycleLimit.
        let result = core.run(50_000);
        assert_eq!(result.exit, ExitReason::CycleLimit);

        // A program with no instructions at the entry wedges fetch: Stuck.
        let mut core = Core::with_defaults();
        let empty = ProgramBuilder::new(0x1000).build().unwrap();
        core.load_program(Arc::new(empty));
        let result = core.run(400_000);
        assert_eq!(result.exit, ExitReason::Stuck);
    }

    #[test]
    fn ipc_is_positive_and_bounded() {
        let core = run_program(|b| {
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 200);
            b.label("loop").unwrap();
            b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
            b.alu_imm(AluOp::Add, Reg::R3, Reg::R1, 7);
            b.alu(AluOp::Xor, Reg::R4, Reg::R3, Reg::R1);
            b.branch_to(BranchCond::LtU, Reg::R1, Reg::R2, "loop");
            b.halt();
        });
        let ipc = core.stats().ipc();
        assert!(
            ipc > 0.5,
            "simple loop should sustain decent IPC, got {ipc}"
        );
        assert!(ipc <= 4.0, "cannot exceed machine width");
    }

    #[test]
    fn functional_matches_detailed_architectural_state() {
        let build = |b: &mut ProgramBuilder| {
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 50);
            b.li(Reg::R9, 0x20000);
            b.label("loop").unwrap();
            b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
            b.alu(AluOp::Xor, Reg::R3, Reg::R1, Reg::R2);
            b.store(Reg::R3, Reg::R9, 0);
            b.load(Reg::R4, Reg::R9, 0);
            b.branch_to(BranchCond::LtU, Reg::R1, Reg::R2, "loop");
            b.halt();
            b.reserve(0x20000, 64);
        };
        let mut detailed = Core::with_defaults();
        let mut b = ProgramBuilder::new(0x1000);
        build(&mut b);
        let program = Arc::new(b.build().unwrap());
        detailed.load_program(Arc::clone(&program));
        let r = detailed.run(1_000_000);
        assert_eq!(r.exit, ExitReason::Halted);

        let mut functional = Core::with_defaults();
        functional.load_program(program);
        let f = functional.run_functional(1_000_000).unwrap();
        assert_eq!(f.exit, FunctionalExit::Halted);
        assert_eq!(f.retired, detailed.stats().committed);
        for reg in Reg::ALL {
            assert_eq!(
                functional.read_arch_reg(reg),
                detailed.read_arch_reg(reg),
                "{reg} diverged"
            );
        }
        assert_eq!(
            functional.read_memory(0x20000, 8),
            detailed.read_memory(0x20000, 8)
        );
    }

    #[test]
    fn quiesce_capture_restore_continues_identically() {
        let build = |b: &mut ProgramBuilder| {
            b.li(Reg::R1, 0);
            b.li(Reg::R2, 400);
            b.li(Reg::R9, 0x20000);
            b.label("loop").unwrap();
            b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
            b.store(Reg::R1, Reg::R9, 0);
            b.load(Reg::R4, Reg::R9, 0);
            b.branch_to(BranchCond::LtU, Reg::R1, Reg::R2, "loop");
            b.halt();
            b.reserve(0x20000, 64);
        };
        let mut b = ProgramBuilder::new(0x1000);
        build(&mut b);
        let program = Arc::new(b.build().unwrap());

        // Run mid-loop, quiesce at an arbitrary point, capture.
        let mut original = Core::with_defaults();
        original.load_program(Arc::clone(&program));
        original.run(700);
        assert!(!original.is_halted(), "must stop mid-program");
        original.quiesce();
        let snap = original.capture_snapshot().expect("quiesced");

        // Restore into a fresh core and continue both to halt.
        let mut restored = Core::with_defaults();
        restored.restore_snapshot(&snap, Arc::clone(&program), Box::new(NullPolicy));
        assert_eq!(restored.capture_snapshot().expect("clean"), snap);
        original.reset_stats();
        restored.reset_stats();
        let ro = original.run(1_000_000);
        let rr = restored.run(1_000_000);
        assert_eq!(ro.exit, ExitReason::Halted);
        assert_eq!(rr.exit, ExitReason::Halted);
        assert_eq!(ro.cycles, rr.cycles, "identical window timing");
        assert_eq!(ro.committed, rr.committed);
        assert_eq!(original.cycle(), restored.cycle());
        for reg in Reg::ALL {
            assert_eq!(original.read_arch_reg(reg), restored.read_arch_reg(reg));
        }
    }

    #[test]
    fn run_until_committed_stops_at_target() {
        let mut core = Core::with_defaults();
        let mut b = ProgramBuilder::new(0x1000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 10_000);
        b.label("loop").unwrap();
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_to(BranchCond::LtU, Reg::R1, Reg::R2, "loop");
        b.halt();
        core.load_program(Arc::new(b.build().unwrap()));
        let r = core.run_until_committed(500, 1_000_000);
        assert_eq!(r.exit, ExitReason::CommitLimit);
        assert!(r.committed >= 500);
        assert!(
            r.committed < 500 + core.config().commit_width as u64,
            "overshoot bounded by commit width"
        );
    }

    #[test]
    fn functional_rejects_busy_pipeline() {
        let mut core = run_program(|b| {
            b.li(Reg::R1, 7);
            b.halt();
        });
        assert!(core.run_functional(10).is_ok(), "halted core is quiesced");
        let mut busy = Core::with_defaults();
        let mut b = ProgramBuilder::new(0x1000);
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 1000);
        b.label("loop").unwrap();
        b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.branch_to(BranchCond::LtU, Reg::R1, Reg::R2, "loop");
        b.halt();
        busy.load_program(Arc::new(b.build().unwrap()));
        while busy.is_quiesced() {
            busy.step();
        }
        assert!(busy.run_functional(10).is_err());
        assert!(busy.capture_snapshot().is_err());
        busy.quiesce();
        assert!(busy.run_functional(10).is_ok());
    }

    #[test]
    fn architectural_state_identical_under_store_bypass_toggle() {
        let build = |b: &mut ProgramBuilder| {
            b.li(Reg::R1, 0x70000);
            b.li(Reg::R2, 3);
            b.li(Reg::R3, 1);
            for _ in 0..4 {
                b.alu(AluOp::Mul, Reg::R3, Reg::R3, Reg::R3);
            }
            b.alu(AluOp::Mul, Reg::R4, Reg::R1, Reg::R3);
            b.store(Reg::R2, Reg::R4, 8);
            b.load(Reg::R5, Reg::R1, 8);
            b.alu(AluOp::Add, Reg::R6, Reg::R5, Reg::R2);
            b.halt();
            b.reserve(0x70000, 64);
        };
        let mut with_bypass = Core::with_defaults();
        let mut config = CoreConfig::paper_default();
        config.spec_store_bypass = false;
        let mut without_bypass = Core::new(
            config,
            FrontEnd::new(condspec_frontend::PredictorConfig::paper_default()),
            CacheHierarchy::new(condspec_mem::HierarchyConfig::paper_default()),
            Tlb::new(condspec_mem::TlbConfig::paper_default()),
            PageTable::new(),
            Box::new(NullPolicy),
        );
        for core in [&mut with_bypass, &mut without_bypass] {
            let mut b = ProgramBuilder::new(0x1000);
            build(&mut b);
            core.load_program(Arc::new(b.build().unwrap()));
            assert_eq!(core.run(1_000_000).exit, ExitReason::Halted);
        }
        for r in [Reg::R5, Reg::R6] {
            assert_eq!(
                with_bypass.read_arch_reg(r),
                without_bypass.read_arch_reg(r),
                "bypass changes timing, never architecture"
            );
        }
        assert_eq!(with_bypass.read_arch_reg(Reg::R5), 3);
    }
}

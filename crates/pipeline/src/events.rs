//! Calendar (bucket) queue for timed completion events.
//!
//! The core used to keep in-flight completions in a flat `Vec` and
//! `retain`-sweep the whole list every cycle. This module replaces that
//! with a classic calendar queue: a power-of-two ring of buckets indexed
//! by `due_cycle & (WHEEL_BUCKETS - 1)`. Scheduling is a push into the
//! target bucket; the per-cycle drain touches exactly one bucket, which
//! holds only events due now (all modelled latencies are far below the
//! wheel span — events further out land in a rarely-used overflow list).
//!
//! Squash does not search the wheel. Sequence numbers are recycled after
//! a squash, so events carry the monotone dispatch [`Completion::stamp`]
//! of the instruction that scheduled them; delivery drops any event whose
//! stamp no longer matches the ROB entry (lazy invalidation).

/// Number of buckets in the wheel (one simulated cycle per bucket). Must
/// be a power of two and larger than the longest completion latency, so
/// a bucket never mixes the current lap with the next.
pub const WHEEL_BUCKETS: usize = 1024;

const WHEEL_MASK: u64 = (WHEEL_BUCKETS as u64) - 1;

/// A timed execution result: `seq` completes with `value` at cycle `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Cycle at which the result becomes visible.
    pub at: u64,
    /// Sequence number of the completing instruction.
    pub seq: u64,
    /// Dispatch stamp of the completing instruction. Sequence numbers are
    /// recycled after a squash; the stamp is not, so delivery can tell
    /// the original instruction from a reincarnation of its `seq` and
    /// lazily drop events for squashed instructions.
    pub stamp: u64,
    /// The produced value (written to the destination register, if any).
    pub value: u64,
    /// Whether the completion is a load writeback (drives TPBuf hooks).
    pub is_load: bool,
}

/// A calendar queue of [`Completion`]s keyed by due cycle.
///
/// Events for the same cycle are delivered in scheduling order, matching
/// the insertion order of the flat list this structure replaces.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::events::{Completion, EventWheel};
///
/// let mut wheel = EventWheel::new();
/// let event = Completion { at: 5, seq: 0, stamp: 0, value: 42, is_load: false };
/// wheel.schedule(3, event);
/// let mut due = Vec::new();
/// wheel.drain_due(4, &mut due);
/// assert!(due.is_empty());
/// wheel.drain_due(5, &mut due);
/// assert_eq!(due, vec![event]);
/// assert!(wheel.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventWheel {
    buckets: Vec<Vec<Completion>>,
    /// One bit per bucket, set exactly when the bucket is non-empty, so
    /// the idle fast-forward's next-due probe is a masked word scan
    /// instead of a bucket-by-bucket walk.
    occupancy: [u64; WHEEL_BUCKETS / 64],
    /// Events scheduled further out than the wheel span (unreachable with
    /// the shipped latency configurations, but kept for correctness).
    overflow: Vec<Completion>,
    len: usize,
}

impl Default for EventWheel {
    fn default() -> Self {
        EventWheel::new()
    }
}

impl EventWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        EventWheel::with_bucket_capacity(0)
    }

    /// Creates an empty wheel whose buckets each start with room for
    /// `capacity` events.
    ///
    /// A bucket only ever holds events due at a single future cycle (it is
    /// drained every cycle, and all latencies fit inside one wheel lap),
    /// and events aimed at one cycle are scheduled by at most
    /// `issue_width` executes per source cycle across the machine's few
    /// distinct completion latencies — so a small per-bucket capacity
    /// eliminates steady-state reallocation. Which bucket index first
    /// receives an event drifts with the absolute cycle count, so growing
    /// buckets lazily would allocate long after any warm-up.
    pub fn with_bucket_capacity(capacity: usize) -> Self {
        EventWheel {
            buckets: (0..WHEEL_BUCKETS)
                .map(|_| Vec::with_capacity(capacity))
                .collect(),
            occupancy: [0; WHEEL_BUCKETS / 64],
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Drops every scheduled event, keeping bucket allocations.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.occupancy = [0; WHEEL_BUCKETS / 64];
        self.overflow.clear();
        self.len = 0;
    }

    /// Whether no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an event. `now` is the current cycle; `event.at` must be
    /// strictly in the future (the core's minimum completion latency is
    /// one cycle).
    pub fn schedule(&mut self, now: u64, event: Completion) {
        debug_assert!(event.at > now, "completion scheduled in the past");
        if event.at - now < WHEEL_BUCKETS as u64 {
            let idx = (event.at & WHEEL_MASK) as usize;
            self.buckets[idx].push(event);
            self.occupancy[idx >> 6] |= 1u64 << (idx & 63);
        } else {
            self.overflow.push(event);
        }
        self.len += 1;
    }

    /// Clears `out` and fills it with every event due at `now`, in
    /// scheduling order. Must be called every cycle (buckets are only
    /// inspected when their index comes around).
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Completion>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        // Far-future events migrate into their bucket once they are
        // within a wheel span. Because this runs every cycle, migration
        // happens long before the due cycle; scheduling order within the
        // target bucket is preserved.
        if !self.overflow.is_empty() {
            let buckets = &mut self.buckets;
            let occupancy = &mut self.occupancy;
            self.overflow.retain(|e| {
                if e.at.saturating_sub(now) < WHEEL_BUCKETS as u64 {
                    let idx = (e.at & WHEEL_MASK) as usize;
                    buckets[idx].push(*e);
                    occupancy[idx >> 6] |= 1u64 << (idx & 63);
                    false
                } else {
                    true
                }
            });
        }
        let idx = (now & WHEEL_MASK) as usize;
        let bucket = &mut self.buckets[idx];
        if bucket.iter().all(|e| e.at <= now) {
            // Common case: the bucket holds only this lap's events.
            out.append(bucket);
        } else {
            bucket.retain(|e| {
                if e.at <= now {
                    out.push(*e);
                    false
                } else {
                    true
                }
            });
        }
        if bucket.is_empty() {
            self.occupancy[idx >> 6] &= !(1u64 << (idx & 63));
        }
        self.len -= out.len();
    }

    /// Iterates over every scheduled event, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = &Completion> {
        self.buckets.iter().flatten().chain(self.overflow.iter())
    }

    /// Whether an event is due at exactly `now` — a single bucket probe.
    ///
    /// Exact only when the wheel was drained at every cycle up to and
    /// including `now - 1` (the core guarantees this: the probe runs
    /// right after a step, and skips never jump past a due event): the
    /// due bucket then holds nothing but this cycle's events, and any
    /// overflow event within a lap of `now` has already migrated in.
    pub fn due_now(&self, now: u64) -> bool {
        let idx = (now & WHEEL_MASK) as usize;
        debug_assert!(
            self.buckets[idx].iter().all(|e| e.at == now),
            "bucket mixes laps"
        );
        debug_assert_eq!(
            self.occupancy[idx >> 6] >> (idx & 63) & 1 != 0,
            !self.buckets[idx].is_empty(),
            "occupancy bit stale for bucket {idx}"
        );
        self.occupancy[idx >> 6] >> (idx & 63) & 1 != 0
    }

    /// The earliest occupied bucket at circular distance `0..=span` from
    /// `now`'s bucket, as an absolute cycle — a masked scan of the
    /// occupancy words (at most one lap, ≤ 17 word reads) instead of a
    /// bucket-by-bucket walk.
    fn next_occupied(&self, now: u64, span: u64) -> Option<u64> {
        const WORDS: usize = WHEEL_BUCKETS / 64;
        let start = (now & WHEEL_MASK) as usize;
        let start_w = start >> 6;
        let mut w = start_w;
        let mut masked = self.occupancy[w] & (!0u64 << (start & 63));
        let mut hops = 0;
        loop {
            if masked != 0 {
                let bit = (w << 6) + masked.trailing_zeros() as usize;
                let d = ((bit + WHEEL_BUCKETS - start) & WHEEL_MASK as usize) as u64;
                // The first occupied bucket past the horizon means none
                // inside it: the scan is in ascending distance order.
                return (d <= span).then_some(now + d);
            }
            hops += 1;
            if hops > WORDS {
                return None;
            }
            w = (w + 1) & (WORDS - 1);
            masked = self.occupancy[w];
            if w == start_w {
                // Wrapped a full lap: only the start word's low bits
                // (largest distances) remain unexamined.
                masked &= !(!0u64 << (start & 63));
            }
        }
    }

    /// The earliest cycle in `now..=horizon` at which an event is due, or
    /// `None` if there is none in that window.
    ///
    /// Used by the idle fast-forward: buckets hold events for at most one
    /// lap ahead, so the first non-empty bucket walking forward from
    /// `now` names the next due cycle exactly; events beyond a lap live
    /// in the overflow list and are scanned directly.
    pub fn next_due(&self, now: u64, horizon: u64) -> Option<u64> {
        if self.len == 0 || horizon < now {
            return None;
        }
        let span = (horizon - now).min(WHEEL_BUCKETS as u64 - 1);
        let next = self.next_occupied(now, span);
        debug_assert!(
            next.is_none_or(|at| {
                let bucket = &self.buckets[(at & WHEEL_MASK) as usize];
                !bucket.is_empty() && bucket.iter().all(|e| e.at == at)
            }),
            "bucket mixes laps"
        );
        let overflow_next = self
            .overflow
            .iter()
            .map(|e| e.at)
            .min()
            .filter(|&at| at <= horizon);
        match (next, overflow_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(at: u64, seq: u64) -> Completion {
        Completion {
            at,
            seq,
            stamp: seq,
            value: 0,
            is_load: false,
        }
    }

    #[test]
    fn delivers_in_scheduling_order() {
        let mut wheel = EventWheel::new();
        wheel.schedule(0, event(3, 1));
        wheel.schedule(0, event(3, 2));
        wheel.schedule(1, event(3, 3));
        let mut due = Vec::new();
        for now in 1..3 {
            wheel.drain_due(now, &mut due);
            assert!(due.is_empty(), "nothing due at {now}");
        }
        wheel.drain_due(3, &mut due);
        let seqs: Vec<u64> = due.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn buckets_separate_cycles() {
        let mut wheel = EventWheel::new();
        wheel.schedule(0, event(2, 1));
        wheel.schedule(0, event(5, 2));
        let mut due = Vec::new();
        wheel.drain_due(2, &mut due);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].seq, 1);
        assert_eq!(wheel.len(), 1);
        wheel.drain_due(5, &mut due);
        assert_eq!(due[0].seq, 2);
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut wheel = EventWheel::new();
        let far = WHEEL_BUCKETS as u64 * 3 + 17;
        wheel.schedule(0, event(far, 1));
        wheel.schedule(0, event(1, 2));
        let mut due = Vec::new();
        // Stepping every cycle (as the core does) must deliver both at
        // their exact due cycles, nothing early from the shared bucket.
        let mut delivered = Vec::new();
        for now in 1..=far {
            wheel.drain_due(now, &mut due);
            for e in &due {
                delivered.push((now, e.seq));
            }
        }
        assert_eq!(delivered, vec![(1, 2), (far, 1)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_bucket_different_lap_is_not_delivered_early() {
        let mut wheel = EventWheel::new();
        // Lands in bucket 5 of the *next* lap via the overflow list.
        let later = WHEEL_BUCKETS as u64 + 5;
        wheel.schedule(0, event(later, 1));
        let mut due = Vec::new();
        for now in 1..later {
            wheel.drain_due(now, &mut due);
            assert!(due.is_empty(), "event delivered early at {now}");
        }
        wheel.drain_due(later, &mut due);
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn next_due_matches_bucket_walk() {
        // Drive the wheel across several laps with scattered events and
        // check the occupancy-word scan against a naive bucket walk.
        let mut wheel = EventWheel::new();
        let mut due = Vec::new();
        let mut pending: Vec<u64> = Vec::new();
        let mut seq = 0;
        for now in 0..(WHEEL_BUCKETS as u64 * 3) {
            wheel.drain_due(now, &mut due);
            pending.retain(|&at| at > now);
            // A deterministic, irregular schedule: bursts at varying
            // distances, including bucket collisions and the now bucket's
            // word.
            if now % 7 == 0 {
                for delta in [1, 2, 63, 64, 100, 1023] {
                    wheel.schedule(now, event(now + delta, seq));
                    pending.push(now + delta);
                    seq += 1;
                }
            }
            for horizon in [now, now + 1, now + 90, now + WHEEL_BUCKETS as u64] {
                let expect = pending.iter().copied().filter(|&at| at <= horizon).min();
                assert_eq!(
                    wheel.next_due(now, horizon),
                    expect,
                    "divergence at now={now} horizon={horizon}"
                );
            }
            assert_eq!(wheel.due_now(now + 1), pending.contains(&(now + 1)));
        }
    }

    #[test]
    fn iter_sees_everything() {
        let mut wheel = EventWheel::new();
        wheel.schedule(0, event(1, 1));
        wheel.schedule(0, event(WHEEL_BUCKETS as u64 * 2, 2));
        let mut seqs: Vec<u64> = wheel.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(wheel.len(), 2);
    }
}

//! Physical register file, rename map and free list.

use condspec_isa::reg::NUM_ARCH_REGS;
use condspec_isa::Reg;
use std::collections::VecDeque;

/// Identifier of a physical register.
pub type PhysReg = u16;

/// The physical register file with per-register ready bits, plus the
/// speculative rename map and free list.
///
/// Renaming follows the classic merged-register-file scheme: each
/// architectural destination is assigned a fresh physical register at
/// rename; the previous mapping is remembered so that it can be freed at
/// commit or re-instated on squash (walk-back recovery).
///
/// # Examples
///
/// ```
/// use condspec_pipeline::regfile::RegFile;
/// use condspec_isa::Reg;
///
/// let mut rf = RegFile::new(64);
/// let (new, old) = rf.rename_dest(Reg::R1).unwrap();
/// rf.write(new, 42);
/// assert_eq!(rf.read(rf.lookup(Reg::R1)), 42);
/// assert_ne!(new, old);
/// ```
#[derive(Debug, Clone)]
pub struct RegFile {
    values: Vec<u64>,
    ready: Vec<bool>,
    rename: [PhysReg; NUM_ARCH_REGS],
    free: VecDeque<PhysReg>,
    /// Per-physical-register wakeup lists: the IQ slots waiting for this
    /// register to become ready. A writeback drains exactly its own
    /// subscribers ([`RegFile::write_and_wake`]) instead of the scheduler
    /// re-testing every queue entry's operands each cycle. Entries may go
    /// stale when a subscriber is squashed without an unsubscribe; that
    /// is harmless (the waker re-checks the slot's actual operands) and
    /// bounded (a register's list is cleared whenever it is released —
    /// by then every live subscriber has been woken or squashed).
    consumers: Vec<Vec<u16>>,
}

impl RegFile {
    /// Creates a register file with `phys_regs` physical registers; the
    /// first 32 are the initial architectural mappings (all zero, ready).
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs <= 32` (there must be at least one free
    /// register for renaming) or `phys_regs > u16::MAX as usize`.
    pub fn new(phys_regs: usize) -> Self {
        assert!(
            phys_regs > NUM_ARCH_REGS,
            "need more physical than architectural registers"
        );
        assert!(
            phys_regs <= u16::MAX as usize,
            "physical register id must fit in u16"
        );
        let mut rename = [0 as PhysReg; NUM_ARCH_REGS];
        for (i, r) in rename.iter_mut().enumerate() {
            *r = i as PhysReg;
        }
        RegFile {
            values: vec![0; phys_regs],
            ready: vec![true; phys_regs],
            rename,
            free: (NUM_ARCH_REGS as PhysReg..phys_regs as PhysReg).collect(),
            consumers: vec![Vec::new(); phys_regs],
        }
    }

    /// Restores the initial state (identity rename map, all registers
    /// zero and ready) without releasing the backing storage.
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0);
        self.ready.iter_mut().for_each(|r| *r = true);
        for (i, r) in self.rename.iter_mut().enumerate() {
            *r = i as PhysReg;
        }
        self.free.clear();
        self.free
            .extend(NUM_ARCH_REGS as PhysReg..self.values.len() as PhysReg);
        self.consumers.iter_mut().for_each(|c| c.clear());
    }

    /// The current speculative mapping of an architectural register.
    pub fn lookup(&self, arch: Reg) -> PhysReg {
        self.rename[arch.index()]
    }

    /// Renames `arch` to a fresh physical register.
    ///
    /// Returns `(new, previous)` mappings, or `None` if no physical
    /// register is free (rename stalls).
    pub fn rename_dest(&mut self, arch: Reg) -> Option<(PhysReg, PhysReg)> {
        debug_assert!(!arch.is_zero(), "r0 is never renamed");
        let new = self.free.pop_front()?;
        let old = self.rename[arch.index()];
        self.rename[arch.index()] = new;
        self.ready[new as usize] = false;
        self.values[new as usize] = 0;
        Some((new, old))
    }

    /// Whether the physical register holds its final value.
    pub fn is_ready(&self, preg: PhysReg) -> bool {
        self.ready[preg as usize]
    }

    /// Reads a physical register's value.
    ///
    /// In debug builds, reading a not-ready register panics — the
    /// scheduler must only read ready operands.
    pub fn read(&self, preg: PhysReg) -> u64 {
        debug_assert!(self.ready[preg as usize], "read of not-ready p{preg}");
        self.values[preg as usize]
    }

    /// Writes a physical register and marks it ready (writeback).
    ///
    /// Callers with wakeup subscribers must use
    /// [`RegFile::write_and_wake`] instead, or subscribed consumers would
    /// never learn the register became ready.
    pub fn write(&mut self, preg: PhysReg, value: u64) {
        debug_assert!(
            self.consumers[preg as usize].is_empty(),
            "plain write to p{preg} which has wakeup subscribers; use write_and_wake"
        );
        self.values[preg as usize] = value;
        self.ready[preg as usize] = true;
    }

    /// Writeback with consumer wakeup: writes the register, marks it
    /// ready, and drains its subscriber list into `woken` (appending).
    /// The caller re-checks each woken slot's actual operands — stale
    /// subscriptions (from a squashed-and-reused slot) are harmless.
    pub fn write_and_wake(&mut self, preg: PhysReg, value: u64, woken: &mut Vec<u16>) {
        self.values[preg as usize] = value;
        self.ready[preg as usize] = true;
        woken.append(&mut self.consumers[preg as usize]);
    }

    /// Registers IQ slot `slot` to be woken when `preg` becomes ready.
    /// Call only for registers that are currently not ready.
    pub fn subscribe(&mut self, preg: PhysReg, slot: usize) {
        debug_assert!(
            !self.ready[preg as usize],
            "subscribing to already-ready p{preg}"
        );
        self.consumers[preg as usize].push(slot as u16);
    }

    /// Removes every subscription of `slot` on `preg` (squash of the
    /// consumer before its operand was written). A no-op if the
    /// subscription was already drained or cleared.
    pub fn unsubscribe(&mut self, preg: PhysReg, slot: usize) {
        let list = &mut self.consumers[preg as usize];
        let mut i = 0;
        while i < list.len() {
            if list[i] as usize == slot {
                list.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Returns `preg` to the free list (at commit of the overwriting
    /// instruction, or at squash of the instruction that allocated it).
    pub fn release(&mut self, preg: PhysReg) {
        debug_assert!(
            !self.free.contains(&preg),
            "double free of physical register p{preg}"
        );
        // Any remaining subscribers are stale by construction: a register
        // is only released once no live instruction can still read it
        // (commit superseded it, or its consumers were squashed with it).
        self.consumers[preg as usize].clear();
        self.free.push_back(preg);
    }

    /// Squash recovery for one instruction: re-instates the previous
    /// mapping and frees the squashed instruction's destination register.
    ///
    /// Must be called youngest-first across the squashed instructions.
    pub fn unrename(&mut self, arch: Reg, new: PhysReg, previous: PhysReg) {
        debug_assert_eq!(
            self.rename[arch.index()],
            new,
            "unrename must be youngest-first"
        );
        self.rename[arch.index()] = previous;
        self.release(new);
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Reads the architectural (committed-speculative) value of `arch`
    /// through the current rename map. `r0` reads as zero.
    pub fn read_arch(&self, arch: Reg) -> u64 {
        if arch.is_zero() {
            0
        } else {
            self.values[self.lookup(arch) as usize]
        }
    }

    /// Writes the architectural value of `arch` through the current
    /// rename map. Writes to `r0` are discarded.
    ///
    /// Only valid when the pipeline is quiesced (no in-flight producers
    /// or consumers): the mapped physical register must already be ready
    /// and have no wakeup subscribers. Used by functional execution to
    /// sync its register state back into the rename fabric, and by
    /// checkpoint restore.
    pub fn write_arch(&mut self, arch: Reg, value: u64) {
        if arch.is_zero() {
            return;
        }
        let preg = self.lookup(arch);
        debug_assert!(
            self.ready[preg as usize],
            "write_arch to in-flight p{preg}; core must be quiesced"
        );
        self.write(preg, value);
    }

    /// All 32 architectural register values through the current rename
    /// map (checkpoint capture). Index 0 is always zero.
    pub fn arch_values(&self) -> [u64; NUM_ARCH_REGS] {
        let mut out = [0u64; NUM_ARCH_REGS];
        for (i, slot) in out.iter_mut().enumerate().skip(1) {
            *slot = self.values[self.rename[i] as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mappings_are_ready_zero() {
        let rf = RegFile::new(40);
        for r in Reg::ALL {
            assert!(rf.is_ready(rf.lookup(r)));
            assert_eq!(rf.read(rf.lookup(r)), 0);
        }
        assert_eq!(rf.free_count(), 8);
    }

    #[test]
    fn rename_write_read() {
        let mut rf = RegFile::new(40);
        let (p, old) = rf.rename_dest(Reg::R5).unwrap();
        assert_eq!(old, 5);
        assert!(!rf.is_ready(p));
        rf.write(p, 0x123);
        assert!(rf.is_ready(p));
        assert_eq!(rf.read_arch(Reg::R5), 0x123);
    }

    #[test]
    fn rename_exhaustion_returns_none() {
        let mut rf = RegFile::new(34);
        assert!(rf.rename_dest(Reg::R1).is_some());
        assert!(rf.rename_dest(Reg::R2).is_some());
        assert!(rf.rename_dest(Reg::R3).is_none(), "free list exhausted");
    }

    #[test]
    fn release_recycles() {
        let mut rf = RegFile::new(34);
        let (p1, old1) = rf.rename_dest(Reg::R1).unwrap();
        rf.write(p1, 7);
        // Commit: the *previous* mapping is freed.
        rf.release(old1);
        assert_eq!(rf.free_count(), 2);
        let (_, _) = rf.rename_dest(Reg::R2).unwrap();
        let (p3, _) = rf.rename_dest(Reg::R3).unwrap();
        assert_eq!(p3, old1, "released register re-enters the free list");
    }

    #[test]
    fn unrename_restores_previous_mapping() {
        let mut rf = RegFile::new(40);
        let before = rf.lookup(Reg::R3);
        let (p, old) = rf.rename_dest(Reg::R3).unwrap();
        assert_eq!(old, before);
        rf.unrename(Reg::R3, p, old);
        assert_eq!(rf.lookup(Reg::R3), before);
        // p is free again.
        let free_before = rf.free_count();
        let (p2, _) = rf.rename_dest(Reg::R4).unwrap();
        let _ = p2;
        assert_eq!(rf.free_count(), free_before - 1);
    }

    #[test]
    fn unrename_nested_youngest_first() {
        let mut rf = RegFile::new(40);
        let orig = rf.lookup(Reg::R1);
        let (pa, olda) = rf.rename_dest(Reg::R1).unwrap();
        let (pb, oldb) = rf.rename_dest(Reg::R1).unwrap();
        assert_eq!(oldb, pa);
        rf.unrename(Reg::R1, pb, oldb);
        rf.unrename(Reg::R1, pa, olda);
        assert_eq!(rf.lookup(Reg::R1), orig);
    }

    #[test]
    fn write_and_wake_drains_exactly_the_subscribers() {
        let mut rf = RegFile::new(40);
        let (p1, _) = rf.rename_dest(Reg::R1).unwrap();
        let (p2, _) = rf.rename_dest(Reg::R2).unwrap();
        rf.subscribe(p1, 3);
        rf.subscribe(p1, 9);
        rf.subscribe(p2, 5);
        let mut woken = Vec::new();
        rf.write_and_wake(p1, 7, &mut woken);
        woken.sort_unstable();
        assert_eq!(woken, vec![3, 9], "only p1's subscribers wake");
        assert!(rf.is_ready(p1));
        // A second write wakes nobody: the list was drained.
        let mut again = Vec::new();
        rf.write_and_wake(p1, 8, &mut again);
        assert!(again.is_empty());
        // p2's subscriber is still pending until its own writeback.
        rf.write_and_wake(p2, 1, &mut again);
        assert_eq!(again, vec![5]);
    }

    #[test]
    fn unsubscribe_and_release_clear_subscriptions() {
        let mut rf = RegFile::new(40);
        let (p, old) = rf.rename_dest(Reg::R1).unwrap();
        rf.subscribe(p, 4);
        rf.subscribe(p, 4); // duplicate (same preg in both operand lanes)
        rf.subscribe(p, 6);
        rf.unsubscribe(p, 4);
        let mut woken = Vec::new();
        rf.write_and_wake(p, 1, &mut woken);
        assert_eq!(woken, vec![6], "all duplicates removed");
        // Squash path: a not-ready register with subscribers is released;
        // its list must be empty by the time the register is reused.
        let (q, old_q) = rf.rename_dest(Reg::R2).unwrap();
        rf.subscribe(q, 8);
        rf.unrename(Reg::R2, q, old_q);
        assert!(
            rf.consumers[q as usize].is_empty(),
            "release cleared stale subscribers"
        );
        let _ = old;
    }

    #[test]
    fn read_arch_r0_is_zero() {
        let rf = RegFile::new(40);
        assert_eq!(rf.read_arch(Reg::R0), 0);
    }

    #[test]
    #[should_panic(expected = "need more physical")]
    fn too_few_physical_registers_panics() {
        let _ = RegFile::new(32);
    }
}

//! Load and store queues: store-to-load forwarding, speculative store
//! bypass and memory-ordering-violation detection.
//!
//! The store queue holds speculative store data until commit; loads
//! compose their value from committed memory overlaid with older in-flight
//! store bytes. A load may *bypass* older stores whose addresses are still
//! unknown (the speculation Spectre V4 exploits); when such a store later
//! resolves to an overlapping address, the violation is detected and the
//! core squashes from the offending load.
//!
//! Both queues are seq-ordered rings in hot/cold SoA form, mirroring
//! `rob.rs`: flat `Copy` record arrays ([`LoadHot`], [`StoreHot`]) whose
//! validity lives in per-state u64 bitmap words (`valid`/`executed` for
//! loads; `valid`/`addr_known`/`data_known` for stores). Entries are
//! allocated at the tail in program order, so a sequence number maps to a
//! ring offset by binary search, the "any older store with an unknown
//! address" check is a masked-word `range_all_set`, and the forwarding /
//! violation searches are masked-word scans over exactly the candidate
//! bits instead of per-entry queue walks. Squash is a word-wise range
//! clear at the tail. [`Lsq::check_bitmaps`] re-derives every word from
//! the records, and the `lsq_differential` property test checks the whole
//! API against a naive O(n²) reference model.

use crate::bits;

/// The hot record of one in-flight load. `addr` is meaningful only once
/// the `executed` bit is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LoadHot {
    seq: u64,
    addr: u64,
    size: u64,
    executed: bool,
    /// Whether it executed while an older store's address was unknown.
    bypassed_unknown_store: bool,
}

/// The hot record of one in-flight store. Address and data resolve
/// independently, as in a real LSQ: the store issues and resolves its
/// address once the base register is ready; the data may arrive later.
/// `addr`/`data` are meaningful only once the matching `*_known` bit is
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoreHot {
    seq: u64,
    addr: u64,
    size: u64,
    data: u64,
    addr_known: bool,
    data_known: bool,
}

fn ranges_overlap(a: u64, a_len: u64, b: u64, b_len: u64) -> bool {
    a < b + b_len && b < a + a_len
}

/// Splits the ring-offset range `[a, b)` of a queue with head slot
/// `head` and capacity `cap` into up to two contiguous physical slot
/// ranges, oldest piece first. Empty pieces come out as `(0, 0)`.
fn ring_pieces(head: usize, cap: usize, a: usize, b: usize) -> [(usize, usize); 2] {
    if a >= b {
        return [(0, 0), (0, 0)];
    }
    let sa = head + a;
    let sb = head + b;
    if sa >= cap {
        [(sa - cap, sb - cap), (0, 0)]
    } else if sb <= cap {
        [(sa, sb), (0, 0)]
    } else {
        [(sa, cap), (0, sb - cap)]
    }
}

/// Combined load/store queues.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::lsq::Lsq;
///
/// let mut lsq = Lsq::new(4, 4);
/// lsq.allocate_store(1, 8).unwrap();
/// lsq.allocate_load(2, 8).unwrap();
/// lsq.resolve_store_addr(1, 0x100);
/// lsq.resolve_store_data(1, 0xabcd);
/// // The load reads 0x100: memory said 0, the store forwards 0xabcd.
/// assert_eq!(lsq.overlay(2, 0x100, 8, 0), 0xabcd);
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    load_hot: Vec<LoadHot>,
    /// One bit per slot inside the load ring window.
    load_valid: Vec<u64>,
    /// One bit per valid load that has obtained its value.
    load_executed: Vec<u64>,
    load_head: usize,
    load_len: usize,
    store_hot: Vec<StoreHot>,
    /// One bit per slot inside the store ring window.
    store_valid: Vec<u64>,
    /// One bit per valid store whose address has resolved.
    store_addr_known: Vec<u64>,
    /// One bit per valid store whose data is available for forwarding.
    store_data_known: Vec<u64>,
    store_head: usize,
    store_len: usize,
}

impl Lsq {
    /// Creates empty queues with the given capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(load_capacity: usize, store_capacity: usize) -> Self {
        assert!(
            load_capacity > 0 && store_capacity > 0,
            "LSQ capacities must be nonzero"
        );
        let load_words = load_capacity.div_ceil(64);
        let store_words = store_capacity.div_ceil(64);
        Lsq {
            load_hot: vec![
                LoadHot {
                    seq: 0,
                    addr: 0,
                    size: 0,
                    executed: false,
                    bypassed_unknown_store: false,
                };
                load_capacity
            ],
            load_valid: vec![0; load_words],
            load_executed: vec![0; load_words],
            load_head: 0,
            load_len: 0,
            store_hot: vec![
                StoreHot {
                    seq: 0,
                    addr: 0,
                    size: 0,
                    data: 0,
                    addr_known: false,
                    data_known: false,
                };
                store_capacity
            ],
            store_valid: vec![0; store_words],
            store_addr_known: vec![0; store_words],
            store_data_known: vec![0; store_words],
            store_head: 0,
            store_len: 0,
        }
    }

    #[inline]
    fn load_slot(&self, off: usize) -> usize {
        let s = self.load_head + off;
        if s >= self.load_hot.len() {
            s - self.load_hot.len()
        } else {
            s
        }
    }

    #[inline]
    fn store_slot(&self, off: usize) -> usize {
        let s = self.store_head + off;
        if s >= self.store_hot.len() {
            s - self.store_hot.len()
        } else {
            s
        }
    }

    /// Number of loads with sequence number strictly below `seq` — the
    /// ring offset where `seq` would sit. Binary search over the
    /// seq-ordered window.
    fn load_lower_bound(&self, seq: u64) -> usize {
        let (mut lo, mut hi) = (0, self.load_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.load_hot[self.load_slot(mid)].seq < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Number of loads with sequence number `<= target`.
    fn load_count_le(&self, target: u64) -> usize {
        let (mut lo, mut hi) = (0, self.load_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.load_hot[self.load_slot(mid)].seq <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Number of stores with sequence number strictly below `seq`.
    fn store_lower_bound(&self, seq: u64) -> usize {
        let (mut lo, mut hi) = (0, self.store_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.store_hot[self.store_slot(mid)].seq < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Number of stores with sequence number `<= target`.
    fn store_count_le(&self, target: u64) -> usize {
        let (mut lo, mut hi) = (0, self.store_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.store_hot[self.store_slot(mid)].seq <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The slot of the store with exactly `seq`, if resident.
    fn find_store(&self, seq: u64) -> Option<usize> {
        let off = self.store_lower_bound(seq);
        if off < self.store_len {
            let slot = self.store_slot(off);
            if self.store_hot[slot].seq == seq {
                return Some(slot);
            }
        }
        None
    }

    /// The slot of the load with exactly `seq`, if resident.
    fn find_load(&self, seq: u64) -> Option<usize> {
        let off = self.load_lower_bound(seq);
        if off < self.load_len {
            let slot = self.load_slot(off);
            if self.load_hot[slot].seq == seq {
                return Some(slot);
            }
        }
        None
    }

    /// Whether a load can be dispatched.
    pub fn load_has_space(&self) -> bool {
        self.load_len < self.load_hot.len()
    }

    /// Whether a store can be dispatched.
    pub fn store_has_space(&self) -> bool {
        self.store_len < self.store_hot.len()
    }

    /// Allocates a load entry at dispatch (program order).
    ///
    /// Returns `None` when the load queue is full.
    pub fn allocate_load(&mut self, seq: u64, size: u64) -> Option<()> {
        if !self.load_has_space() {
            return None;
        }
        debug_assert!(
            self.load_len == 0 || self.load_hot[self.load_slot(self.load_len - 1)].seq < seq
        );
        let slot = self.load_slot(self.load_len);
        debug_assert!(!bits::test_bit(&self.load_valid, slot));
        debug_assert!(!bits::test_bit(&self.load_executed, slot));
        self.load_hot[slot] = LoadHot {
            seq,
            addr: 0,
            size,
            executed: false,
            bypassed_unknown_store: false,
        };
        bits::set_bit(&mut self.load_valid, slot);
        self.load_len += 1;
        Some(())
    }

    /// Allocates a store entry at dispatch (program order).
    ///
    /// Returns `None` when the store queue is full.
    pub fn allocate_store(&mut self, seq: u64, size: u64) -> Option<()> {
        if !self.store_has_space() {
            return None;
        }
        debug_assert!(
            self.store_len == 0 || self.store_hot[self.store_slot(self.store_len - 1)].seq < seq
        );
        let slot = self.store_slot(self.store_len);
        debug_assert!(!bits::test_bit(&self.store_valid, slot));
        debug_assert!(!bits::test_bit(&self.store_addr_known, slot));
        debug_assert!(!bits::test_bit(&self.store_data_known, slot));
        self.store_hot[slot] = StoreHot {
            seq,
            addr: 0,
            size,
            data: 0,
            addr_known: false,
            data_known: false,
        };
        bits::set_bit(&mut self.store_valid, slot);
        self.store_len += 1;
        Some(())
    }

    /// Records a store's resolved address (store execute).
    ///
    /// # Panics
    ///
    /// Panics if the store is not in the queue.
    pub fn resolve_store_addr(&mut self, seq: u64, addr: u64) {
        let slot = self
            .find_store(seq)
            .expect("resolving a store that is not in the STQ");
        self.store_hot[slot].addr = addr;
        self.store_hot[slot].addr_known = true;
        bits::set_bit(&mut self.store_addr_known, slot);
    }

    /// Records a store's data once its source register is ready.
    ///
    /// # Panics
    ///
    /// Panics if the store is not in the queue.
    pub fn resolve_store_data(&mut self, seq: u64, data: u64) {
        let slot = self
            .find_store(seq)
            .expect("resolving data for a store that is not in the STQ");
        self.store_hot[slot].data = data;
        self.store_hot[slot].data_known = true;
        bits::set_bit(&mut self.store_data_known, slot);
    }

    /// Records a load's resolved address and execution status.
    ///
    /// # Panics
    ///
    /// Panics if the load is not in the queue.
    pub fn resolve_load(&mut self, seq: u64, addr: u64, bypassed: bool) {
        let slot = self
            .find_load(seq)
            .expect("resolving a load that is not in the LDQ");
        self.load_hot[slot].addr = addr;
        self.load_hot[slot].executed = true;
        self.load_hot[slot].bypassed_unknown_store = bypassed;
        bits::set_bit(&mut self.load_executed, slot);
    }

    /// Whether any store older than `seq` has an unresolved address: a
    /// masked-word "are all `addr_known` bits set over the older range"
    /// test.
    pub fn older_store_unknown(&self, seq: u64) -> bool {
        let k = self.store_lower_bound(seq);
        let cap = self.store_hot.len();
        for (start, end) in ring_pieces(self.store_head, cap, 0, k) {
            if !bits::range_all_set(&self.store_addr_known, start, end) {
                return true;
            }
        }
        false
    }

    /// Whether any older store has a resolved address overlapping the
    /// load but data that is not yet available (the load must wait — it
    /// can neither forward nor safely read memory). Scans only the
    /// `addr_known & !data_known` bits over the older range.
    pub fn older_store_data_unknown(&self, seq: u64, addr: u64, size: u64) -> bool {
        let k = self.store_lower_bound(seq);
        let cap = self.store_hot.len();
        for (start, end) in ring_pieces(self.store_head, cap, 0, k) {
            let hit = bits::find_set_in_range(
                |w| self.store_addr_known[w] & !self.store_data_known[w],
                start,
                end,
                |slot| {
                    let s = &self.store_hot[slot];
                    ranges_overlap(addr, size, s.addr, s.size)
                },
            );
            if hit.is_some() {
                return true;
            }
        }
        false
    }

    /// Composes a load value: starts from `memory_value` (the bytes
    /// currently in committed memory at `addr`) and overlays bytes written
    /// by older in-flight stores, oldest first, so the youngest matching
    /// store wins per byte. The candidate set is the
    /// `addr_known & data_known` bits over the older range, visited in
    /// ascending ring order (= ascending seq).
    ///
    /// Callers must have checked [`older_store_data_unknown`] first;
    /// overlapping stores without data are skipped here.
    ///
    /// [`older_store_data_unknown`]: Lsq::older_store_data_unknown
    pub fn overlay(&self, seq: u64, addr: u64, size: u64, memory_value: u64) -> u64 {
        let mut bytes = memory_value.to_le_bytes();
        let k = self.store_lower_bound(seq);
        let cap = self.store_hot.len();
        for (start, end) in ring_pieces(self.store_head, cap, 0, k) {
            bits::for_each_set_in_range(
                |w| self.store_addr_known[w] & self.store_data_known[w],
                start,
                end,
                |slot| {
                    let store = &self.store_hot[slot];
                    if !ranges_overlap(addr, size, store.addr, store.size) {
                        return;
                    }
                    let sdata = store.data.to_le_bytes();
                    for i in 0..store.size {
                        let byte_addr = store.addr + i;
                        if byte_addr >= addr && byte_addr < addr + size {
                            bytes[(byte_addr - addr) as usize] = sdata[i as usize];
                        }
                    }
                },
            );
        }
        let mut value = u64::from_le_bytes(bytes);
        if size < 8 {
            value &= (1u64 << (8 * size)) - 1;
        }
        value
    }

    /// Checks whether resolving a store at `addr` exposes a memory-order
    /// violation: a *younger* load that already executed with an
    /// overlapping address. Returns the oldest such load's sequence
    /// number (the squash point). Scans the `executed` bits over the
    /// younger range in ascending seq order, so the first overlap found
    /// is the answer.
    pub fn violation_on_store(&self, store_seq: u64, addr: u64, size: u64) -> Option<u64> {
        let k = self.load_count_le(store_seq);
        let cap = self.load_hot.len();
        for (start, end) in ring_pieces(self.load_head, cap, k, self.load_len) {
            let hit = bits::find_set_in_range(
                |w| self.load_executed[w],
                start,
                end,
                |slot| {
                    let l = &self.load_hot[slot];
                    ranges_overlap(l.addr, l.size, addr, size)
                },
            );
            if let Some(slot) = hit {
                return Some(self.load_hot[slot].seq);
            }
        }
        None
    }

    /// Removes the oldest load if it has sequence number `seq` (commit).
    pub fn release_load(&mut self, seq: u64) {
        if self.load_len > 0 && self.load_hot[self.load_head].seq == seq {
            bits::clear_bit(&mut self.load_valid, self.load_head);
            bits::clear_bit(&mut self.load_executed, self.load_head);
            self.load_head = self.load_slot(1);
            self.load_len -= 1;
            if self.load_len == 0 {
                self.load_head = 0;
            }
        }
    }

    /// Removes the oldest store if it has sequence number `seq` (commit).
    pub fn release_store(&mut self, seq: u64) {
        if self.store_len > 0 && self.store_hot[self.store_head].seq == seq {
            bits::clear_bit(&mut self.store_valid, self.store_head);
            bits::clear_bit(&mut self.store_addr_known, self.store_head);
            bits::clear_bit(&mut self.store_data_known, self.store_head);
            self.store_head = self.store_slot(1);
            self.store_len -= 1;
            if self.store_len == 0 {
                self.store_head = 0;
            }
        }
    }

    /// Removes all entries younger than `target` (squash). Returns the
    /// removed sequence numbers (for TPBuf release notifications).
    pub fn squash_after(&mut self, target: u64) -> Vec<u64> {
        let mut removed = Vec::new();
        self.squash_after_into(target, &mut removed);
        removed
    }

    /// Like [`Lsq::squash_after`], but clears `out` and fills it in place
    /// so callers can reuse one buffer across squashes. The removed
    /// sequence numbers come out youngest-first, loads before stores
    /// (the order the TPBuf release notifications rely on); the bitmap
    /// words are cleared with word-wise range clears at the tail.
    pub fn squash_after_into(&mut self, target: u64, out: &mut Vec<u64>) {
        out.clear();
        let load_cut = self.load_count_le(target);
        for off in (load_cut..self.load_len).rev() {
            out.push(self.load_hot[self.load_slot(off)].seq);
        }
        let cap = self.load_hot.len();
        for (start, end) in ring_pieces(self.load_head, cap, load_cut, self.load_len) {
            bits::clear_range(&mut self.load_valid, start, end);
            bits::clear_range(&mut self.load_executed, start, end);
        }
        self.load_len = load_cut;
        if self.load_len == 0 {
            self.load_head = 0;
        }
        let store_cut = self.store_count_le(target);
        for off in (store_cut..self.store_len).rev() {
            out.push(self.store_hot[self.store_slot(off)].seq);
        }
        let cap = self.store_hot.len();
        for (start, end) in ring_pieces(self.store_head, cap, store_cut, self.store_len) {
            bits::clear_range(&mut self.store_valid, start, end);
            bits::clear_range(&mut self.store_addr_known, start, end);
            bits::clear_range(&mut self.store_data_known, start, end);
        }
        self.store_len = store_cut;
        if self.store_len == 0 {
            self.store_head = 0;
        }
    }

    /// Empties both queues, keeping the backing storage.
    pub fn reset(&mut self) {
        self.load_valid.iter_mut().for_each(|w| *w = 0);
        self.load_executed.iter_mut().for_each(|w| *w = 0);
        self.load_head = 0;
        self.load_len = 0;
        self.store_valid.iter_mut().for_each(|w| *w = 0);
        self.store_addr_known.iter_mut().for_each(|w| *w = 0);
        self.store_data_known.iter_mut().for_each(|w| *w = 0);
        self.store_head = 0;
        self.store_len = 0;
    }

    /// Number of in-flight loads.
    pub fn load_count(&self) -> usize {
        self.load_len
    }

    /// Number of in-flight stores.
    pub fn store_count(&self) -> usize {
        self.store_len
    }

    /// Re-derives every bitmap word from the hot records and the ring
    /// windows and verifies they agree with the incrementally maintained
    /// state. Diagnostic; run from `Core::check_invariants`, mirroring
    /// `Rob::check_bitmaps`.
    pub fn check_bitmaps(&self) -> Result<(), String> {
        if self.load_len > self.load_hot.len() || self.store_len > self.store_hot.len() {
            return Err("LSQ ring length exceeds capacity".to_string());
        }
        let mut in_load_window = vec![false; self.load_hot.len()];
        let mut prev_seq = None;
        for off in 0..self.load_len {
            let slot = self.load_slot(off);
            in_load_window[slot] = true;
            let seq = self.load_hot[slot].seq;
            if prev_seq.is_some_and(|p| p >= seq) {
                return Err(format!("load ring not seq-ordered at offset {off}"));
            }
            prev_seq = Some(seq);
        }
        for (slot, &in_window) in in_load_window.iter().enumerate() {
            if bits::test_bit(&self.load_valid, slot) != in_window {
                return Err(format!("load valid bit stale for slot {slot}"));
            }
            let executed = in_window && self.load_hot[slot].executed;
            if bits::test_bit(&self.load_executed, slot) != executed {
                return Err(format!("load executed bit stale for slot {slot}"));
            }
        }
        let mut in_store_window = vec![false; self.store_hot.len()];
        let mut prev_seq = None;
        for off in 0..self.store_len {
            let slot = self.store_slot(off);
            in_store_window[slot] = true;
            let seq = self.store_hot[slot].seq;
            if prev_seq.is_some_and(|p| p >= seq) {
                return Err(format!("store ring not seq-ordered at offset {off}"));
            }
            prev_seq = Some(seq);
        }
        for (slot, &in_window) in in_store_window.iter().enumerate() {
            if bits::test_bit(&self.store_valid, slot) != in_window {
                return Err(format!("store valid bit stale for slot {slot}"));
            }
            let addr_known = in_window && self.store_hot[slot].addr_known;
            if bits::test_bit(&self.store_addr_known, slot) != addr_known {
                return Err(format!("store addr-known bit stale for slot {slot}"));
            }
            let data_known = in_window && self.store_hot[slot].data_known;
            if bits::test_bit(&self.store_data_known, slot) != data_known {
                return Err(format!("store data-known bit stale for slot {slot}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_helper() {
        assert!(ranges_overlap(0, 8, 4, 8));
        assert!(ranges_overlap(4, 8, 0, 8));
        assert!(!ranges_overlap(0, 4, 4, 4));
        assert!(ranges_overlap(0, 1, 0, 1));
        assert!(!ranges_overlap(0, 1, 1, 1));
    }

    #[test]
    fn ring_pieces_split() {
        assert_eq!(ring_pieces(0, 8, 0, 3), [(0, 3), (0, 0)]);
        assert_eq!(ring_pieces(6, 8, 0, 4), [(6, 8), (0, 2)]);
        assert_eq!(ring_pieces(6, 8, 2, 4), [(0, 2), (0, 0)]);
        assert_eq!(ring_pieces(3, 8, 1, 1), [(0, 0), (0, 0)]);
    }

    #[test]
    fn capacity_limits() {
        let mut lsq = Lsq::new(1, 1);
        assert!(lsq.allocate_load(1, 8).is_some());
        assert!(lsq.allocate_load(2, 8).is_none());
        assert!(lsq.allocate_store(3, 8).is_some());
        assert!(lsq.allocate_store(4, 8).is_none());
        lsq.check_bitmaps().unwrap();
    }

    #[test]
    fn forwarding_full_overlap() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0x1122_3344_5566_7788);
        assert_eq!(lsq.overlay(2, 0x100, 8, 0), 0x1122_3344_5566_7788);
    }

    #[test]
    fn forwarding_partial_overlap_merges_with_memory() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 1);
        lsq.resolve_store_addr(1, 0x102);
        lsq.resolve_store_data(1, 0xaa);
        let v = lsq.overlay(2, 0x100, 4, 0x4433_2211);
        assert_eq!(v, 0x44aa_2211);
    }

    #[test]
    fn youngest_store_wins() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.allocate_store(2, 8);
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0x1111);
        lsq.resolve_store_addr(2, 0x100);
        lsq.resolve_store_data(2, 0x2222);
        assert_eq!(lsq.overlay(3, 0x100, 8, 0), 0x2222);
    }

    #[test]
    fn youngest_store_wins_across_ring_wrap() {
        let mut lsq = Lsq::new(4, 4);
        // Advance the store head so the older range wraps the ring edge.
        for seq in 1..=3 {
            lsq.allocate_store(seq, 8);
            lsq.resolve_store_addr(seq, 0x900);
            lsq.resolve_store_data(seq, 0);
            lsq.release_store(seq);
        }
        lsq.allocate_store(10, 8);
        lsq.allocate_store(11, 8);
        lsq.resolve_store_addr(10, 0x100);
        lsq.resolve_store_data(10, 0x1111);
        lsq.resolve_store_addr(11, 0x100);
        lsq.resolve_store_data(11, 0x2222);
        assert_eq!(
            lsq.overlay(12, 0x100, 8, 0),
            0x2222,
            "seq order respected even though the younger store sits at a lower slot"
        );
        lsq.check_bitmaps().unwrap();
    }

    #[test]
    fn younger_stores_do_not_forward() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(5, 8);
        lsq.resolve_store_addr(5, 0x100);
        lsq.resolve_store_data(5, 0xbad);
        assert_eq!(lsq.overlay(3, 0x100, 8, 0x900d), 0x900d);
    }

    #[test]
    fn narrow_load_masks() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0x1122_3344_5566_7788);
        assert_eq!(lsq.overlay(2, 0x100, 1, 0), 0x88);
        assert_eq!(lsq.overlay(2, 0x101, 2, 0), 0x6677);
    }

    #[test]
    fn unknown_store_address_detection() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.allocate_load(2, 8);
        assert!(lsq.older_store_unknown(2));
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0);
        assert!(!lsq.older_store_unknown(2));
        assert!(
            !lsq.older_store_unknown(1),
            "only strictly older stores count"
        );
        lsq.check_bitmaps().unwrap();
    }

    #[test]
    fn violation_detected_on_overlapping_young_load() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.allocate_load(2, 8);
        lsq.allocate_load(3, 8);
        lsq.resolve_load(2, 0x100, true);
        lsq.resolve_load(3, 0x104, true);
        // Store resolves overlapping both loads; squash from the older.
        assert_eq!(lsq.violation_on_store(1, 0x100, 8), Some(2));
        // Non-overlapping store: no violation.
        assert_eq!(lsq.violation_on_store(1, 0x200, 8), None);
    }

    #[test]
    fn no_violation_for_unexecuted_or_older_loads() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_load(1, 8);
        lsq.allocate_store(2, 8);
        lsq.allocate_load(3, 8);
        lsq.resolve_load(1, 0x100, false);
        // Load 3 has not executed.
        assert_eq!(lsq.violation_on_store(2, 0x100, 8), None);
    }

    #[test]
    fn release_and_squash() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_load(1, 8);
        lsq.allocate_store(2, 8);
        lsq.allocate_load(3, 8);
        let removed = lsq.squash_after(1);
        assert_eq!(removed, vec![3, 2], "loads youngest-first, then stores");
        assert_eq!(lsq.load_count(), 1);
        assert_eq!(lsq.store_count(), 0);
        lsq.release_load(1);
        assert_eq!(lsq.load_count(), 0);
        lsq.release_load(99); // not the head: no-op
        lsq.check_bitmaps().unwrap();
    }

    #[test]
    fn squash_clears_wrapped_tail_bits() {
        let mut lsq = Lsq::new(4, 4);
        for seq in 1..=3 {
            lsq.allocate_load(seq, 8);
            lsq.release_load(seq);
        }
        // Window now wraps: offsets 0..3 sit at slots 3, 0, 1.
        lsq.allocate_load(10, 8);
        lsq.allocate_load(11, 8);
        lsq.allocate_load(12, 8);
        lsq.resolve_load(11, 0x100, false);
        lsq.resolve_load(12, 0x108, false);
        let removed = lsq.squash_after(10);
        assert_eq!(removed, vec![12, 11]);
        assert_eq!(lsq.load_count(), 1);
        lsq.check_bitmaps().unwrap();
        // The cleared slots are immediately reusable.
        lsq.allocate_load(20, 8).unwrap();
        lsq.allocate_load(21, 8).unwrap();
        lsq.check_bitmaps().unwrap();
    }
}

//! Load and store queues: store-to-load forwarding, speculative store
//! bypass and memory-ordering-violation detection.
//!
//! The store queue holds speculative store data until commit; loads
//! compose their value from committed memory overlaid with older in-flight
//! store bytes. A load may *bypass* older stores whose addresses are still
//! unknown (the speculation Spectre V4 exploits); when such a store later
//! resolves to an overlapping address, the violation is detected and the
//! core squashes from the offending load.

use std::collections::VecDeque;

/// An in-flight load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadEntry {
    /// Global sequence number.
    pub seq: u64,
    /// Resolved virtual address (at execute).
    pub addr: Option<u64>,
    /// Access size in bytes.
    pub size: u64,
    /// Whether the load has obtained its value.
    pub executed: bool,
    /// Whether it executed while an older store's address was unknown.
    pub bypassed_unknown_store: bool,
}

/// An in-flight store. Address and data resolve independently, as in a
/// real LSQ: the store issues and resolves its address once the base
/// register is ready; the data may arrive later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// Global sequence number.
    pub seq: u64,
    /// Resolved virtual address.
    pub addr: Option<u64>,
    /// Access size in bytes.
    pub size: u64,
    /// Store data, once available for forwarding.
    pub data: Option<u64>,
}

fn ranges_overlap(a: u64, a_len: u64, b: u64, b_len: u64) -> bool {
    a < b + b_len && b < a + a_len
}

/// Combined load/store queues.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::lsq::Lsq;
///
/// let mut lsq = Lsq::new(4, 4);
/// lsq.allocate_store(1, 8).unwrap();
/// lsq.allocate_load(2, 8).unwrap();
/// lsq.resolve_store_addr(1, 0x100);
/// lsq.resolve_store_data(1, 0xabcd);
/// // The load reads 0x100: memory said 0, the store forwards 0xabcd.
/// assert_eq!(lsq.overlay(2, 0x100, 8, 0), 0xabcd);
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    loads: VecDeque<LoadEntry>,
    stores: VecDeque<StoreEntry>,
    load_capacity: usize,
    store_capacity: usize,
}

impl Lsq {
    /// Creates empty queues with the given capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(load_capacity: usize, store_capacity: usize) -> Self {
        assert!(
            load_capacity > 0 && store_capacity > 0,
            "LSQ capacities must be nonzero"
        );
        Lsq {
            loads: VecDeque::with_capacity(load_capacity),
            stores: VecDeque::with_capacity(store_capacity),
            load_capacity,
            store_capacity,
        }
    }

    /// Whether a load can be dispatched.
    pub fn load_has_space(&self) -> bool {
        self.loads.len() < self.load_capacity
    }

    /// Whether a store can be dispatched.
    pub fn store_has_space(&self) -> bool {
        self.stores.len() < self.store_capacity
    }

    /// Allocates a load entry at dispatch (program order).
    ///
    /// Returns `None` when the load queue is full.
    pub fn allocate_load(&mut self, seq: u64, size: u64) -> Option<()> {
        if !self.load_has_space() {
            return None;
        }
        debug_assert!(self.loads.back().is_none_or(|l| l.seq < seq));
        self.loads.push_back(LoadEntry {
            seq,
            addr: None,
            size,
            executed: false,
            bypassed_unknown_store: false,
        });
        Some(())
    }

    /// Allocates a store entry at dispatch (program order).
    ///
    /// Returns `None` when the store queue is full.
    pub fn allocate_store(&mut self, seq: u64, size: u64) -> Option<()> {
        if !self.store_has_space() {
            return None;
        }
        debug_assert!(self.stores.back().is_none_or(|s| s.seq < seq));
        self.stores.push_back(StoreEntry {
            seq,
            addr: None,
            size,
            data: None,
        });
        Some(())
    }

    /// Records a store's resolved address (store execute).
    ///
    /// # Panics
    ///
    /// Panics if the store is not in the queue.
    pub fn resolve_store_addr(&mut self, seq: u64, addr: u64) {
        let entry = self
            .stores
            .iter_mut()
            .find(|s| s.seq == seq)
            .expect("resolving a store that is not in the STQ");
        entry.addr = Some(addr);
    }

    /// Records a store's data once its source register is ready.
    ///
    /// # Panics
    ///
    /// Panics if the store is not in the queue.
    pub fn resolve_store_data(&mut self, seq: u64, data: u64) {
        let entry = self
            .stores
            .iter_mut()
            .find(|s| s.seq == seq)
            .expect("resolving data for a store that is not in the STQ");
        entry.data = Some(data);
    }

    /// Records a load's resolved address and execution status.
    ///
    /// # Panics
    ///
    /// Panics if the load is not in the queue.
    pub fn resolve_load(&mut self, seq: u64, addr: u64, bypassed: bool) {
        let entry = self
            .loads
            .iter_mut()
            .find(|l| l.seq == seq)
            .expect("resolving a load that is not in the LDQ");
        entry.addr = Some(addr);
        entry.executed = true;
        entry.bypassed_unknown_store = bypassed;
    }

    /// Whether any store older than `seq` has an unresolved address.
    pub fn older_store_unknown(&self, seq: u64) -> bool {
        self.stores.iter().any(|s| s.seq < seq && s.addr.is_none())
    }

    /// Whether any older store has a resolved address overlapping the
    /// load but data that is not yet available (the load must wait — it
    /// can neither forward nor safely read memory).
    pub fn older_store_data_unknown(&self, seq: u64, addr: u64, size: u64) -> bool {
        self.stores.iter().any(|s| {
            s.seq < seq
                && s.data.is_none()
                && matches!(s.addr, Some(sa) if ranges_overlap(addr, size, sa, s.size))
        })
    }

    /// Composes a load value: starts from `memory_value` (the bytes
    /// currently in committed memory at `addr`) and overlays bytes written
    /// by older in-flight stores, oldest first, so the youngest matching
    /// store wins per byte.
    ///
    /// Callers must have checked [`older_store_data_unknown`] first;
    /// overlapping stores without data are skipped here.
    ///
    /// [`older_store_data_unknown`]: Lsq::older_store_data_unknown
    pub fn overlay(&self, seq: u64, addr: u64, size: u64, memory_value: u64) -> u64 {
        let mut bytes = memory_value.to_le_bytes();
        for store in self.stores.iter().filter(|s| s.seq < seq) {
            let Some(saddr) = store.addr else { continue };
            let Some(data) = store.data else { continue };
            if !ranges_overlap(addr, size, saddr, store.size) {
                continue;
            }
            let sdata = data.to_le_bytes();
            for i in 0..store.size {
                let byte_addr = saddr + i;
                if byte_addr >= addr && byte_addr < addr + size {
                    bytes[(byte_addr - addr) as usize] = sdata[i as usize];
                }
            }
        }
        let mut value = u64::from_le_bytes(bytes);
        if size < 8 {
            value &= (1u64 << (8 * size)) - 1;
        }
        value
    }

    /// Checks whether resolving a store at `addr` exposes a memory-order
    /// violation: a *younger* load that already executed with an
    /// overlapping address. Returns the oldest such load's sequence
    /// number (the squash point).
    pub fn violation_on_store(&self, store_seq: u64, addr: u64, size: u64) -> Option<u64> {
        self.loads
            .iter()
            .filter(|l| l.seq > store_seq && l.executed)
            .filter(|l| {
                l.addr
                    .map(|la| ranges_overlap(la, l.size, addr, size))
                    .unwrap_or(false)
            })
            .map(|l| l.seq)
            .min()
    }

    /// Removes the oldest load if it has sequence number `seq` (commit).
    pub fn release_load(&mut self, seq: u64) {
        if matches!(self.loads.front(), Some(l) if l.seq == seq) {
            self.loads.pop_front();
        }
    }

    /// Removes the oldest store if it has sequence number `seq` (commit).
    pub fn release_store(&mut self, seq: u64) {
        if matches!(self.stores.front(), Some(s) if s.seq == seq) {
            self.stores.pop_front();
        }
    }

    /// Removes all entries younger than `target` (squash). Returns the
    /// removed sequence numbers (for TPBuf release notifications).
    pub fn squash_after(&mut self, target: u64) -> Vec<u64> {
        let mut removed = Vec::new();
        self.squash_after_into(target, &mut removed);
        removed
    }

    /// Like [`Lsq::squash_after`], but clears `out` and fills it in place
    /// so callers can reuse one buffer across squashes.
    pub fn squash_after_into(&mut self, target: u64, out: &mut Vec<u64>) {
        out.clear();
        while matches!(self.loads.back(), Some(l) if l.seq > target) {
            out.push(self.loads.pop_back().expect("checked").seq);
        }
        while matches!(self.stores.back(), Some(s) if s.seq > target) {
            out.push(self.stores.pop_back().expect("checked").seq);
        }
    }

    /// Empties both queues, keeping the backing storage.
    pub fn reset(&mut self) {
        self.loads.clear();
        self.stores.clear();
    }

    /// Number of in-flight loads.
    pub fn load_count(&self) -> usize {
        self.loads.len()
    }

    /// Number of in-flight stores.
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_helper() {
        assert!(ranges_overlap(0, 8, 4, 8));
        assert!(ranges_overlap(4, 8, 0, 8));
        assert!(!ranges_overlap(0, 4, 4, 4));
        assert!(ranges_overlap(0, 1, 0, 1));
        assert!(!ranges_overlap(0, 1, 1, 1));
    }

    #[test]
    fn capacity_limits() {
        let mut lsq = Lsq::new(1, 1);
        assert!(lsq.allocate_load(1, 8).is_some());
        assert!(lsq.allocate_load(2, 8).is_none());
        assert!(lsq.allocate_store(3, 8).is_some());
        assert!(lsq.allocate_store(4, 8).is_none());
    }

    #[test]
    fn forwarding_full_overlap() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0x1122_3344_5566_7788);
        assert_eq!(lsq.overlay(2, 0x100, 8, 0), 0x1122_3344_5566_7788);
    }

    #[test]
    fn forwarding_partial_overlap_merges_with_memory() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 1);
        lsq.resolve_store_addr(1, 0x102);
        lsq.resolve_store_data(1, 0xaa);
        let v = lsq.overlay(2, 0x100, 4, 0x4433_2211);
        assert_eq!(v, 0x44aa_2211);
    }

    #[test]
    fn youngest_store_wins() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.allocate_store(2, 8);
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0x1111);
        lsq.resolve_store_addr(2, 0x100);
        lsq.resolve_store_data(2, 0x2222);
        assert_eq!(lsq.overlay(3, 0x100, 8, 0), 0x2222);
    }

    #[test]
    fn younger_stores_do_not_forward() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(5, 8);
        lsq.resolve_store_addr(5, 0x100);
        lsq.resolve_store_data(5, 0xbad);
        assert_eq!(lsq.overlay(3, 0x100, 8, 0x900d), 0x900d);
    }

    #[test]
    fn narrow_load_masks() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0x1122_3344_5566_7788);
        assert_eq!(lsq.overlay(2, 0x100, 1, 0), 0x88);
        assert_eq!(lsq.overlay(2, 0x101, 2, 0), 0x6677);
    }

    #[test]
    fn unknown_store_address_detection() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.allocate_load(2, 8);
        assert!(lsq.older_store_unknown(2));
        lsq.resolve_store_addr(1, 0x100);
        lsq.resolve_store_data(1, 0);
        assert!(!lsq.older_store_unknown(2));
        assert!(
            !lsq.older_store_unknown(1),
            "only strictly older stores count"
        );
    }

    #[test]
    fn violation_detected_on_overlapping_young_load() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_store(1, 8);
        lsq.allocate_load(2, 8);
        lsq.allocate_load(3, 8);
        lsq.resolve_load(2, 0x100, true);
        lsq.resolve_load(3, 0x104, true);
        // Store resolves overlapping both loads; squash from the older.
        assert_eq!(lsq.violation_on_store(1, 0x100, 8), Some(2));
        // Non-overlapping store: no violation.
        assert_eq!(lsq.violation_on_store(1, 0x200, 8), None);
    }

    #[test]
    fn no_violation_for_unexecuted_or_older_loads() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_load(1, 8);
        lsq.allocate_store(2, 8);
        lsq.allocate_load(3, 8);
        lsq.resolve_load(1, 0x100, false);
        // Load 3 has not executed.
        assert_eq!(lsq.violation_on_store(2, 0x100, 8), None);
    }

    #[test]
    fn release_and_squash() {
        let mut lsq = Lsq::new(4, 4);
        lsq.allocate_load(1, 8);
        lsq.allocate_store(2, 8);
        lsq.allocate_load(3, 8);
        let removed = lsq.squash_after(1);
        assert_eq!(removed.len(), 2);
        assert_eq!(lsq.load_count(), 1);
        assert_eq!(lsq.store_count(), 0);
        lsq.release_load(1);
        assert_eq!(lsq.load_count(), 0);
        lsq.release_load(99); // not the head: no-op
    }
}

//! Bit-word helpers shared by the SoA pipeline structures.
//!
//! The ROB, IQ and LSQ all keep per-state `u64` bitmap words indexed by
//! physical slot; these are the word-level primitives they build their
//! masked scans from. Ranges are half-open `[start, end)` over slot
//! indices and must not wrap — ring structures split a wrapping range at
//! the wrap point and call twice.

/// Sets the bit for `slot`.
#[inline]
pub(crate) fn set_bit(words: &mut [u64], slot: usize) {
    words[slot >> 6] |= 1u64 << (slot & 63);
}

/// Clears the bit for `slot`.
#[inline]
pub(crate) fn clear_bit(words: &mut [u64], slot: usize) {
    words[slot >> 6] &= !(1u64 << (slot & 63));
}

/// Whether the bit for `slot` is set.
#[inline]
pub(crate) fn test_bit(words: &[u64], slot: usize) -> bool {
    words[slot >> 6] >> (slot & 63) & 1 != 0
}

/// The word-aligned mask covering `[start, end)` within word `w`, or 0
/// when the range does not touch the word.
#[inline]
fn word_mask(w: usize, start: usize, end: usize) -> u64 {
    let word_start = w << 6;
    let word_end = word_start + 64;
    if end <= word_start || start >= word_end {
        return 0;
    }
    let lo = start.max(word_start) - word_start;
    let hi = end.min(word_end) - word_start;
    if lo >= hi {
        return 0;
    }
    // hi is in 1..=64; shift in two steps so hi == 64 is defined.
    let upper = (!0u64 >> (64 - hi as u32)) | (1u64 << (hi - 1));
    upper & (!0u64 << lo)
}

/// Clears every bit in `[start, end)`, word at a time.
pub(crate) fn clear_range(words: &mut [u64], start: usize, end: usize) {
    if start >= end {
        return;
    }
    let (first, last) = (start >> 6, (end - 1) >> 6);
    for (w, word) in words.iter_mut().enumerate().take(last + 1).skip(first) {
        *word &= !word_mask(w, start, end);
    }
}

/// Whether every bit in `[start, end)` is set (vacuously true when
/// empty), word at a time.
pub(crate) fn range_all_set(words: &[u64], start: usize, end: usize) -> bool {
    if start >= end {
        return true;
    }
    let (first, last) = (start >> 6, (end - 1) >> 6);
    for (w, word) in words.iter().enumerate().take(last + 1).skip(first) {
        let mask = word_mask(w, start, end);
        if word & mask != mask {
            return false;
        }
    }
    true
}

/// Visits the set bits of `word_of(w)` restricted to `[start, end)`, in
/// ascending slot order.
#[inline]
pub(crate) fn for_each_set_in_range(
    word_of: impl Fn(usize) -> u64,
    start: usize,
    end: usize,
    mut f: impl FnMut(usize),
) {
    if start >= end {
        return;
    }
    for w in (start >> 6)..=((end - 1) >> 6) {
        let mut mask = word_of(w) & word_mask(w, start, end);
        while mask != 0 {
            f((w << 6) + mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
    }
}

/// The first set bit of `word_of(w)` in `[start, end)` (ascending) for
/// which `pred` holds, if any. `pred` is the early-exit hook for scans
/// like the memory-order-violation search.
#[inline]
pub(crate) fn find_set_in_range(
    word_of: impl Fn(usize) -> u64,
    start: usize,
    end: usize,
    mut pred: impl FnMut(usize) -> bool,
) -> Option<usize> {
    if start >= end {
        return None;
    }
    for w in (start >> 6)..=((end - 1) >> 6) {
        let mut mask = word_of(w) & word_mask(w, start, end);
        while mask != 0 {
            let slot = (w << 6) + mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if pred(slot) {
                return Some(slot);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_ops() {
        let mut words = vec![0u64; 3];
        set_bit(&mut words, 0);
        set_bit(&mut words, 63);
        set_bit(&mut words, 64);
        set_bit(&mut words, 130);
        assert!(test_bit(&words, 0) && test_bit(&words, 63));
        assert!(test_bit(&words, 64) && test_bit(&words, 130));
        assert!(!test_bit(&words, 1) && !test_bit(&words, 129));
        clear_bit(&mut words, 63);
        assert!(!test_bit(&words, 63));
        assert!(test_bit(&words, 0), "neighbours untouched");
    }

    #[test]
    fn range_mask_edges() {
        // Full word, word-straddling, and word-interior ranges.
        assert_eq!(word_mask(0, 0, 64), !0u64);
        assert_eq!(word_mask(0, 0, 1), 1);
        assert_eq!(word_mask(0, 63, 64), 1 << 63);
        assert_eq!(word_mask(1, 60, 70), 0b111111);
        assert_eq!(word_mask(0, 60, 70), !0u64 << 60);
        assert_eq!(word_mask(2, 60, 70), 0);
    }

    #[test]
    fn clear_range_and_all_set() {
        let mut words = vec![!0u64; 2];
        assert!(range_all_set(&words, 0, 128));
        assert!(range_all_set(&words, 5, 5), "empty range vacuously true");
        clear_range(&mut words, 30, 70);
        assert!(!range_all_set(&words, 0, 128));
        assert!(range_all_set(&words, 0, 30));
        assert!(range_all_set(&words, 70, 128));
        assert!(!test_bit(&words, 30) && !test_bit(&words, 69));
        assert!(test_bit(&words, 29) && test_bit(&words, 70));
    }

    #[test]
    fn range_scans_ascend_and_respect_bounds() {
        let mut words = vec![0u64; 2];
        for slot in [3, 40, 64, 100] {
            set_bit(&mut words, slot);
        }
        let mut seen = Vec::new();
        for_each_set_in_range(|w| words[w], 4, 100, |s| seen.push(s));
        assert_eq!(seen, vec![40, 64]);
        let found = find_set_in_range(|w| words[w], 0, 128, |s| s > 50);
        assert_eq!(found, Some(64), "predicate filters, ascending first");
        assert_eq!(find_set_in_range(|w| words[w], 0, 128, |_| false), None);
    }
}

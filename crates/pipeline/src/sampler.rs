//! Windowed time-series sampling of pipeline statistics.
//!
//! A [`TimeSeriesSampler`] cuts [`PipelineStats`](crate::PipelineStats)
//! into fixed-width windows of simulated cycles and records the *deltas*
//! per window — IPC, blocked rate, ROB/IQ occupancy, suspect hit rate —
//! so Fig-5-style curves can be plotted over time instead of as one
//! end-of-run aggregate. Sampling is off by default and enabled with
//! [`crate::Core::enable_sampler`]; when off the hot loop pays a single
//! `Option` branch per cycle.
//!
//! Windows are measured in *statistics* cycles (`PipelineStats::cycles`),
//! not absolute core cycles, so a [`crate::Core::reset_stats`] after
//! warm-up restarts the series at window zero. The core clamps its
//! idle-cycle fast-forward to the next window boundary, so every window
//! is cut at exactly the boundary cycle and sampled output is identical
//! whether the idle cycles were stepped or skipped — and therefore
//! bit-identical across two runs of the same job.

use crate::stats::PipelineStats;
use condspec_stats::{Histogram, Json};

/// The statistics deltas of one sample window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleRow {
    /// Window start, in statistics cycles.
    pub start: u64,
    /// Window length in cycles (the final flushed window may be short).
    pub cycles: u64,
    /// Instructions committed in the window.
    pub committed: u64,
    /// Loads committed in the window.
    pub committed_loads: u64,
    /// Committed loads that were blocked at least once.
    pub blocked_committed_loads: u64,
    /// Hazard-filter block decisions in the window.
    pub block_events: u64,
    /// Instructions issued in the window.
    pub issued: u64,
    /// Suspect L1D probe hits in the window.
    pub suspect_hits: u64,
    /// Suspect L1D probes in the window.
    pub suspect_accesses: u64,
    /// Mean ROB occupancy over the window.
    pub rob_occupancy: f64,
    /// Mean IQ occupancy over the window.
    pub iq_occupancy: f64,
}

impl SampleRow {
    /// Committed instructions per cycle within the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of the window's committed loads that were blocked.
    pub fn blocked_rate(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.blocked_committed_loads as f64 / self.committed_loads as f64
        }
    }

    /// L1D hit rate of the window's suspect accesses.
    pub fn suspect_hit_rate(&self) -> f64 {
        if self.suspect_accesses == 0 {
            0.0
        } else {
            self.suspect_hits as f64 / self.suspect_accesses as f64
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            ("start", Json::from(self.start)),
            ("cycles", Json::from(self.cycles)),
            ("committed", Json::from(self.committed)),
            ("committed_loads", Json::from(self.committed_loads)),
            (
                "blocked_committed_loads",
                Json::from(self.blocked_committed_loads),
            ),
            ("block_events", Json::from(self.block_events)),
            ("issued", Json::from(self.issued)),
            ("suspect_hits", Json::from(self.suspect_hits)),
            ("suspect_accesses", Json::from(self.suspect_accesses)),
            ("ipc", Json::from(self.ipc())),
            ("blocked_rate", Json::from(self.blocked_rate())),
            ("suspect_hit_rate", Json::from(self.suspect_hit_rate())),
            ("rob_occupancy", Json::from(self.rob_occupancy)),
            ("iq_occupancy", Json::from(self.iq_occupancy)),
        ])
    }
}

/// Schema identifier written into every JSON export.
pub const TIMESERIES_SCHEMA: &str = "condspec-timeseries-v1";

/// Collects [`SampleRow`]s every `window` statistics cycles, up to
/// `max_rows` rows (further windows are counted as dropped, keeping the
/// *earliest* part of the series).
#[derive(Debug, Clone)]
pub struct TimeSeriesSampler {
    window: u64,
    max_rows: usize,
    rows: Vec<SampleRow>,
    dropped: u64,
    /// Stats snapshot at the current window's start.
    baseline: PipelineStats,
    /// Statistics-cycle count at which the current window ends.
    next_boundary: u64,
}

impl TimeSeriesSampler {
    /// Creates a sampler cutting windows of `window` cycles, starting
    /// from the state in `baseline` (pass the core's current stats when
    /// enabling mid-run).
    ///
    /// # Panics
    ///
    /// Panics if `window` or `max_rows` is zero.
    pub fn new(window: u64, max_rows: usize, baseline: &PipelineStats) -> Self {
        assert!(window > 0, "sample window must be nonzero");
        assert!(max_rows > 0, "row capacity must be nonzero");
        TimeSeriesSampler {
            window,
            max_rows,
            rows: Vec::with_capacity(max_rows.min(4096)),
            dropped: 0,
            baseline: *baseline,
            next_boundary: baseline.cycles + window,
        }
    }

    /// The configured window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The statistics-cycle count at which the current window must be
    /// cut. The core clamps idle fast-forward jumps to this boundary.
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary
    }

    /// The recorded rows, oldest first.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// Windows dropped because `max_rows` was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Cuts the current window against `stats` and starts the next one.
    /// The core calls this whenever `stats.cycles` reaches
    /// [`TimeSeriesSampler::next_boundary`].
    pub fn cut(&mut self, stats: &PipelineStats) {
        self.push_delta(stats);
        self.baseline = *stats;
        self.next_boundary = stats.cycles + self.window;
    }

    /// Cuts a final (possibly short) window if any cycles have elapsed
    /// since the last boundary. Call once after the run, before export.
    pub fn flush(&mut self, stats: &PipelineStats) {
        if stats.cycles > self.baseline.cycles {
            self.cut(stats);
        }
    }

    /// Discards all rows and re-bases the series on `baseline` (the core
    /// calls this from [`crate::Core::reset_stats`] so a post-warm-up
    /// reset restarts the series at window zero).
    pub fn restart(&mut self, baseline: &PipelineStats) {
        self.rows.clear();
        self.dropped = 0;
        self.baseline = *baseline;
        self.next_boundary = baseline.cycles + self.window;
    }

    fn push_delta(&mut self, stats: &PipelineStats) {
        let cycles = stats.cycles - self.baseline.cycles;
        if cycles == 0 {
            return;
        }
        if self.rows.len() == self.max_rows {
            self.dropped += 1;
            return;
        }
        let rob_sum = stats.rob_occupancy_sum - self.baseline.rob_occupancy_sum;
        let iq_sum = stats.iq_occupancy_sum - self.baseline.iq_occupancy_sum;
        self.rows.push(SampleRow {
            start: self.baseline.cycles,
            cycles,
            committed: stats.committed - self.baseline.committed,
            committed_loads: stats.committed_loads - self.baseline.committed_loads,
            blocked_committed_loads: stats.blocked_committed_loads
                - self.baseline.blocked_committed_loads,
            block_events: stats.block_events - self.baseline.block_events,
            issued: stats.issued - self.baseline.issued,
            suspect_hits: stats.suspect_l1.hits() - self.baseline.suspect_l1.hits(),
            suspect_accesses: stats.suspect_l1.total() - self.baseline.suspect_l1.total(),
            rob_occupancy: rob_sum as f64 / cycles as f64,
            iq_occupancy: iq_sum as f64 / cycles as f64,
        });
    }

    /// Renders the series as a deterministic JSON document
    /// (`condspec-timeseries-v1`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::from(TIMESERIES_SCHEMA)),
            ("window", Json::from(self.window)),
            ("rows_dropped", Json::from(self.dropped)),
            (
                "rows",
                Json::Array(self.rows.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Renders the series as CSV with a header row (same columns as the
    /// JSON rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "start,cycles,committed,committed_loads,blocked_committed_loads,\
             block_events,issued,suspect_hits,suspect_accesses,ipc,\
             blocked_rate,suspect_hit_rate,rob_occupancy,iq_occupancy\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{:?},{:?},{:?},{:?},{:?}\n",
                r.start,
                r.cycles,
                r.committed,
                r.committed_loads,
                r.blocked_committed_loads,
                r.block_events,
                r.issued,
                r.suspect_hits,
                r.suspect_accesses,
                r.ipc(),
                r.blocked_rate(),
                r.suspect_hit_rate(),
                r.rob_occupancy,
                r.iq_occupancy,
            ));
        }
        out
    }

    /// A histogram of per-window IPC (scaled ×100 into integer buckets),
    /// for the metrics registry.
    pub fn ipc_histogram(&self) -> Histogram {
        // 40 buckets of 0.25 IPC cover 0..10 IPC; wider machines land in
        // the overflow bucket, which the histogram reports separately.
        let mut h = Histogram::new(25, 40);
        for r in &self.rows {
            h.record((r.ipc() * 100.0).round() as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_at(cycles: u64, committed: u64) -> PipelineStats {
        PipelineStats {
            cycles,
            committed,
            rob_occupancy_sum: cycles * 10,
            iq_occupancy_sum: cycles * 4,
            ..PipelineStats::default()
        }
    }

    #[test]
    fn cuts_windows_with_exact_deltas() {
        let base = stats_at(0, 0);
        let mut s = TimeSeriesSampler::new(100, 16, &base);
        assert_eq!(s.next_boundary(), 100);
        s.cut(&stats_at(100, 250));
        assert_eq!(s.next_boundary(), 200);
        s.cut(&stats_at(200, 300));
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].start, 0);
        assert_eq!(rows[0].cycles, 100);
        assert_eq!(rows[0].committed, 250);
        assert_eq!(rows[0].ipc(), 2.5);
        assert_eq!(rows[1].start, 100);
        assert_eq!(rows[1].committed, 50);
        assert_eq!(rows[1].rob_occupancy, 10.0);
        assert_eq!(rows[1].iq_occupancy, 4.0);
    }

    #[test]
    fn flush_emits_partial_window_once() {
        let mut s = TimeSeriesSampler::new(100, 16, &stats_at(0, 0));
        s.cut(&stats_at(100, 100));
        let mid = stats_at(140, 130);
        s.flush(&mid);
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.rows()[1].cycles, 40);
        assert_eq!(s.rows()[1].committed, 30);
        // A second flush with no progress adds nothing.
        s.flush(&mid);
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn capacity_drops_trailing_windows() {
        let mut s = TimeSeriesSampler::new(10, 2, &stats_at(0, 0));
        for i in 1..=4u64 {
            s.cut(&stats_at(i * 10, i * 10));
        }
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.rows()[0].start, 0, "earliest windows are kept");
    }

    #[test]
    fn restart_clears_series() {
        let mut s = TimeSeriesSampler::new(10, 4, &stats_at(0, 0));
        s.cut(&stats_at(10, 5));
        s.restart(&PipelineStats::default());
        assert!(s.rows().is_empty());
        assert_eq!(s.next_boundary(), 10);
    }

    #[test]
    fn exports_are_deterministic_and_consistent() {
        let mut s = TimeSeriesSampler::new(50, 8, &stats_at(0, 0));
        s.cut(&stats_at(50, 120));
        s.cut(&stats_at(100, 130));
        let json = s.to_json();
        assert_eq!(json.render(), s.clone().to_json().render());
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(TIMESERIES_SCHEMA)
        );
        assert_eq!(
            json.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 rows");
        assert!(csv.lines().next().unwrap().starts_with("start,cycles"));
        let h = s.ipc_histogram();
        assert_eq!(h.count(), 2);
    }
}

//! Optional pipeline event tracing.
//!
//! Tracing is off by default (zero cost beyond a branch per event site);
//! [`crate::Core::enable_trace`] turns it on with a bounded buffer, after
//! which every significant pipeline event is recorded and can be
//! inspected, printed, or exported to Chrome trace-event JSON (see
//! [`crate::perfetto`]). Intended for debugging gadgets, workloads and
//! the defense itself — e.g. watching exactly which speculative load gets
//! blocked, by which hazard filter, and when it replays.
//!
//! Every event carries the simulated cycle it happened on — never
//! wall-clock time — so traces of the same program are bit-identical
//! across runs and hosts.

use crate::policy::BlockFilter;
use std::collections::VecDeque;
use std::fmt;

/// Why a squash happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SquashCause {
    /// A branch (or return) resolved against its prediction.
    Mispredict,
    /// A memory-order violation: a store's address resolved under an
    /// already-executed younger load to the same bytes.
    MemOrder,
    /// A deliberate pipeline drain ([`Core::quiesce`]): all speculative
    /// work is discarded so the core reaches a checkpointable
    /// architectural boundary. The squashed instructions re-execute when
    /// the core resumes.
    ///
    /// [`Core::quiesce`]: crate::Core::quiesce
    Quiesce,
}

impl SquashCause {
    /// A stable machine-readable label (used by the trace exporters).
    pub fn label(&self) -> &'static str {
        match self {
            SquashCause::Mispredict => "mispredict",
            SquashCause::MemOrder => "mem-order",
            SquashCause::Quiesce => "quiesce",
        }
    }
}

impl fmt::Display for SquashCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which persistent microarchitectural structure a tainted value
/// influenced (the taint oracle's channel taxonomy).
///
/// The cache channels are the paper's threat model; the TLB and TPBuf
/// channels are its admitted blind spots — structures the defenses
/// update before their block decision, so secret-dependent state can
/// persist even on a protected core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeakChannel {
    /// A line fill brought a secret-selected address into the cache
    /// hierarchy.
    CacheFill,
    /// A hit on a secret-selected address updated cache replacement
    /// (LRU) state.
    CacheLru,
    /// A translation of a secret-selected address installed a TLB entry.
    TlbFill,
    /// A secret-selected page number was recorded in the TPBuf.
    TpbufInsert,
}

impl LeakChannel {
    /// All channels, in report order (cache channels first).
    pub const ALL: [LeakChannel; 4] = [
        LeakChannel::CacheFill,
        LeakChannel::CacheLru,
        LeakChannel::TlbFill,
        LeakChannel::TpbufInsert,
    ];

    /// A stable machine-readable key (metrics names, JSON fields).
    pub fn key(&self) -> &'static str {
        match self {
            LeakChannel::CacheFill => "cache-fill",
            LeakChannel::CacheLru => "cache-lru",
            LeakChannel::TlbFill => "tlb-fill",
            LeakChannel::TpbufInsert => "tpbuf-insert",
        }
    }

    /// Whether this channel is part of the paper's cache-based threat
    /// model (as opposed to an admitted blind spot).
    pub fn is_cache(&self) -> bool {
        matches!(self, LeakChannel::CacheFill | LeakChannel::CacheLru)
    }
}

impl fmt::Display for LeakChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One recorded pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction entered the ROB/IQ.
    Dispatch {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// The instruction's PC.
        pc: u64,
    },
    /// An instruction was selected for issue.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// Whether it carried the suspect speculation flag.
        suspect: bool,
    },
    /// A hazard filter blocked a memory access.
    Block {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// Which hazard mechanism made the decision.
        filter: BlockFilter,
        /// The load's effective (virtual) address.
        vaddr: u64,
        /// The page of the access: the *physical* page for security
        /// filters (post-translation), the *virtual* page for store
        /// hazards (translation has not happened yet).
        page: u64,
    },
    /// A suspect L1D miss was checked against the TPBuf S-Pattern.
    TpbufProbe {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number of the probing load.
        seq: u64,
        /// Physical page number looked up.
        page: u64,
        /// Whether the page matched the S-Pattern (matched ⇒ blocked).
        matched: bool,
    },
    /// An instruction entered the Issue Queue with at least one security
    /// dependence: its row of the security dependence matrix is
    /// non-empty (paper §III).
    MatrixSet {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// IQ slot (matrix row index).
        slot: usize,
    },
    /// A blocked instruction's security dependences all cleared: its
    /// matrix row drained and it may re-issue.
    MatrixClear {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// IQ slot (matrix row index).
        slot: usize,
    },
    /// A memory instruction was held at issue by an older pending fence.
    FenceHold {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number of the held instruction.
        seq: u64,
    },
    /// An instruction's result became available.
    Complete {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
    },
    /// An instruction retired.
    Commit {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// The instruction's PC.
        pc: u64,
    },
    /// Speculation was squashed.
    Squash {
        /// Cycle of the event.
        cycle: u64,
        /// Youngest surviving sequence number.
        keep_seq: u64,
        /// Where fetch was redirected.
        redirect_pc: u64,
        /// Why the squash happened.
        cause: SquashCause,
    },
    /// The scheduler proved the next `skipped` cycles dead and jumped
    /// over them. `cycle` is the cycle the window *starts* at; the next
    /// event happens at `cycle + skipped` or later.
    FastForward {
        /// First skipped cycle.
        cycle: u64,
        /// Number of cycles skipped.
        skipped: u64,
    },
    /// The taint oracle observed a tainted value influencing persistent
    /// microarchitectural state. `cycle` is when the state changed (the
    /// fill/update cycle); `survived_squash` is resolved retroactively —
    /// the event is emitted once the leaking instruction either commits
    /// (`false`) or is squashed with the state change left behind
    /// (`true`, the Spectre signature).
    Leak {
        /// Cycle the persistent state changed.
        cycle: u64,
        /// Global sequence number of the leaking instruction.
        seq: u64,
        /// Which persistent structure was influenced.
        channel: LeakChannel,
        /// The tainted physical address (page-granular channels record
        /// the page base).
        addr: u64,
        /// Whether the leaking instruction was later squashed, leaving
        /// the state change behind as a wrong-path side effect.
        survived_squash: bool,
    },
}

impl TraceEvent {
    /// The cycle the event happened.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Dispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Block { cycle, .. }
            | TraceEvent::TpbufProbe { cycle, .. }
            | TraceEvent::MatrixSet { cycle, .. }
            | TraceEvent::MatrixClear { cycle, .. }
            | TraceEvent::FenceHold { cycle, .. }
            | TraceEvent::Complete { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Squash { cycle, .. }
            | TraceEvent::FastForward { cycle, .. }
            | TraceEvent::Leak { cycle, .. } => *cycle,
        }
    }

    /// A stable category tag grouping related events (mirrors the
    /// exporter's track assignment and the paper's structure: `security`
    /// is §III's dependence matrix, `memory` is §IV's filters).
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::Dispatch { .. }
            | TraceEvent::Issue { .. }
            | TraceEvent::Complete { .. }
            | TraceEvent::Commit { .. } => "pipeline",
            TraceEvent::Block { .. } | TraceEvent::TpbufProbe { .. } => "memory",
            TraceEvent::MatrixSet { .. }
            | TraceEvent::MatrixClear { .. }
            | TraceEvent::FenceHold { .. } => "security",
            TraceEvent::Squash { .. } => "control",
            TraceEvent::FastForward { .. } => "scheduler",
            TraceEvent::Leak { .. } => "leak",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Dispatch { cycle, seq, pc } => {
                write!(f, "[{cycle:>8}] dispatch seq={seq} pc={pc:#x}")
            }
            TraceEvent::Issue {
                cycle,
                seq,
                suspect,
            } => {
                let flag = if *suspect { " SUSPECT" } else { "" };
                write!(f, "[{cycle:>8}] issue    seq={seq}{flag}")
            }
            TraceEvent::Block {
                cycle,
                seq,
                filter,
                vaddr,
                page,
            } => {
                write!(
                    f,
                    "[{cycle:>8}] BLOCK    seq={seq} filter={filter} vaddr={vaddr:#x} page={page:#x}"
                )
            }
            TraceEvent::TpbufProbe {
                cycle,
                seq,
                page,
                matched,
            } => {
                let verdict = if *matched { "match" } else { "mismatch" };
                write!(
                    f,
                    "[{cycle:>8}] tpbuf    seq={seq} page={page:#x} {verdict}"
                )
            }
            TraceEvent::MatrixSet { cycle, seq, slot } => {
                write!(f, "[{cycle:>8}] matrix+  seq={seq} slot={slot}")
            }
            TraceEvent::MatrixClear { cycle, seq, slot } => {
                write!(f, "[{cycle:>8}] matrix-  seq={seq} slot={slot}")
            }
            TraceEvent::FenceHold { cycle, seq } => {
                write!(f, "[{cycle:>8}] fence    seq={seq} held")
            }
            TraceEvent::Complete { cycle, seq } => {
                write!(f, "[{cycle:>8}] complete seq={seq}")
            }
            TraceEvent::Commit { cycle, seq, pc } => {
                write!(f, "[{cycle:>8}] commit   seq={seq} pc={pc:#x}")
            }
            TraceEvent::Squash {
                cycle,
                keep_seq,
                redirect_pc,
                cause,
            } => {
                write!(
                    f,
                    "[{cycle:>8}] SQUASH   cause={cause} keep<={keep_seq} redirect={redirect_pc:#x}"
                )
            }
            TraceEvent::FastForward { cycle, skipped } => {
                write!(f, "[{cycle:>8}] fastfwd  skipped={skipped}")
            }
            TraceEvent::Leak {
                cycle,
                seq,
                channel,
                addr,
                survived_squash,
            } => {
                let fate = if *survived_squash {
                    " survived-squash"
                } else {
                    ""
                };
                write!(
                    f,
                    "[{cycle:>8}] LEAK     seq={seq} channel={channel} addr={addr:#x}{fate}"
                )
            }
        }
    }
}

/// A bounded event buffer: when full, the oldest events are dropped.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the buffer (keeps the capacity).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl fmt::Display for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "... ({} earlier events dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_in_order() {
        let mut t = TraceBuffer::new(4);
        for seq in 0..3 {
            t.push(TraceEvent::Complete { cycle: seq, seq });
        }
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut t = TraceBuffer::new(2);
        for seq in 0..5 {
            t.push(TraceEvent::Commit {
                cycle: seq,
                seq,
                pc: 0,
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let seqs: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Commit { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::Issue {
            cycle: 7,
            seq: 3,
            suspect: true,
        };
        assert!(e.to_string().contains("SUSPECT"));
        let e = TraceEvent::Squash {
            cycle: 9,
            keep_seq: 2,
            redirect_pc: 0x40,
            cause: SquashCause::Mispredict,
        };
        assert!(e.to_string().contains("0x40"));
        assert!(e.to_string().contains("mispredict"));
        let mut t = TraceBuffer::new(1);
        t.push(e);
        t.push(e);
        assert!(t.to_string().contains("dropped"));
    }

    #[test]
    fn block_event_carries_decision_context() {
        let e = TraceEvent::Block {
            cycle: 12,
            seq: 4,
            filter: BlockFilter::SPattern,
            vaddr: 0x8000_0040,
            page: 0x8000,
        };
        let s = e.to_string();
        assert!(s.contains("s-pattern"), "filter label in {s}");
        assert!(s.contains("0x80000040"), "effective address in {s}");
        assert!(s.contains("0x8000"), "page in {s}");
        assert_eq!(e.category(), "memory");
    }

    #[test]
    fn new_event_kinds_format_and_categorize() {
        let probe = TraceEvent::TpbufProbe {
            cycle: 5,
            seq: 9,
            page: 0x42,
            matched: false,
        };
        assert!(probe.to_string().contains("mismatch"));
        assert_eq!(probe.category(), "memory");

        let set = TraceEvent::MatrixSet {
            cycle: 1,
            seq: 2,
            slot: 3,
        };
        let clear = TraceEvent::MatrixClear {
            cycle: 2,
            seq: 2,
            slot: 3,
        };
        assert!(set.to_string().contains("matrix+"));
        assert!(clear.to_string().contains("matrix-"));
        assert_eq!(set.category(), "security");
        assert_eq!(clear.category(), "security");

        let hold = TraceEvent::FenceHold { cycle: 3, seq: 7 };
        assert!(hold.to_string().contains("held"));
        assert_eq!(hold.category(), "security");

        let ff = TraceEvent::FastForward {
            cycle: 100,
            skipped: 40,
        };
        assert!(ff.to_string().contains("skipped=40"));
        assert_eq!(ff.category(), "scheduler");
        assert_eq!(ff.cycle(), 100);
    }

    #[test]
    fn leak_event_formats_and_categorizes() {
        let survived = TraceEvent::Leak {
            cycle: 77,
            seq: 12,
            channel: LeakChannel::CacheFill,
            addr: 0x102a000,
            survived_squash: true,
        };
        let s = survived.to_string();
        assert!(s.contains("LEAK"), "{s}");
        assert!(s.contains("cache-fill"), "{s}");
        assert!(s.contains("0x102a000"), "{s}");
        assert!(s.contains("survived-squash"), "{s}");
        assert_eq!(survived.category(), "leak");
        assert_eq!(survived.cycle(), 77);

        let committed = TraceEvent::Leak {
            cycle: 5,
            seq: 3,
            channel: LeakChannel::TlbFill,
            addr: 0x1000,
            survived_squash: false,
        };
        assert!(!committed.to_string().contains("survived-squash"));
        assert!(committed.to_string().contains("tlb-fill"));
    }

    #[test]
    fn leak_channel_keys_are_stable_and_unique() {
        let keys: std::collections::HashSet<&str> =
            LeakChannel::ALL.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), 4);
        assert!(LeakChannel::CacheFill.is_cache());
        assert!(LeakChannel::CacheLru.is_cache());
        assert!(!LeakChannel::TlbFill.is_cache());
        assert!(!LeakChannel::TpbufInsert.is_cache());
    }

    #[test]
    fn clear_resets() {
        let mut t = TraceBuffer::new(2);
        t.push(TraceEvent::Complete { cycle: 1, seq: 1 });
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}

//! Optional pipeline event tracing.
//!
//! Tracing is off by default (zero cost beyond a branch per event site);
//! [`crate::Core::enable_trace`] turns it on with a bounded buffer, after
//! which every significant pipeline event is recorded and can be
//! inspected or printed. Intended for debugging gadgets, workloads and
//! the defense itself — e.g. watching exactly which speculative load gets
//! blocked and when it replays.

use std::collections::VecDeque;
use std::fmt;

/// One recorded pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction entered the ROB/IQ.
    Dispatch {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// The instruction's PC.
        pc: u64,
    },
    /// An instruction was selected for issue.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// Whether it carried the suspect speculation flag.
        suspect: bool,
    },
    /// A hazard filter blocked a memory access.
    Block {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
    },
    /// An instruction's result became available.
    Complete {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
    },
    /// An instruction retired.
    Commit {
        /// Cycle of the event.
        cycle: u64,
        /// Global sequence number.
        seq: u64,
        /// The instruction's PC.
        pc: u64,
    },
    /// Speculation was squashed.
    Squash {
        /// Cycle of the event.
        cycle: u64,
        /// Youngest surviving sequence number.
        keep_seq: u64,
        /// Where fetch was redirected.
        redirect_pc: u64,
    },
}

impl TraceEvent {
    /// The cycle the event happened.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Dispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Block { cycle, .. }
            | TraceEvent::Complete { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Squash { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Dispatch { cycle, seq, pc } => {
                write!(f, "[{cycle:>8}] dispatch seq={seq} pc={pc:#x}")
            }
            TraceEvent::Issue {
                cycle,
                seq,
                suspect,
            } => {
                let flag = if *suspect { " SUSPECT" } else { "" };
                write!(f, "[{cycle:>8}] issue    seq={seq}{flag}")
            }
            TraceEvent::Block { cycle, seq } => {
                write!(f, "[{cycle:>8}] BLOCK    seq={seq}")
            }
            TraceEvent::Complete { cycle, seq } => {
                write!(f, "[{cycle:>8}] complete seq={seq}")
            }
            TraceEvent::Commit { cycle, seq, pc } => {
                write!(f, "[{cycle:>8}] commit   seq={seq} pc={pc:#x}")
            }
            TraceEvent::Squash {
                cycle,
                keep_seq,
                redirect_pc,
            } => {
                write!(
                    f,
                    "[{cycle:>8}] SQUASH   keep<={keep_seq} redirect={redirect_pc:#x}"
                )
            }
        }
    }
}

/// A bounded event buffer: when full, the oldest events are dropped.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the buffer (keeps the capacity).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl fmt::Display for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "... ({} earlier events dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_in_order() {
        let mut t = TraceBuffer::new(4);
        for seq in 0..3 {
            t.push(TraceEvent::Complete { cycle: seq, seq });
        }
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut t = TraceBuffer::new(2);
        for seq in 0..5 {
            t.push(TraceEvent::Commit {
                cycle: seq,
                seq,
                pc: 0,
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let seqs: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Commit { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::Issue {
            cycle: 7,
            seq: 3,
            suspect: true,
        };
        assert!(e.to_string().contains("SUSPECT"));
        let e = TraceEvent::Squash {
            cycle: 9,
            keep_seq: 2,
            redirect_pc: 0x40,
        };
        assert!(e.to_string().contains("0x40"));
        let mut t = TraceBuffer::new(1);
        t.push(e);
        t.push(e);
        assert!(t.to_string().contains("dropped"));
    }

    #[test]
    fn clear_resets() {
        let mut t = TraceBuffer::new(2);
        t.push(TraceEvent::Complete { cycle: 1, seq: 1 });
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}

#![warn(missing_docs)]

//! A cycle-level out-of-order processor model with genuine wrong-path
//! execution — the substrate the Conditional Speculation defense (HPCA
//! 2019) plugs into.
//!
//! The crate provides:
//!
//! * [`Core`] — fetch/rename/issue/execute/commit engine with ROB, issue
//!   queue, load/store queues, register renaming and squash recovery;
//! * [`CoreConfig`] — pipeline geometry (Table III's core by default);
//! * [`policy::SecurityPolicy`] — the extension point where the
//!   `condspec` crate installs the security dependence matrix, Cache-hit
//!   filter and TPBuf;
//! * building blocks ([`iq`], [`lsq`], [`rob`], [`regfile`]) that are unit
//!   tested independently.
//!
//! # Examples
//!
//! ```
//! use condspec_pipeline::Core;
//! use condspec_isa::{ProgramBuilder, Reg, AluOp, BranchCond};
//!
//! # fn main() -> Result<(), condspec_isa::BuildError> {
//! let mut core = Core::with_defaults();
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(Reg::R1, 0);
//! b.li(Reg::R2, 100);
//! b.label("loop")?;
//! b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
//! b.branch_to(BranchCond::LtU, Reg::R1, Reg::R2, "loop");
//! b.halt();
//! core.load_program(std::sync::Arc::new(b.build()?));
//! let result = core.run(100_000);
//! assert_eq!(core.read_arch_reg(Reg::R1), 100);
//! println!("IPC = {:.2}", core.stats().ipc());
//! # Ok(())
//! # }
//! ```

pub(crate) mod bits;
pub mod core;
pub mod events;
pub mod iq;
pub mod lsq;
pub mod perfetto;
pub mod policy;
pub mod regfile;
pub mod rob;
pub mod sampler;
pub mod snapshot;
pub mod stats;
pub mod taint;
pub mod trace;

pub use crate::core::{Core, CoreConfig, ExitReason, FunctionalExit, FunctionalResult, RunResult};
pub use policy::{
    BlockFilter, DispatchInfo, InstClass, IqEntryView, MemAccessQuery, MemDecision, NullPolicy,
    PolicyStats, SecurityPolicy,
};
pub use sampler::{SampleRow, TimeSeriesSampler, TIMESERIES_SCHEMA};
pub use snapshot::CoreSnapshot;
pub use stats::PipelineStats;
pub use taint::{LeakReport, TaintConfig, TaintOracle};
pub use trace::{LeakChannel, SquashCause, TraceBuffer, TraceEvent};

//! Reorder buffer, stored structure-of-arrays.
//!
//! Every in-flight instruction is split across two parallel ring arrays:
//! a packed **hot** record ([`RobHot`]: sequence/stamp, pipeline state,
//! renaming, source physical registers, IQ slot, commit class and flag
//! bits) that commit, issue, writeback and squash touch every cycle, and
//! a **cold** record ([`RobCold`]: the decoded instruction, predicted and
//! resolved next-PC, store data, memory addresses and the boxed RAS
//! snapshot) touched only at dispatch, execute/resolve and the rare
//! commit classes that need it. Alongside the arrays the ROB maintains
//! per-state u64 bitmap words (`completed`, `issued`) indexed by physical
//! ring slot, so the hot questions — "may the head commit?", "have all
//! entries older than this fence completed?" — are single bit tests and
//! word-wise mask checks instead of per-entry field loads.
//!
//! [`RobHot::state`] is private and every state transition goes through a
//! [`Rob`] method ([`Rob::mark_issued`], [`Rob::mark_completed`],
//! [`Rob::mark_dispatched`]), which is what keeps the bitmaps coherent
//! with the per-entry state by construction; [`Rob::check_bitmaps`]
//! verifies the correspondence for the invariant tests.

use crate::regfile::PhysReg;
use condspec_frontend::ras::RasSnapshot;
use condspec_isa::{Inst, Reg};

/// Progress of one in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// In the Issue Queue (or blocked there), not yet issued.
    Dispatched,
    /// Issued; executing or waiting for a memory completion.
    Issued,
    /// Result produced; eligible to commit.
    Completed,
}

/// What commit must do for an instruction, precomputed at dispatch so the
/// common case ([`CommitClass::Simple`]) never reads the cold array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitClass {
    /// ALU ops, immediates, nops, fences: commit only pops the entry.
    Simple,
    /// Direct jumps, calls and returns: counted as committed branches.
    Control,
    /// Conditional branch: trains the direction predictor at commit.
    Branch,
    /// Indirect jump: trains the BTB at commit.
    JumpIndirect,
    /// Load: LSQ release plus deferred-LRU touch.
    Load,
    /// Store: the architectural memory + cache write happens at commit.
    Store,
    /// Cache-line flush takes effect at commit.
    Flush,
    /// Stops the simulation when it retires.
    Halt,
}

impl CommitClass {
    /// Classifies an instruction at dispatch.
    pub fn of(inst: &Inst) -> Self {
        match inst {
            Inst::Load { .. } => CommitClass::Load,
            Inst::Store { .. } => CommitClass::Store,
            Inst::Branch { .. } => CommitClass::Branch,
            Inst::JumpIndirect { .. } => CommitClass::JumpIndirect,
            Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret { .. } => CommitClass::Control,
            Inst::Flush { .. } => CommitClass::Flush,
            Inst::Halt => CommitClass::Halt,
            Inst::Alu { .. }
            | Inst::AluImm { .. }
            | Inst::LoadImm { .. }
            | Inst::Fence
            | Inst::Nop => CommitClass::Simple,
        }
    }
}

/// The per-cycle face of an in-flight instruction: everything commit,
/// issue, writeback and squash read or write, packed into one copyable
/// record so a stage touches a single cache line per instruction.
#[derive(Debug, Clone, Copy)]
pub struct RobHot {
    /// Global sequence number (program order). Recycled: after a squash
    /// the next dispatch reuses the squashed numbers so resident entries
    /// stay contiguous.
    pub seq: u64,
    /// Monotone dispatch stamp, never reused (unlike `seq`). Completion
    /// events carry it so delivery can distinguish this instruction from
    /// a later reincarnation of its sequence number (lazy invalidation of
    /// events belonging to squashed instructions).
    pub stamp: u64,
    /// The instruction's PC.
    pub pc: u64,
    /// Renaming record: `(arch dest, new phys, previous phys)`.
    pub dest: Option<(Reg, PhysReg, PhysReg)>,
    /// Source operands' physical registers, in the instruction's
    /// positional operand order (unlike [`Inst::sources`], `r0` operands
    /// are represented — they map to the always-ready physical register 0).
    pub src_pregs: [Option<PhysReg>; 2],
    /// The IQ slot while the instruction is queue-resident.
    pub iq_slot: Option<u16>,
    /// What commit must do for this instruction.
    pub class: CommitClass,
    /// Pipeline progress. Private: transitions go through the [`Rob`]
    /// methods so the state bitmaps stay coherent.
    state: RobState,
    /// Whether this is a resolution-redirecting control instruction
    /// (conditional branch, indirect jump or return) — drives the
    /// unresolved-branch counters. Not derivable from `class`: returns
    /// share [`CommitClass::Control`] with jumps and calls.
    pub is_branch: bool,
    /// Whether this is a speculation fence. Not derivable from `class`:
    /// fences commit as [`CommitClass::Simple`].
    is_fence: bool,
    /// Suspect-speculation flag the instruction carried when it issued.
    pub suspect: bool,
    /// Whether a filter ever blocked this instruction.
    pub was_blocked: bool,
    /// A deferred L1D replacement update to apply at commit (§VII.A
    /// *delayed update* policy).
    pub deferred_lru: bool,
    /// Whether this control instruction mispredicted (set at execute).
    pub mispredicted: bool,
}

impl RobHot {
    fn new(seq: u64, pc: u64, inst: &Inst) -> Self {
        RobHot {
            seq,
            stamp: 0,
            pc,
            dest: None,
            src_pregs: [None, None],
            iq_slot: None,
            class: CommitClass::of(inst),
            state: RobState::Dispatched,
            is_branch: inst.is_branch(),
            is_fence: inst.is_fence(),
            suspect: false,
            was_blocked: false,
            deferred_lru: false,
            mispredicted: false,
        }
    }

    /// Pipeline progress.
    pub fn state(&self) -> RobState {
        self.state
    }

    /// Whether the instruction is a load.
    pub fn is_load(&self) -> bool {
        self.class == CommitClass::Load
    }

    /// Whether the instruction is a speculation fence.
    pub fn is_fence(&self) -> bool {
        self.is_fence
    }
}

/// Dispatch/resolve-time fields, read at most once or twice over an
/// instruction's lifetime and kept out of the per-cycle scan path.
#[derive(Debug, Clone)]
pub struct RobCold {
    /// The instruction itself.
    pub inst: Inst,
    /// The next PC fetch predicted after this instruction.
    pub predicted_next: u64,
    /// The architecturally correct next PC, known at execute.
    pub actual_next: Option<u64>,
    /// Resolved direction for conditional branches.
    pub branch_taken: Option<bool>,
    /// Store data value, captured at store execute for the commit-time
    /// memory write.
    pub store_data: Option<u64>,
    /// Virtual address of a memory access (set at execute).
    pub mem_vaddr: Option<u64>,
    /// Physical address of a memory access (set at execute).
    pub mem_paddr: Option<u64>,
    /// RAS state captured at fetch (control instructions only), restored
    /// on squash. Boxed: entries are copied at dispatch, commit and
    /// squash for *every* instruction, and an inline snapshot would more
    /// than double the record's size for a field most instructions never
    /// set.
    pub ras_snapshot: Option<Box<RasSnapshot>>,
}

impl Default for RobCold {
    fn default() -> Self {
        RobCold {
            inst: Inst::Nop,
            predicted_next: 0,
            actual_next: None,
            branch_taken: None,
            store_data: None,
            mem_vaddr: None,
            mem_paddr: None,
            ras_snapshot: None,
        }
    }
}

impl RobCold {
    fn reset_for(&mut self, inst: Inst, predicted_next: u64) {
        debug_assert!(self.ras_snapshot.is_none(), "RAS box leaked into a push");
        self.inst = inst;
        self.predicted_next = predicted_next;
        self.actual_next = None;
        self.branch_taken = None;
        self.store_data = None;
        self.mem_vaddr = None;
        self.mem_paddr = None;
    }
}

#[inline]
fn set_bit(words: &mut [u64], slot: usize) {
    words[slot >> 6] |= 1u64 << (slot & 63);
}

#[inline]
fn clear_bit(words: &mut [u64], slot: usize) {
    words[slot >> 6] &= !(1u64 << (slot & 63));
}

#[inline]
fn test_bit(words: &[u64], slot: usize) -> bool {
    words[slot >> 6] >> (slot & 63) & 1 != 0
}

/// The reorder buffer: a bounded ring of in-flight instructions stored
/// hot/cold structure-of-arrays, with O(1) lookup by sequence number
/// (sequence numbers of resident entries are always contiguous — dispatch
/// appends, commit pops the head, squash removes a suffix) and per-state
/// bitmap words over the physical ring slots.
#[derive(Debug, Clone, Default)]
pub struct Rob {
    hot: Vec<RobHot>,
    cold: Vec<RobCold>,
    /// Bit set iff the slot holds an entry in [`RobState::Completed`].
    completed: Vec<u64>,
    /// Bit set iff the slot holds an entry in [`RobState::Issued`].
    issued: Vec<u64>,
    head: usize,
    len: usize,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be nonzero");
        let words = capacity.div_ceil(64);
        Rob {
            hot: vec![RobHot::new(0, 0, &Inst::Nop); capacity],
            cold: (0..capacity).map(|_| RobCold::default()).collect(),
            completed: vec![0; words],
            issued: vec![0; words],
            head: 0,
            len: 0,
            capacity,
        }
    }

    /// Whether the ROB has no free entries.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Physical ring slot of the entry `off` places past the head.
    #[inline]
    fn slot_at(&self, off: usize) -> usize {
        debug_assert!(off < self.capacity);
        let s = self.head + off;
        if s >= self.capacity {
            s - self.capacity
        } else {
            s
        }
    }

    #[inline]
    fn slot_of(&self, seq: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let front = self.hot[self.head].seq;
        if seq < front {
            return None;
        }
        let off = (seq - front) as usize;
        (off < self.len).then(|| self.slot_at(off))
    }

    /// Appends a freshly dispatched entry (state
    /// [`RobState::Dispatched`]) and returns its hot and cold records for
    /// the dispatcher to fill in.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or `seq` is not contiguous with the
    /// current tail.
    pub fn push(
        &mut self,
        seq: u64,
        pc: u64,
        inst: Inst,
        predicted_next: u64,
    ) -> (&mut RobHot, &mut RobCold) {
        assert!(!self.is_full(), "ROB overflow");
        if self.len > 0 {
            let back = self.hot[self.slot_at(self.len - 1)].seq;
            assert_eq!(seq, back + 1, "sequence numbers must be contiguous");
        }
        self.len += 1;
        let slot = self.slot_at(self.len - 1);
        clear_bit(&mut self.completed, slot);
        clear_bit(&mut self.issued, slot);
        self.hot[slot] = RobHot::new(seq, pc, &inst);
        self.cold[slot].reset_for(inst, predicted_next);
        (&mut self.hot[slot], &mut self.cold[slot])
    }

    /// Whether `seq` is still in flight.
    pub fn contains(&self, seq: u64) -> bool {
        self.slot_of(seq).is_some()
    }

    /// The hot record for `seq`, if in flight.
    pub fn hot(&self, seq: u64) -> Option<&RobHot> {
        self.slot_of(seq).map(|s| &self.hot[s])
    }

    /// Mutable hot record for `seq`. State is not writable through this —
    /// use [`Rob::mark_issued`] / [`Rob::mark_completed`] /
    /// [`Rob::mark_dispatched`].
    pub fn hot_mut(&mut self, seq: u64) -> Option<&mut RobHot> {
        self.slot_of(seq).map(move |s| &mut self.hot[s])
    }

    /// The cold record for `seq`, if in flight.
    pub fn cold(&self, seq: u64) -> Option<&RobCold> {
        self.slot_of(seq).map(|s| &self.cold[s])
    }

    /// Mutable cold record for `seq`.
    pub fn cold_mut(&mut self, seq: u64) -> Option<&mut RobCold> {
        self.slot_of(seq).map(move |s| &mut self.cold[s])
    }

    /// The oldest in-flight entry's hot record.
    pub fn head_hot(&self) -> Option<&RobHot> {
        (self.len > 0).then(|| &self.hot[self.head])
    }

    /// The oldest in-flight entry's cold record.
    pub fn head_cold(&self) -> Option<&RobCold> {
        (self.len > 0).then(|| &self.cold[self.head])
    }

    /// Whether the head entry exists and has completed — the commit
    /// stage's question, answered by one bitmap bit test.
    #[inline]
    pub fn head_completed(&self) -> bool {
        self.len > 0 && test_bit(&self.completed, self.head)
    }

    /// Removes the oldest entry (commit), returning its hot record by
    /// value and recycling its RAS-snapshot box into `pool`. Cold fields
    /// must be read *before* the pop (see [`Rob::head_cold`]).
    pub fn pop_head_recycle(&mut self, pool: &mut Vec<Box<RasSnapshot>>) -> Option<RobHot> {
        if self.len == 0 {
            return None;
        }
        let slot = self.head;
        let hot = self.hot[slot];
        if let Some(snap) = self.cold[slot].ras_snapshot.take() {
            pool.push(snap);
        }
        clear_bit(&mut self.completed, slot);
        clear_bit(&mut self.issued, slot);
        self.head = if slot + 1 == self.capacity {
            0
        } else {
            slot + 1
        };
        self.len -= 1;
        Some(hot)
    }

    /// Transition `seq` to [`RobState::Issued`].
    pub fn mark_issued(&mut self, seq: u64) {
        let slot = self.slot_of(seq).expect("in flight");
        debug_assert_eq!(self.hot[slot].state, RobState::Dispatched);
        self.hot[slot].state = RobState::Issued;
        set_bit(&mut self.issued, slot);
    }

    /// Transition `seq` back to [`RobState::Dispatched`] (a filter bounce
    /// returns the instruction to the IQ un-issued).
    pub fn mark_dispatched(&mut self, seq: u64) {
        let slot = self.slot_of(seq).expect("in flight");
        debug_assert_ne!(self.hot[slot].state, RobState::Completed);
        self.hot[slot].state = RobState::Dispatched;
        clear_bit(&mut self.issued, slot);
    }

    /// Transition `seq` to [`RobState::Completed`] (from either earlier
    /// state: fences and address-resolved stores complete straight out of
    /// issue).
    pub fn mark_completed(&mut self, seq: u64) {
        let slot = self.slot_of(seq).expect("in flight");
        self.hot[slot].state = RobState::Completed;
        clear_bit(&mut self.issued, slot);
        set_bit(&mut self.completed, slot);
    }

    /// Removes every entry younger than `keep_seq`, youngest first (the
    /// order walk-back rename recovery requires), invoking `f` with each
    /// removed entry's hot record (by value) and cold record. The closure
    /// must take the cold record's RAS-snapshot box (restore or recycle
    /// it) — leaving one behind would leak it into the slot's next
    /// occupant. Returns the number of squashed entries.
    pub fn squash_after_with(
        &mut self,
        keep_seq: u64,
        mut f: impl FnMut(RobHot, &mut RobCold),
    ) -> u64 {
        let mut squashed = 0;
        while self.len > 0 {
            let slot = self.slot_at(self.len - 1);
            if self.hot[slot].seq <= keep_seq {
                break;
            }
            let hot = self.hot[slot];
            clear_bit(&mut self.completed, slot);
            clear_bit(&mut self.issued, slot);
            self.len -= 1;
            f(hot, &mut self.cold[slot]);
            debug_assert!(
                self.cold[slot].ras_snapshot.is_none(),
                "squash closure must take the RAS box"
            );
            squashed += 1;
        }
        squashed
    }

    /// Discards every in-flight entry, recycling RAS-snapshot boxes into
    /// `pool` and keeping the backing storage.
    pub fn clear_recycle(&mut self, pool: &mut Vec<Box<RasSnapshot>>) {
        while self.pop_head_recycle(pool).is_some() {}
        self.head = 0;
    }

    /// Iterates over in-flight hot records oldest-first.
    pub fn iter_hot(&self) -> impl Iterator<Item = &RobHot> {
        (0..self.len).map(move |off| &self.hot[self.slot_at(off)])
    }

    /// Whether every entry older than `seq` has completed (used by fence
    /// issue gating). Answered word-wise on the completed bitmap: the
    /// occupied slot range `[head, slot_of(seq))` is split at the ring
    /// wrap point and each contiguous piece is checked a u64 at a time.
    pub fn all_older_completed(&self, seq: u64) -> bool {
        if self.len == 0 {
            return true;
        }
        let front = self.hot[self.head].seq;
        if seq <= front {
            return true;
        }
        let older = ((seq - front) as usize).min(self.len);
        let end = self.head + older;
        if end <= self.capacity {
            self.range_completed(self.head, end)
        } else {
            self.range_completed(self.head, self.capacity)
                && self.range_completed(0, end - self.capacity)
        }
    }

    /// Whether every slot in the non-wrapping range `[start, end)` has
    /// its completed bit set.
    fn range_completed(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return true;
        }
        let first_word = start >> 6;
        let last_word = (end - 1) >> 6;
        for w in first_word..=last_word {
            let lo = if w == first_word { start & 63 } else { 0 };
            let hi = if w == last_word { (end - 1) & 63 } else { 63 };
            let mask = (u64::MAX >> (63 - hi)) & (u64::MAX << lo);
            if self.completed[w] & mask != mask {
                return false;
            }
        }
        true
    }

    /// Verifies that the state bitmaps agree with the per-entry states
    /// and that no bit is set for an unoccupied slot. For the invariant
    /// tests; the simulation loop never calls this.
    pub fn check_bitmaps(&self) -> Result<(), String> {
        let mut occupied = vec![false; self.capacity];
        for off in 0..self.len {
            let slot = self.slot_at(off);
            occupied[slot] = true;
            let state = self.hot[slot].state;
            let (want_completed, want_issued) = match state {
                RobState::Completed => (true, false),
                RobState::Issued => (false, true),
                RobState::Dispatched => (false, false),
            };
            if test_bit(&self.completed, slot) != want_completed
                || test_bit(&self.issued, slot) != want_issued
            {
                return Err(format!(
                    "slot {slot} (seq {}) state {state:?} disagrees with bitmaps",
                    self.hot[slot].seq
                ));
            }
        }
        for (slot, occ) in occupied.iter().enumerate() {
            if !occ && (test_bit(&self.completed, slot) || test_bit(&self.issued, slot)) {
                return Err(format!("free slot {slot} has a stale bitmap bit"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(rob: &mut Rob, seq: u64) {
        rob.push(seq, 0x100 + 4 * seq, Inst::Nop, 0x104 + 4 * seq);
    }

    #[test]
    fn push_and_lookup() {
        let mut rob = Rob::new(8);
        push(&mut rob, 10);
        push(&mut rob, 11);
        assert!(rob.contains(10));
        assert!(rob.contains(11));
        assert!(!rob.contains(9));
        assert!(!rob.contains(12));
        assert_eq!(rob.hot(11).unwrap().pc, 0x100 + 44);
    }

    #[test]
    fn head_pop_in_order() {
        let mut rob = Rob::new(4);
        let mut pool = Vec::new();
        push(&mut rob, 0);
        push(&mut rob, 1);
        assert_eq!(rob.head_hot().unwrap().seq, 0);
        assert_eq!(rob.pop_head_recycle(&mut pool).unwrap().seq, 0);
        assert_eq!(rob.head_hot().unwrap().seq, 1);
    }

    #[test]
    fn ring_wraps_and_stays_coherent() {
        // Capacity 3 forces the ring to wrap quickly; every state must
        // stay consistent across many laps.
        let mut rob = Rob::new(3);
        let mut pool = Vec::new();
        for seq in 0..20u64 {
            push(&mut rob, seq);
            rob.mark_issued(seq);
            rob.mark_completed(seq);
            if rob.is_full() {
                assert!(rob.head_completed());
                rob.pop_head_recycle(&mut pool);
            }
            rob.check_bitmaps().unwrap();
        }
    }

    #[test]
    fn squash_after_removes_suffix_youngest_first() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            push(&mut rob, s);
        }
        let mut seqs = Vec::new();
        let n = rob.squash_after_with(2, |hot, _| seqs.push(hot.seq));
        assert_eq!(n, 2);
        assert_eq!(seqs, vec![4, 3]);
        assert_eq!(rob.len(), 3);
        assert!(rob.contains(2));
        assert!(!rob.contains(3));
        rob.check_bitmaps().unwrap();
    }

    #[test]
    fn squash_all_younger_than_head_is_noop() {
        let mut rob = Rob::new(4);
        push(&mut rob, 5);
        assert_eq!(rob.squash_after_with(5, |_, _| {}), 0);
        assert_eq!(rob.squash_after_with(7, |_, _| {}), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        push(&mut rob, 0);
        push(&mut rob, 1);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_seq_panics() {
        let mut rob = Rob::new(4);
        push(&mut rob, 0);
        push(&mut rob, 2);
    }

    #[test]
    fn all_older_completed_gating() {
        let mut rob = Rob::new(4);
        push(&mut rob, 0);
        push(&mut rob, 1);
        push(&mut rob, 2);
        assert!(!rob.all_older_completed(2));
        rob.mark_completed(0);
        rob.mark_completed(1);
        assert!(rob.all_older_completed(2));
        assert!(rob.all_older_completed(0), "vacuously true for the head");
    }

    #[test]
    fn all_older_completed_across_word_and_wrap_boundaries() {
        // Capacity 100 spans two bitmap words; drive the head deep into
        // the ring so the queried range wraps.
        let mut rob = Rob::new(100);
        let mut pool = Vec::new();
        for seq in 0..90u64 {
            push(&mut rob, seq);
            rob.mark_completed(seq);
            rob.pop_head_recycle(&mut pool);
        }
        // head is now at physical slot 90; fill across the wrap.
        for seq in 90..170u64 {
            push(&mut rob, seq);
        }
        // Complete everything older than 169 except a hole at 130.
        for seq in (90..169u64).filter(|s| *s != 130) {
            rob.mark_completed(seq);
        }
        assert!(!rob.all_older_completed(169), "hole at 130 blocks the scan");
        assert!(rob.all_older_completed(130), "everything before the hole");
        rob.mark_completed(130);
        assert!(rob.all_older_completed(169), "range wraps the ring");
        assert!(!rob.all_older_completed(170), "tail itself not completed");
        rob.check_bitmaps().unwrap();
    }

    #[test]
    fn state_transitions_keep_bitmaps_coherent() {
        let mut rob = Rob::new(4);
        push(&mut rob, 0);
        assert_eq!(rob.hot(0).unwrap().state(), RobState::Dispatched);
        assert!(!rob.head_completed());
        rob.mark_issued(0);
        assert_eq!(rob.hot(0).unwrap().state(), RobState::Issued);
        rob.mark_dispatched(0); // filter bounce
        assert_eq!(rob.hot(0).unwrap().state(), RobState::Dispatched);
        rob.mark_issued(0);
        rob.mark_completed(0);
        assert!(rob.head_completed());
        rob.check_bitmaps().unwrap();
    }

    #[test]
    fn hot_mut_updates() {
        let mut rob = Rob::new(2);
        push(&mut rob, 0);
        rob.hot_mut(0).unwrap().suspect = true;
        assert!(rob.hot(0).unwrap().suspect);
    }
}

//! Reorder buffer.

use crate::regfile::PhysReg;
use condspec_frontend::ras::RasSnapshot;
use condspec_isa::{Inst, Reg};
use std::collections::VecDeque;

/// Progress of one in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// In the Issue Queue (or blocked there), not yet issued.
    Dispatched,
    /// Issued; executing or waiting for a memory completion.
    Issued,
    /// Result produced; eligible to commit.
    Completed,
}

/// One reorder-buffer entry. Fields are populated as the instruction flows
/// through the pipeline.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global sequence number (program order). Recycled: after a squash
    /// the next dispatch reuses the squashed numbers so resident entries
    /// stay contiguous.
    pub seq: u64,
    /// Monotone dispatch stamp, never reused (unlike `seq`). Completion
    /// events carry it so delivery can distinguish this instruction from
    /// a later reincarnation of its sequence number (lazy invalidation of
    /// events belonging to squashed instructions).
    pub stamp: u64,
    /// The instruction's PC.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Renaming record: `(arch dest, new phys, previous phys)`.
    pub dest: Option<(Reg, PhysReg, PhysReg)>,
    /// Source operands' physical registers, in the instruction's
    /// positional operand order (unlike [`Inst::sources`], `r0` operands
    /// are represented — they map to the always-ready physical register 0).
    pub src_pregs: [Option<PhysReg>; 2],
    /// Store data value, captured at store execute for the commit-time
    /// memory write.
    pub store_data: Option<u64>,
    /// Pipeline progress.
    pub state: RobState,
    /// The IQ slot while the instruction is queue-resident.
    pub iq_slot: Option<usize>,
    /// The next PC fetch predicted after this instruction.
    pub predicted_next: u64,
    /// The architecturally correct next PC, known at execute.
    pub actual_next: Option<u64>,
    /// Whether this control instruction mispredicted (set at execute).
    pub mispredicted: bool,
    /// Resolved direction for conditional branches.
    pub branch_taken: Option<bool>,
    /// Virtual address of a memory access (set at execute).
    pub mem_vaddr: Option<u64>,
    /// Physical address of a memory access (set at execute).
    pub mem_paddr: Option<u64>,
    /// Suspect-speculation flag the instruction carried when it issued.
    pub suspect: bool,
    /// Whether a filter ever blocked this instruction.
    pub was_blocked: bool,
    /// A deferred L1D replacement update to apply at commit (§VII.A
    /// *delayed update* policy).
    pub deferred_lru: bool,
    /// RAS state captured at fetch (control instructions only), restored
    /// on squash. Boxed: entries are copied at dispatch, commit and
    /// squash for *every* instruction, and an inline snapshot would more
    /// than double the entry's size for a field most instructions never
    /// set.
    pub ras_snapshot: Option<Box<RasSnapshot>>,
}

impl RobEntry {
    /// Creates a freshly dispatched entry.
    pub fn new(seq: u64, pc: u64, inst: Inst, predicted_next: u64) -> Self {
        RobEntry {
            seq,
            stamp: 0,
            pc,
            inst,
            dest: None,
            src_pregs: [None, None],
            store_data: None,
            state: RobState::Dispatched,
            iq_slot: None,
            predicted_next,
            actual_next: None,
            mispredicted: false,
            branch_taken: None,
            mem_vaddr: None,
            mem_paddr: None,
            suspect: false,
            was_blocked: false,
            deferred_lru: false,
            ras_snapshot: None,
        }
    }
}

/// The reorder buffer: a bounded FIFO of in-flight instructions with O(1)
/// lookup by sequence number (sequence numbers of resident entries are
/// always contiguous — dispatch appends, commit pops the head, squash
/// removes a suffix).
#[derive(Debug, Clone, Default)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be nonzero");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Whether the ROB has no free entries.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a dispatched entry.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or `entry.seq` is not contiguous with the
    /// current tail.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "ROB overflow");
        if let Some(back) = self.entries.back() {
            assert_eq!(
                entry.seq,
                back.seq + 1,
                "sequence numbers must be contiguous"
            );
        }
        self.entries.push_back(entry);
    }

    fn index_of(&self, seq: u64) -> Option<usize> {
        let front = self.entries.front()?.seq;
        if seq < front {
            return None;
        }
        let idx = (seq - front) as usize;
        (idx < self.entries.len()).then_some(idx)
    }

    /// Whether `seq` is still in flight.
    pub fn contains(&self, seq: u64) -> bool {
        self.index_of(seq).is_some()
    }

    /// The entry for `seq`, if in flight.
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable access to the entry for `seq`.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        self.index_of(seq).map(move |i| &mut self.entries[i])
    }

    /// The oldest in-flight entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Removes every entry younger than `seq`, returning them
    /// youngest-first (the order walk-back rename recovery requires).
    pub fn squash_after(&mut self, seq: u64) -> Vec<RobEntry> {
        let mut squashed = Vec::new();
        self.squash_after_into(seq, &mut squashed);
        squashed
    }

    /// Like [`Rob::squash_after`], but clears `out` and fills it in place
    /// so callers can reuse one buffer across squashes.
    pub fn squash_after_into(&mut self, seq: u64, out: &mut Vec<RobEntry>) {
        out.clear();
        while matches!(self.entries.back(), Some(e) if e.seq > seq) {
            out.push(self.entries.pop_back().expect("checked non-empty"));
        }
    }

    /// Discards every in-flight entry, keeping the backing storage.
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Iterates over in-flight entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Whether every entry older than `seq` has completed (used by fence
    /// issue gating).
    pub fn all_older_completed(&self, seq: u64) -> bool {
        self.entries
            .iter()
            .take_while(|e| e.seq < seq)
            .all(|e| e.state == RobState::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(seq, 0x100 + 4 * seq, Inst::Nop, 0x104 + 4 * seq)
    }

    #[test]
    fn push_and_lookup() {
        let mut rob = Rob::new(8);
        rob.push(entry(10));
        rob.push(entry(11));
        assert!(rob.contains(10));
        assert!(rob.contains(11));
        assert!(!rob.contains(9));
        assert!(!rob.contains(12));
        assert_eq!(rob.get(11).unwrap().pc, 0x100 + 44);
    }

    #[test]
    fn head_pop_in_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        assert_eq!(rob.head().unwrap().seq, 0);
        assert_eq!(rob.pop_head().unwrap().seq, 0);
        assert_eq!(rob.head().unwrap().seq, 1);
    }

    #[test]
    fn squash_after_removes_suffix_youngest_first() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_after(2);
        let seqs: Vec<u64> = squashed.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 3]);
        assert_eq!(rob.len(), 3);
        assert!(rob.contains(2));
        assert!(!rob.contains(3));
    }

    #[test]
    fn squash_all_younger_than_head_is_noop() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        assert!(rob.squash_after(5).is_empty());
        assert!(rob.squash_after(7).is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_seq_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(2));
    }

    #[test]
    fn all_older_completed_gating() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        rob.push(entry(2));
        assert!(!rob.all_older_completed(2));
        rob.get_mut(0).unwrap().state = RobState::Completed;
        rob.get_mut(1).unwrap().state = RobState::Completed;
        assert!(rob.all_older_completed(2));
        assert!(rob.all_older_completed(0), "vacuously true for the head");
    }

    #[test]
    fn get_mut_updates() {
        let mut rob = Rob::new(2);
        rob.push(entry(0));
        rob.get_mut(0).unwrap().suspect = true;
        assert!(rob.get(0).unwrap().suspect);
    }
}

//! Raw captured state of a quiesced [`Core`](crate::Core) — the
//! substance of a simulation checkpoint.
//!
//! A snapshot can only be taken at a *quiesced* instruction boundary:
//! no in-flight ROB/IQ/LSQ entries, an empty fetch queue and no pending
//! store data (see [`Core::is_quiesced`](crate::Core::is_quiesced)).
//! At such a boundary the machine's entire observable state collapses to
//! the fields below:
//!
//! * **Architectural**: the 32 register values (read through the rename
//!   map, which is clean at a boundary), resident memory pages, explicit
//!   page-table mappings, the next fetch PC and the halted flag.
//! * **Microarchitectural**: every cache level's valid/tag/LRU-stamp
//!   state, TLB entries, and the trained front end (direction tables,
//!   BTB, RAS).
//! * **Clocks**: the absolute cycle plus the `next_seq`/`next_stamp`
//!   dispatch counters, so a restored core continues with the exact
//!   numbering a checkpointed-and-continued core would use.
//!
//! Deliberately *not* captured:
//!
//! * **Statistics** — a detailed window resets them at its start.
//! * **Security-policy transient state** — the dependence matrix tracks
//!   only IQ-resident instructions and the TPBuf mirrors LSQ residency,
//!   so both are provably empty at a quiesced boundary.
//! * **Event-wheel contents** — only stale (stamp-mismatched) events can
//!   exist at a boundary; they are dropped at delivery and never change
//!   architectural state or statistics.

use condspec_frontend::FrontEndSnapshot;
use condspec_isa::reg::NUM_ARCH_REGS;
use condspec_mem::HierarchySnapshot;

/// A complete capture of a quiesced core, restorable into any core of
/// the same configuration via
/// [`Core::restore_snapshot`](crate::Core::restore_snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Absolute cycle at the capture point.
    pub cycle: u64,
    /// The next architectural PC (fetch target).
    pub fetch_pc: u64,
    /// The next ROB sequence number.
    pub next_seq: u64,
    /// The monotone dispatch-stamp counter.
    pub next_stamp: u64,
    /// Whether a halt has committed.
    pub halted: bool,
    /// All 32 architectural register values; index 0 is always zero.
    pub arch_regs: [u64; NUM_ARCH_REGS],
    /// Resident physical memory pages, sorted by page number.
    pub memory_pages: Vec<(u64, Vec<u8>)>,
    /// Explicit `(vpn, ppn)` page-table mappings, sorted by vpn.
    pub page_table: Vec<(u64, u64)>,
    /// TLB `(vpn, ppn, last-use tick)` entries, residency order.
    pub tlb_entries: Vec<(u64, u64, u64)>,
    /// The TLB's LRU tick counter.
    pub tlb_tick: u64,
    /// All cache levels' line state and LRU ticks.
    pub hierarchy: HierarchySnapshot,
    /// Trained predictor state (direction tables, BTB, RAS).
    pub frontend: FrontEndSnapshot,
}

impl Default for CoreSnapshot {
    fn default() -> Self {
        CoreSnapshot {
            cycle: 0,
            fetch_pc: 0,
            next_seq: 0,
            next_stamp: 0,
            halted: false,
            arch_regs: [0; NUM_ARCH_REGS],
            memory_pages: Vec::new(),
            page_table: Vec::new(),
            tlb_entries: Vec::new(),
            tlb_tick: 0,
            hierarchy: HierarchySnapshot::default(),
            frontend: FrontEndSnapshot::default(),
        }
    }
}

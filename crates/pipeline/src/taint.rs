//! Dynamic taint tracking: the speculative information-flow leak oracle.
//!
//! The oracle shadows the detailed pipeline with explicit information-flow
//! state: a taint bit per physical register and a taint bit per physical
//! memory byte. Secret ranges are declared up front via [`TaintConfig`];
//! taint then propagates through ALU results, load values (including
//! store-to-load forwarding from in-flight speculative stores) and store
//! data — critically, *also* through wrong-path instructions that are
//! later squashed, because that is exactly the flow a Spectre gadget
//! exploits.
//!
//! A **leak** is recorded whenever a tainted value influences
//! microarchitecturally *persistent* state, i.e. state a squash does not
//! roll back:
//!
//! * [`LeakChannel::CacheFill`] — a load with a tainted address misses L1D
//!   and fills a line (or a flush with a tainted address evicts one);
//! * [`LeakChannel::CacheLru`] — a tainted-address L1D hit promotes the
//!   line in the replacement order;
//! * [`LeakChannel::TlbFill`] — translating a tainted address walks the
//!   page table and installs a TLB entry;
//! * [`LeakChannel::TpbufInsert`] — a tainted address's page number is
//!   recorded in the TPBuf (the defense's own training structure).
//!
//! Each leak stays *pending* until the leaking instruction either commits
//! (`survived_squash = false`: the flow was architectural) or is squashed.
//! On a squash the cache and TLB channels resolve with
//! `survived_squash = true` — the planted state outlives the wrong path —
//! while TPBuf insertions resolve with `false` because the squash releases
//! the entry. Pending deferred-LRU updates are dropped on squash: the
//! touch they would have applied at commit never happens.
//!
//! Soundness caveats (see DESIGN.md §12): taint is byte-granular in
//! memory but whole-register in the register file, and store-to-load
//! forwarding is *conservative* — a clean forwarded store overlapping
//! tainted memory bytes does not mask their taint — so the oracle may
//! over-taint (false positives) but never under-taints along the modelled
//! channels. Channels outside the model (port contention, DRAM row
//! state) are not observed.

use crate::regfile::PhysReg;
use crate::trace::{LeakChannel, TraceEvent};
use std::collections::HashSet;

/// Declares which physical byte ranges hold secrets.
///
/// Ranges are half-open `[start, end)` *physical* addresses. Marking
/// happens when the oracle is installed and again after every program
/// load (data segments overwrite memory, clearing the taint of the bytes
/// they write, then the configured ranges are re-marked).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintConfig {
    /// Half-open `[start, end)` physical secret byte ranges.
    pub ranges: Vec<(u64, u64)>,
}

impl TaintConfig {
    /// A config tainting the `len` bytes starting at `start`.
    pub fn range(start: u64, len: u64) -> Self {
        TaintConfig {
            ranges: vec![(start, start + len)],
        }
    }
}

/// Aggregate leak counts per channel, split by squash fate.
///
/// `*_survived` counts leaks whose instruction was squashed while the
/// planted state persisted — the Spectre-relevant subset. The cache
/// channels are the paper's threat model; the TLB and TPBuf channels are
/// its admitted blind spots and are reported separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeakReport {
    /// Cache content changes (fills, flush evictions) by tainted addresses.
    pub cache_fills: u64,
    /// Cache fills whose instruction was squashed (state survived).
    pub cache_fills_survived: u64,
    /// LRU promotions by tainted-address L1D hits.
    pub cache_lru: u64,
    /// LRU promotions whose instruction was squashed.
    pub cache_lru_survived: u64,
    /// TLB entries installed while translating tainted addresses.
    pub tlb_fills: u64,
    /// TLB fills whose instruction was squashed (the entry survives).
    pub tlb_fills_survived: u64,
    /// Tainted page numbers recorded in the TPBuf.
    pub tpbuf_inserts: u64,
    /// Always zero: a squash releases the TPBuf entry, so an insertion
    /// never survives. Kept for a uniform per-channel schema.
    pub tpbuf_inserts_survived: u64,
}

impl LeakReport {
    /// Total leak events across every channel.
    pub fn total(&self) -> u64 {
        self.cache_fills + self.cache_lru + self.tlb_fills + self.tpbuf_inserts
    }

    /// Squash-surviving leaks on the *cache* channels — the paper's
    /// threat model, and what the leak matrix counts.
    pub fn cache_survived(&self) -> u64 {
        self.cache_fills_survived + self.cache_lru_survived
    }

    /// Squash-surviving leaks on the blind-spot channels (TLB, TPBuf).
    pub fn blind_spot_survived(&self) -> u64 {
        self.tlb_fills_survived + self.tpbuf_inserts_survived
    }

    /// Total and survived counts for one channel.
    pub fn channel(&self, channel: LeakChannel) -> (u64, u64) {
        match channel {
            LeakChannel::CacheFill => (self.cache_fills, self.cache_fills_survived),
            LeakChannel::CacheLru => (self.cache_lru, self.cache_lru_survived),
            LeakChannel::TlbFill => (self.tlb_fills, self.tlb_fills_survived),
            LeakChannel::TpbufInsert => (self.tpbuf_inserts, self.tpbuf_inserts_survived),
        }
    }

    fn count(&mut self, channel: LeakChannel, survived: bool) {
        let (total, surv) = match channel {
            LeakChannel::CacheFill => (&mut self.cache_fills, &mut self.cache_fills_survived),
            LeakChannel::CacheLru => (&mut self.cache_lru, &mut self.cache_lru_survived),
            LeakChannel::TlbFill => (&mut self.tlb_fills, &mut self.tlb_fills_survived),
            LeakChannel::TpbufInsert => (&mut self.tpbuf_inserts, &mut self.tpbuf_inserts_survived),
        };
        *total += 1;
        if survived {
            *surv += 1;
        }
    }
}

/// One in-flight store's taint record (address resolved at execute, data
/// possibly later).
#[derive(Debug, Clone, Copy)]
struct StoreRec {
    seq: u64,
    vaddr: u64,
    size: u64,
    data_taint: bool,
    data_known: bool,
}

/// A leak observed at execute, awaiting its instruction's fate.
#[derive(Debug, Clone, Copy)]
struct PendingLeak {
    seq: u64,
    cycle: u64,
    channel: LeakChannel,
    addr: u64,
    /// The state change only happens at commit (deferred LRU, flush):
    /// on a squash this record is dropped instead of resolved.
    applies_at_commit: bool,
}

/// The taint-tracking leak oracle. Owned (boxed, optional) by the core;
/// every hook is a no-op costing one `Option` branch when disabled.
#[derive(Debug)]
pub struct TaintOracle {
    config: TaintConfig,
    /// One taint bit per physical register, indexed by [`PhysReg`].
    reg_taint: Vec<bool>,
    /// Tainted physical byte addresses.
    mem_taint: HashSet<u64>,
    /// In-flight stores (address resolved, not yet committed/squashed).
    stores: Vec<StoreRec>,
    /// Leaks awaiting commit/squash resolution.
    pending: Vec<PendingLeak>,
    /// Resolved [`TraceEvent::Leak`]s, drained into the trace buffer by
    /// the core.
    events: Vec<TraceEvent>,
    report: LeakReport,
}

impl TaintOracle {
    /// Creates an oracle for a core with `phys_regs` physical registers
    /// and marks the configured secret ranges.
    pub fn new(phys_regs: usize, config: TaintConfig) -> Self {
        let mut oracle = TaintOracle {
            reg_taint: vec![false; phys_regs],
            mem_taint: HashSet::new(),
            stores: Vec::new(),
            pending: Vec::new(),
            events: Vec::new(),
            report: LeakReport::default(),
            config,
        };
        oracle.mark_config_ranges();
        oracle
    }

    /// The installed configuration.
    pub fn config(&self) -> &TaintConfig {
        &self.config
    }

    /// The leak counts accumulated so far (pending leaks not included).
    pub fn report(&self) -> LeakReport {
        self.report
    }

    /// (Re-)marks every configured secret range as tainted.
    pub fn mark_config_ranges(&mut self) {
        for &(start, end) in &self.config.ranges {
            for paddr in start..end {
                self.mem_taint.insert(paddr);
            }
        }
    }

    /// Clears the taint of `len` bytes at `paddr` (a data segment or an
    /// external write overwrote them with known-clean values).
    pub fn clear_bytes(&mut self, paddr: u64, len: u64) {
        for a in paddr..paddr.saturating_add(len) {
            self.mem_taint.remove(&a);
        }
    }

    /// Program (re)load: unresolved pending leaks are flushed as
    /// squash-surviving (their instructions will never commit, and the
    /// planted microarchitectural state persists across the load), then
    /// register and in-flight-store taint is cleared. The caller clears
    /// the bytes each data segment rewrites and then calls
    /// [`TaintOracle::mark_config_ranges`].
    pub fn on_program_load(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            if !p.applies_at_commit {
                self.resolve(p, true);
            }
        }
        self.reg_taint.iter_mut().for_each(|t| *t = false);
        self.stores.clear();
    }

    /// A fresh physical register was allocated at rename: it holds no
    /// value yet, so it is clean.
    #[inline]
    pub fn on_rename(&mut self, preg: PhysReg) {
        self.reg_taint[preg as usize] = false;
    }

    /// Whether `preg` is tainted.
    #[inline]
    pub fn reg(&self, preg: PhysReg) -> bool {
        self.reg_taint[preg as usize]
    }

    /// OR of the operand taints (`None` lanes are clean).
    #[inline]
    pub fn srcs_tainted(&self, srcs: &[Option<PhysReg>; 2]) -> bool {
        srcs.iter().flatten().any(|p| self.reg_taint[*p as usize])
    }

    /// Sets the destination register's taint (no-op without a dest).
    #[inline]
    pub fn set_dest(&mut self, dest: Option<PhysReg>, tainted: bool) {
        if let Some(p) = dest {
            self.reg_taint[p as usize] = tainted;
        }
    }

    /// Whether any byte of `[paddr, paddr + size)` is tainted.
    pub fn mem_range_tainted(&self, paddr: u64, size: u64) -> bool {
        (paddr..paddr.saturating_add(size)).any(|a| self.mem_taint.contains(&a))
    }

    /// The value taint of a load: tainted memory bytes OR tainted data
    /// forwarded from an overlapping older in-flight store. Conservative:
    /// a clean forwarded store does not mask tainted memory bytes.
    pub fn load_value_taint(&self, seq: u64, vaddr: u64, paddr: u64, size: u64) -> bool {
        if self.mem_range_tainted(paddr, size) {
            return true;
        }
        self.stores.iter().any(|s| {
            s.seq < seq
                && s.data_known
                && s.data_taint
                && s.vaddr < vaddr.saturating_add(size)
                && vaddr < s.vaddr.saturating_add(s.size)
        })
    }

    /// A store's address resolved at execute.
    pub fn on_store_addr(&mut self, seq: u64, vaddr: u64, size: u64) {
        self.stores.push(StoreRec {
            seq,
            vaddr,
            size,
            data_taint: false,
            data_known: false,
        });
    }

    /// A store's data became available (at execute or via the later
    /// store-data capture).
    pub fn on_store_data(&mut self, seq: u64, tainted: bool) {
        if let Some(rec) = self.stores.iter_mut().find(|s| s.seq == seq) {
            rec.data_taint = tainted;
            rec.data_known = true;
        }
    }

    /// A store committed: its data taint becomes the memory bytes' taint
    /// (a clean store scrubs previously tainted bytes).
    pub fn on_store_commit(&mut self, seq: u64, paddr: u64, size: u64) {
        let Some(idx) = self.stores.iter().position(|s| s.seq == seq) else {
            return;
        };
        let rec = self.stores.swap_remove(idx);
        if rec.data_taint {
            for a in paddr..paddr + size {
                self.mem_taint.insert(a);
            }
        } else {
            for a in paddr..paddr + size {
                self.mem_taint.remove(&a);
            }
        }
    }

    /// Records a leak observed at execute; it resolves when `seq`
    /// commits or is squashed. `applies_at_commit` marks state changes
    /// (deferred LRU, flush) that only happen at commit and therefore
    /// vanish with a squash.
    pub fn record_leak(
        &mut self,
        seq: u64,
        cycle: u64,
        channel: LeakChannel,
        addr: u64,
        applies_at_commit: bool,
    ) {
        // A blocked load replays address resolution on every issue
        // attempt; count each (instruction, channel) leak once.
        if self
            .pending
            .iter()
            .any(|p| p.seq == seq && p.channel == channel)
        {
            return;
        }
        self.pending.push(PendingLeak {
            seq,
            cycle,
            channel,
            addr,
            applies_at_commit,
        });
    }

    /// `seq` committed: its pending leaks were architectural
    /// (`survived_squash = false`).
    pub fn on_commit(&mut self, seq: u64) {
        if self.pending.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].seq == seq {
                let p = self.pending.remove(i);
                self.resolve(p, false);
            } else {
                i += 1;
            }
        }
    }

    /// Everything younger than `keep_seq` was squashed: cache and TLB
    /// leaks survive (the planted state outlives the wrong path), TPBuf
    /// insertions are rolled back with their entries, and commit-applied
    /// records are dropped (their state change never happened).
    pub fn on_squash(&mut self, keep_seq: u64) {
        if !self.pending.is_empty() {
            let mut i = 0;
            while i < self.pending.len() {
                if self.pending[i].seq > keep_seq {
                    let p = self.pending.remove(i);
                    if !p.applies_at_commit {
                        self.resolve(p, true);
                    }
                } else {
                    i += 1;
                }
            }
        }
        self.stores.retain(|s| s.seq <= keep_seq);
    }

    fn resolve(&mut self, p: PendingLeak, squashed: bool) {
        // A squash releases TPBuf entries, so that channel's state never
        // survives; the cache and TLB channels are exactly what a squash
        // cannot roll back.
        let survived = squashed && p.channel != LeakChannel::TpbufInsert;
        self.report.count(p.channel, survived);
        self.events.push(TraceEvent::Leak {
            cycle: p.cycle,
            seq: p.seq,
            channel: p.channel,
            addr: p.addr,
            survived_squash: survived,
        });
    }

    /// Whether resolved leak events are waiting to be drained.
    #[inline]
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Takes the resolved-event buffer (the core pushes the events into
    /// its trace and hands the emptied buffer back via
    /// [`TaintOracle::restore_event_buffer`] to keep its capacity).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Returns the (cleared) event buffer after a drain.
    pub fn restore_event_buffer(&mut self, mut events: Vec<TraceEvent>) {
        events.clear();
        self.events = events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> TaintOracle {
        TaintOracle::new(64, TaintConfig::range(0x1000, 4))
    }

    #[test]
    fn config_ranges_taint_memory_bytes() {
        let o = oracle();
        assert!(o.mem_range_tainted(0x1000, 1));
        assert!(o.mem_range_tainted(0x0fff, 2), "overlap counts");
        assert!(!o.mem_range_tainted(0x1004, 8));
    }

    #[test]
    fn register_taint_propagates_and_clears_on_rename() {
        let mut o = oracle();
        o.set_dest(Some(5), true);
        assert!(o.srcs_tainted(&[Some(5), None]));
        assert!(!o.srcs_tainted(&[Some(6), None]));
        o.on_rename(5);
        assert!(!o.reg(5));
    }

    #[test]
    fn store_commit_moves_taint_into_memory_and_scrubs() {
        let mut o = oracle();
        o.on_store_addr(7, 0x2000, 8);
        o.on_store_data(7, true);
        o.on_store_commit(7, 0x2000, 8);
        assert!(o.mem_range_tainted(0x2000, 8));
        // A clean store over the same bytes scrubs them.
        o.on_store_addr(9, 0x2000, 8);
        o.on_store_data(9, false);
        o.on_store_commit(9, 0x2000, 8);
        assert!(!o.mem_range_tainted(0x2000, 8));
    }

    #[test]
    fn forwarded_store_data_taints_younger_loads() {
        let mut o = oracle();
        o.on_store_addr(3, 0x3000, 8);
        o.on_store_data(3, true);
        assert!(o.load_value_taint(5, 0x3004, 0x3004, 4), "overlap");
        assert!(!o.load_value_taint(2, 0x3004, 0x3004, 4), "older load");
        assert!(!o.load_value_taint(5, 0x4000, 0x4000, 8), "disjoint");
    }

    #[test]
    fn commit_resolution_counts_architectural_leaks() {
        let mut o = oracle();
        o.record_leak(4, 100, LeakChannel::CacheFill, 0xabc0, false);
        o.on_commit(4);
        let r = o.report();
        assert_eq!(r.cache_fills, 1);
        assert_eq!(r.cache_fills_survived, 0);
        let events = o.take_events();
        assert!(matches!(
            events[0],
            TraceEvent::Leak {
                survived_squash: false,
                ..
            }
        ));
    }

    #[test]
    fn squash_resolution_marks_survivors_by_channel() {
        let mut o = oracle();
        o.record_leak(10, 5, LeakChannel::CacheFill, 0x10, false);
        o.record_leak(11, 6, LeakChannel::TlbFill, 0x20, false);
        o.record_leak(12, 7, LeakChannel::TpbufInsert, 0x30, false);
        o.record_leak(13, 8, LeakChannel::CacheLru, 0x40, true); // deferred
        o.on_squash(9);
        let r = o.report();
        assert_eq!(r.cache_fills_survived, 1);
        assert_eq!(r.tlb_fills_survived, 1);
        assert_eq!(r.tpbuf_inserts, 1, "insertion counted");
        assert_eq!(r.tpbuf_inserts_survived, 0, "but rolled back");
        assert_eq!(r.cache_lru, 0, "deferred update never applied");
        assert_eq!(r.total(), 3);
        assert_eq!(r.cache_survived(), 1);
        assert_eq!(r.blind_spot_survived(), 1);
    }

    #[test]
    fn squash_keeps_older_pending_leaks() {
        let mut o = oracle();
        o.record_leak(3, 1, LeakChannel::CacheFill, 0x10, false);
        o.on_squash(5);
        assert_eq!(o.report().total(), 0, "older leak still pending");
        o.on_commit(3);
        assert_eq!(o.report().cache_fills, 1);
    }

    #[test]
    fn program_load_flushes_pending_as_survived() {
        let mut o = oracle();
        o.record_leak(2, 9, LeakChannel::CacheFill, 0x99, false);
        o.set_dest(Some(8), true);
        o.on_program_load();
        assert_eq!(o.report().cache_fills_survived, 1);
        assert!(!o.reg(8), "register taint cleared");
        // Data segment overwrite scrubs, re-marking restores the secret.
        o.clear_bytes(0x1000, 4);
        assert!(!o.mem_range_tainted(0x1000, 4));
        o.mark_config_ranges();
        assert!(o.mem_range_tainted(0x1000, 4));
    }
}

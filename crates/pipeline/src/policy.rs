//! The [`SecurityPolicy`] extension point.
//!
//! The paper's Conditional Speculation mechanism lives in three places of
//! the core: the Issue Queue (security dependence matrix + suspect flags),
//! the L1D interface (Cache-hit filter) and the LSQ (TPBuf). This trait is
//! the seam between the generic out-of-order machinery in this crate and
//! the defense implemented in the `condspec` crate; the no-op
//! [`NullPolicy`] is the unprotected *Origin* processor.
//!
//! Call protocol (enforced by the core, relied on by implementations):
//!
//! 1. `on_dispatch` when an instruction enters IQ slot `s`, with a view of
//!    the currently valid IQ entries (the matrix-initialization operands).
//! 2. At issue-select, `suspect_on_issue(s)` computes the suspect flag
//!    (the row OR of the security dependence matrix).
//! 3. `on_issue(s)` when the instruction *successfully* issues (for memory
//!    instructions: only after [`MemDecision::Proceed`]); this clears the
//!    matrix column, i.e. releases younger instructions' dependences on it.
//!    A blocked memory instruction never gets `on_issue` for the blocked
//!    attempt — its column stays set while it waits.
//! 4. `check_mem_access` for every load about to access the memory
//!    hierarchy, after address translation and a side-effect-free L1D
//!    probe.
//! 5. `has_pending_dependence(s)` is polled for blocked instructions to
//!    decide when they may re-issue.
//! 6. `on_slot_freed(s)` when the IQ slot is released (completion or
//!    squash).
//! 7. TPBuf events: `on_lsq_allocate`, `on_mem_address`,
//!    `on_mem_writeback`, `on_lsq_release`, keyed by the instruction's
//!    global sequence number (program order).

use condspec_mem::LruUpdate;

/// Instruction classification used by the security dependence matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Loads and stores.
    Memory,
    /// Control-flow instructions resolved in the back end (conditional
    /// branches, indirect jumps, returns).
    Branch,
    /// Everything else.
    Other,
}

/// A view of one valid Issue Queue entry, handed to
/// [`SecurityPolicy::on_dispatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntryView {
    /// The entry's IQ slot (matrix index).
    pub slot: usize,
    /// Global sequence number (program order).
    pub seq: u64,
    /// Classification.
    pub class: InstClass,
    /// Whether the entry has already issued.
    pub issued: bool,
}

/// Dispatch notification payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchInfo {
    /// IQ slot allocated to the new instruction.
    pub slot: usize,
    /// Global sequence number.
    pub seq: u64,
    /// Classification of the new instruction.
    pub class: InstClass,
}

/// A memory access about to be performed, as seen by the filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessQuery {
    /// Global sequence number of the load.
    pub seq: u64,
    /// IQ slot of the load.
    pub slot: usize,
    /// Whether the load carries the suspect speculation flag.
    pub suspect: bool,
    /// Whether the (side-effect-free) L1D probe hit.
    pub l1_hit: bool,
    /// Physical page number of the access (after TLB translation).
    pub ppn: u64,
}

/// Which hazard mechanism cancelled a memory access.
///
/// Carried on [`MemDecision::Block`] so the core (and the trace stream)
/// can tell *why* a load was held, not just that it was. The first three
/// variants are returned by security policies from
/// [`SecurityPolicy::check_mem_access`]; the store-hazard variants are
/// produced by the core's own memory-disambiguation logic and appear
/// only in [`crate::trace::TraceEvent::Block`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockFilter {
    /// Baseline conditional speculation: every suspect access blocks
    /// (paper §III, no filter).
    Baseline,
    /// Cache-hit filter (paper §IV.A): a suspect access missed L1D.
    CacheMiss,
    /// TPBuf (paper §IV.B): a suspect L1D miss whose page matched the
    /// S-Pattern of an in-flight memory instruction.
    SPattern,
    /// Memory disambiguation: an older store's address is unresolved.
    StoreAddr,
    /// Store-to-load forwarding: the matching older store's data is not
    /// yet available.
    StoreData,
}

impl BlockFilter {
    /// A stable machine-readable label (used by the trace exporters).
    pub fn label(&self) -> &'static str {
        match self {
            BlockFilter::Baseline => "baseline",
            BlockFilter::CacheMiss => "cache-miss",
            BlockFilter::SPattern => "s-pattern",
            BlockFilter::StoreAddr => "store-addr",
            BlockFilter::StoreData => "store-data",
        }
    }
}

impl std::fmt::Display for BlockFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Filter verdict for a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemDecision {
    /// Execute the access; on an L1D hit update replacement metadata per
    /// `l1_update` (the §VII.A secure-LRU policies).
    Proceed {
        /// Replacement-update mode for an L1D hit.
        l1_update: LruUpdate,
    },
    /// Cancel the access: no cache state may change. The instruction
    /// returns to the Issue Queue and re-issues once its security
    /// dependences clear. `filter` records which mechanism decided.
    Block {
        /// The hazard filter that made the decision.
        filter: BlockFilter,
    },
}

/// Aggregate statistics a policy reports to the experiment harnesses
/// (Table V's filter-analysis columns are derived from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Suspect speculation flags handed out at issue select.
    pub suspect_flags: u64,
    /// Suspect L1D misses checked against the S-Pattern (TPBuf lookups).
    pub tpbuf_queries: u64,
    /// TPBuf lookups that did *not* match the S-Pattern (deemed safe) —
    /// the numerator of Table V's "S-Pattern Mismatch Rate".
    pub tpbuf_mismatches: u64,
    /// Block decisions returned from [`SecurityPolicy::check_mem_access`].
    pub blocks: u64,
}

impl PolicyStats {
    /// Fraction of TPBuf lookups that mismatched the S-Pattern.
    pub fn s_pattern_mismatch_rate(&self) -> f64 {
        if self.tpbuf_queries == 0 {
            0.0
        } else {
            self.tpbuf_mismatches as f64 / self.tpbuf_queries as f64
        }
    }
}

/// The defense mechanism's hooks into the out-of-order core.
///
/// See the [module documentation](self) for the call protocol.
///
/// `Send` is a supertrait so a boxed policy — and therefore a whole
/// [`Core`](crate::Core) — can move to a sweep worker thread; policies
/// are plain parameter-and-counter structs, so this costs implementors
/// nothing.
pub trait SecurityPolicy: Send {
    /// Human-readable mechanism name (used in reports).
    fn name(&self) -> &'static str;

    /// Whether [`SecurityPolicy::on_dispatch`] consumes the `older` IQ
    /// snapshot. Policies that ignore it (e.g. the undefended baseline)
    /// return `false` so the core can skip building the view list.
    fn wants_dispatch_views(&self) -> bool {
        true
    }

    /// A new instruction entered the Issue Queue.
    ///
    /// `older` lists every valid IQ entry at this moment (the new entry is
    /// not included). The slice order is unspecified — the core maintains
    /// it incrementally in allocation order with swap-remove hole filling,
    /// not sorted by slot; implementations must treat it as a set (the
    /// matrix-initialization formula is order-independent). When
    /// [`SecurityPolicy::wants_dispatch_views`] is `false`, the core
    /// passes an empty slice instead.
    fn on_dispatch(&mut self, info: DispatchInfo, older: &[IqEntryView]);

    /// Row-OR query at issue select: does the instruction in `slot` have
    /// any outstanding security dependence?
    fn suspect_on_issue(&self, slot: usize) -> bool;

    /// The instruction in `slot` issued successfully: clear its matrix
    /// column.
    fn on_issue(&mut self, slot: usize);

    /// The IQ slot was released (instruction completed or was squashed).
    fn on_slot_freed(&mut self, slot: usize);

    /// Whether the instruction in `slot` still has pending security
    /// dependences (polled by blocked instructions awaiting re-issue).
    fn has_pending_dependence(&self, slot: usize) -> bool;

    /// Filter decision for a load about to access the hierarchy.
    fn check_mem_access(&mut self, query: &MemAccessQuery) -> MemDecision;

    /// A memory instruction was allocated an LSQ (and thus TPBuf) entry.
    fn on_lsq_allocate(&mut self, seq: u64, is_load: bool) {
        let _ = (seq, is_load);
    }

    /// A memory instruction's address resolved (TPBuf V bit + PPN tag).
    fn on_mem_address(&mut self, seq: u64, ppn: u64, suspect: bool) {
        let _ = (seq, ppn, suspect);
    }

    /// Whether [`SecurityPolicy::on_mem_address`] actually stores the page
    /// number in a hardware structure (the TPBuf). The taint oracle uses
    /// this to decide if an address resolution plants observable state.
    fn records_page_addresses(&self) -> bool {
        false
    }

    /// A memory instruction's data became available to consumers (TPBuf W
    /// bit).
    fn on_mem_writeback(&mut self, seq: u64) {
        let _ = seq;
    }

    /// A memory instruction left the LSQ (commit or squash).
    fn on_lsq_release(&mut self, seq: u64) {
        let _ = seq;
    }

    /// Statistics for the experiment harnesses.
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }

    /// Resets statistics (after warm-up).
    fn reset_stats(&mut self) {}

    /// Clears transient microarchitectural state (matrix rows, TPBuf
    /// entries) when a new program is loaded onto the core.
    fn reset_transient(&mut self) {}
}

/// The unprotected baseline processor (*Origin* in the paper's
/// evaluation): nothing is ever suspect, nothing is ever blocked.
///
/// # Examples
///
/// ```
/// use condspec_pipeline::policy::{NullPolicy, SecurityPolicy, MemAccessQuery, MemDecision};
/// use condspec_mem::LruUpdate;
///
/// let mut p = NullPolicy::default();
/// let q = MemAccessQuery { seq: 1, slot: 0, suspect: false, l1_hit: false, ppn: 7 };
/// assert_eq!(p.check_mem_access(&q), MemDecision::Proceed { l1_update: LruUpdate::Normal });
/// assert!(!p.suspect_on_issue(0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPolicy;

impl SecurityPolicy for NullPolicy {
    fn name(&self) -> &'static str {
        "origin"
    }

    fn wants_dispatch_views(&self) -> bool {
        false
    }

    fn on_dispatch(&mut self, _info: DispatchInfo, _older: &[IqEntryView]) {}

    fn suspect_on_issue(&self, _slot: usize) -> bool {
        false
    }

    fn on_issue(&mut self, _slot: usize) {}

    fn on_slot_freed(&mut self, _slot: usize) {}

    fn has_pending_dependence(&self, _slot: usize) -> bool {
        false
    }

    fn check_mem_access(&mut self, _query: &MemAccessQuery) -> MemDecision {
        MemDecision::Proceed {
            l1_update: LruUpdate::Normal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_policy_is_permissive() {
        let mut p = NullPolicy;
        p.on_dispatch(
            DispatchInfo {
                slot: 3,
                seq: 10,
                class: InstClass::Memory,
            },
            &[IqEntryView {
                slot: 0,
                seq: 9,
                class: InstClass::Branch,
                issued: false,
            }],
        );
        assert!(!p.suspect_on_issue(3));
        assert!(!p.has_pending_dependence(3));
        let q = MemAccessQuery {
            seq: 10,
            slot: 3,
            suspect: true,
            l1_hit: false,
            ppn: 0,
        };
        assert!(matches!(
            p.check_mem_access(&q),
            MemDecision::Proceed { .. }
        ));
        assert_eq!(p.name(), "origin");
    }

    #[test]
    fn block_filter_labels_are_stable() {
        let all = [
            BlockFilter::Baseline,
            BlockFilter::CacheMiss,
            BlockFilter::SPattern,
            BlockFilter::StoreAddr,
            BlockFilter::StoreData,
        ];
        let labels: Vec<&str> = all.iter().map(|f| f.label()).collect();
        assert_eq!(
            labels,
            [
                "baseline",
                "cache-miss",
                "s-pattern",
                "store-addr",
                "store-data"
            ]
        );
        assert_eq!(BlockFilter::SPattern.to_string(), "s-pattern");
    }

    #[test]
    fn default_hooks_are_noops() {
        // Exercise the defaulted TPBuf hooks through the trait object.
        let mut p: Box<dyn SecurityPolicy> = Box::new(NullPolicy);
        p.on_lsq_allocate(1, true);
        p.on_mem_address(1, 42, false);
        p.on_mem_writeback(1);
        p.on_lsq_release(1);
    }
}

//! Pipeline-level statistics.

use condspec_stats::RateCounter;

/// Counters collected by the core during simulation.
///
/// The experiment harnesses derive the paper's Table V columns from these:
///
/// * *Blocked Rate* = [`blocked_committed_loads`] / [`committed_loads`]
///   (blocked speculative memory accesses on the correct execution path),
/// * *Cache Hit Rate of Speculative Memory Access* = [`suspect_l1`] rate,
/// * overall performance = [`cycles`] vs a baseline run.
///
/// [`blocked_committed_loads`]: PipelineStats::blocked_committed_loads
/// [`committed_loads`]: PipelineStats::committed_loads
/// [`suspect_l1`]: PipelineStats::suspect_l1
/// [`cycles`]: PipelineStats::cycles
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub committed_loads: u64,
    /// Stores committed.
    pub committed_stores: u64,
    /// Control-flow instructions committed.
    pub committed_branches: u64,
    /// Committed loads that a hazard filter blocked at least once — the
    /// numerator of the paper's "Blocked Rate".
    pub blocked_committed_loads: u64,
    /// Every filter Block decision (including wrong-path loads and
    /// repeated blocks of one load).
    pub block_events: u64,
    /// Loads that issued carrying the suspect speculation flag
    /// (hit = the L1D probe hit) — Table V's "Cache Hit Rate of
    /// Speculative Memory Access".
    pub suspect_l1: RateCounter,
    /// Loads that issued without the suspect flag (for completeness).
    pub clean_l1: RateCounter,
    /// Squashes due to branch/jump misprediction.
    pub mispredict_squashes: u64,
    /// Squashes due to memory-order violations (speculative store bypass).
    pub violation_squashes: u64,
    /// Instructions removed by squashes.
    pub squashed_insts: u64,
    /// Instructions issued (including wrong-path and re-issues).
    pub issued: u64,
    /// Loads that performed a memory hierarchy access (excludes blocked).
    pub load_accesses: u64,
    /// Fetch cycles stalled by the §VII.B ICache-hit filter (unsafe
    /// next-PC that would miss L1I).
    pub icache_fetch_stalls: u64,
    /// Sum of ROB occupancy samples (one per cycle).
    pub rob_occupancy_sum: u64,
    /// Sum of IQ occupancy samples (one per cycle).
    pub iq_occupancy_sum: u64,
}

impl PipelineStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mean reorder-buffer occupancy over the measured window.
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean issue-queue occupancy over the measured window.
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of correct-path loads that were blocked at least once
    /// (the paper's Blocked Rate).
    pub fn blocked_rate(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.blocked_committed_loads as f64 / self.committed_loads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_zero_when_empty() {
        assert_eq!(PipelineStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_computation() {
        let stats = PipelineStats {
            cycles: 100,
            committed: 250,
            ..Default::default()
        };
        assert_eq!(stats.ipc(), 2.5);
    }

    #[test]
    fn blocked_rate() {
        let stats = PipelineStats {
            committed_loads: 200,
            blocked_committed_loads: 30,
            ..Default::default()
        };
        assert_eq!(stats.blocked_rate(), 0.15);
        assert_eq!(PipelineStats::default().blocked_rate(), 0.0);
    }
}

//! Chrome trace-event (Perfetto-loadable) export of a [`TraceBuffer`].
//!
//! [`to_chrome_trace`] renders a recorded trace as the JSON object form
//! of the [Chrome trace-event format] — the format `chrome://tracing`
//! and [ui.perfetto.dev](https://ui.perfetto.dev) open directly. The
//! mapping:
//!
//! * one *process* (`condspec-core`) with one *thread track per pipeline
//!   stage* (dispatch, issue, memory, security, commit, control,
//!   scheduler), declared with `"M"` metadata events;
//! * every [`TraceEvent`] becomes a `"X"` complete event whose
//!   timestamp is the simulated **cycle** (1 cycle ≙ 1 µs on the
//!   viewer's axis) and whose `args` carry the event's full payload —
//!   filter labels, effective addresses, pages, squash causes;
//! * each instruction's dispatch → issue → commit lifecycle is stitched
//!   across tracks with `"s"`/`"t"`/`"f"` flow events, keyed by
//!   sequence number *and* a per-sequence incarnation counter so
//!   squash-recycled sequence numbers do not join unrelated arrows.
//!
//! Timestamps come from the simulated clock only, so the export is
//! byte-identical across runs and hosts.
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{TraceBuffer, TraceEvent};
use condspec_stats::Json;
use std::collections::HashMap;

/// Schema identifier written into the export's `otherData`.
pub const TRACE_SCHEMA: &str = "condspec-trace-v1";

/// The single process id all tracks live under.
const PID: u64 = 1;

/// Per-stage thread tracks, in display order.
const TRACKS: [(u64, &str); 8] = [
    (1, "dispatch"),
    (2, "issue"),
    (3, "memory"),
    (4, "security"),
    (5, "commit"),
    (6, "control"),
    (7, "scheduler"),
    (8, "leak"),
];

/// The thread track an event is drawn on.
fn tid(event: &TraceEvent) -> u64 {
    match event {
        TraceEvent::Dispatch { .. } => 1,
        TraceEvent::Issue { .. } => 2,
        TraceEvent::Block { .. } | TraceEvent::TpbufProbe { .. } => 3,
        TraceEvent::MatrixSet { .. }
        | TraceEvent::MatrixClear { .. }
        | TraceEvent::FenceHold { .. } => 4,
        TraceEvent::Complete { .. } | TraceEvent::Commit { .. } => 5,
        TraceEvent::Squash { .. } => 6,
        TraceEvent::FastForward { .. } => 7,
        TraceEvent::Leak { .. } => 8,
    }
}

/// The short name drawn on the slice.
fn name(event: &TraceEvent) -> &'static str {
    match event {
        TraceEvent::Dispatch { .. } => "dispatch",
        TraceEvent::Issue { .. } => "issue",
        TraceEvent::Block { .. } => "block",
        TraceEvent::TpbufProbe { .. } => "tpbuf-probe",
        TraceEvent::MatrixSet { .. } => "matrix-set",
        TraceEvent::MatrixClear { .. } => "matrix-clear",
        TraceEvent::FenceHold { .. } => "fence-hold",
        TraceEvent::Complete { .. } => "complete",
        TraceEvent::Commit { .. } => "commit",
        TraceEvent::Squash { .. } => "squash",
        TraceEvent::FastForward { .. } => "fast-forward",
        TraceEvent::Leak { .. } => "leak",
    }
}

fn hex(v: u64) -> Json {
    Json::from(format!("{v:#x}"))
}

/// The event payload, rendered into the slice's `args`.
fn args(event: &TraceEvent) -> Json {
    match *event {
        TraceEvent::Dispatch { seq, pc, .. } => {
            Json::object([("seq", Json::from(seq)), ("pc", hex(pc))])
        }
        TraceEvent::Issue { seq, suspect, .. } => {
            Json::object([("seq", Json::from(seq)), ("suspect", Json::from(suspect))])
        }
        TraceEvent::Block {
            seq,
            filter,
            vaddr,
            page,
            ..
        } => Json::object([
            ("seq", Json::from(seq)),
            ("filter", Json::from(filter.label())),
            ("vaddr", hex(vaddr)),
            ("page", hex(page)),
        ]),
        TraceEvent::TpbufProbe {
            seq, page, matched, ..
        } => Json::object([
            ("seq", Json::from(seq)),
            ("page", hex(page)),
            ("matched", Json::from(matched)),
        ]),
        TraceEvent::MatrixSet { seq, slot, .. } | TraceEvent::MatrixClear { seq, slot, .. } => {
            Json::object([("seq", Json::from(seq)), ("slot", Json::from(slot as u64))])
        }
        TraceEvent::FenceHold { seq, .. } => Json::object([("seq", Json::from(seq))]),
        TraceEvent::Complete { seq, .. } => Json::object([("seq", Json::from(seq))]),
        TraceEvent::Commit { seq, pc, .. } => {
            Json::object([("seq", Json::from(seq)), ("pc", hex(pc))])
        }
        TraceEvent::Squash {
            keep_seq,
            redirect_pc,
            cause,
            ..
        } => Json::object([
            ("cause", Json::from(cause.label())),
            ("keep_seq", Json::from(keep_seq)),
            ("redirect_pc", hex(redirect_pc)),
        ]),
        TraceEvent::FastForward { skipped, .. } => Json::object([("skipped", Json::from(skipped))]),
        TraceEvent::Leak {
            seq,
            channel,
            addr,
            survived_squash,
            ..
        } => Json::object([
            ("seq", Json::from(seq)),
            ("channel", Json::from(channel.key())),
            ("addr", hex(addr)),
            ("survived_squash", Json::from(survived_squash)),
        ]),
    }
}

/// One `"M"` metadata record.
fn metadata(name: &str, arg_key: &str, arg_val: &str, tid: Option<u64>) -> Json {
    let mut fields = vec![
        ("name", Json::from(name)),
        ("ph", Json::from("M")),
        ("pid", Json::from(PID)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Json::from(tid)));
    }
    fields.push(("args", Json::object([(arg_key, Json::from(arg_val))])));
    Json::object(fields)
}

/// One `"X"` complete event of `dur` cycles.
fn slice(event: &TraceEvent, dur: u64) -> Json {
    Json::object([
        ("name", Json::from(name(event))),
        ("cat", Json::from(event.category())),
        ("ph", Json::from("X")),
        ("ts", Json::from(event.cycle())),
        ("dur", Json::from(dur)),
        ("pid", Json::from(PID)),
        ("tid", Json::from(tid(event))),
        ("args", args(event)),
    ])
}

/// One flow event (`ph` ∈ s/t/f) stitching an instruction's lifecycle.
fn flow(ph: &str, event: &TraceEvent, id: &str) -> Json {
    let mut fields = vec![
        ("name", Json::from("inst")),
        ("cat", Json::from("flow")),
        ("ph", Json::from(ph)),
        ("id", Json::from(id)),
        ("ts", Json::from(event.cycle())),
        ("pid", Json::from(PID)),
        ("tid", Json::from(tid(event))),
    ];
    if ph == "f" {
        // Bind the finish to the enclosing slice so the arrow lands on
        // the commit box rather than the next slice on the track.
        fields.push(("bp", Json::from("e")));
    }
    Json::object(fields)
}

/// Renders `buffer` as a Chrome trace-event JSON document.
///
/// The result is a `{"traceEvents": [...], "displayTimeUnit": "ms",
/// "otherData": {...}}` object; serialize it with
/// [`Json::render`] and load the file in Perfetto or `chrome://tracing`.
/// `otherData` records the schema name, the buffered event count and
/// how many events the bounded [`TraceBuffer`] dropped.
pub fn to_chrome_trace(buffer: &TraceBuffer) -> Json {
    let mut out: Vec<Json> = Vec::with_capacity(buffer.len() + TRACKS.len() + 1);
    out.push(metadata("process_name", "name", "condspec-core", None));
    for (tid, label) in TRACKS {
        out.push(metadata("thread_name", "name", label, Some(tid)));
    }

    // Sequence numbers are reused across squash/refetch; a per-seq
    // incarnation counter keeps each lifetime's flow arrows separate.
    let mut incarnation: HashMap<u64, u64> = HashMap::new();
    for event in buffer.events() {
        match *event {
            TraceEvent::Dispatch { seq, .. } => {
                let generation = incarnation.entry(seq).and_modify(|g| *g += 1).or_insert(0);
                out.push(slice(event, 1));
                out.push(flow("s", event, &format!("seq{seq}.{generation}")));
            }
            TraceEvent::Issue { seq, .. } => {
                out.push(slice(event, 1));
                if let Some(generation) = incarnation.get(&seq) {
                    out.push(flow("t", event, &format!("seq{seq}.{generation}")));
                }
            }
            TraceEvent::Commit { seq, .. } => {
                out.push(slice(event, 1));
                if let Some(generation) = incarnation.get(&seq) {
                    out.push(flow("f", event, &format!("seq{seq}.{generation}")));
                }
            }
            TraceEvent::FastForward { skipped, .. } => {
                out.push(slice(event, skipped));
            }
            _ => out.push(slice(event, 1)),
        }
    }

    Json::object([
        ("traceEvents", Json::Array(out)),
        // 1 simulated cycle is encoded as 1 µs of trace time.
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::object([
                ("schema", Json::from(TRACE_SCHEMA)),
                ("clock", Json::from("simulated-cycles")),
                ("events", Json::from(buffer.len() as u64)),
                ("dropped", Json::from(buffer.dropped())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BlockFilter;
    use crate::trace::SquashCause;

    fn sample_buffer() -> TraceBuffer {
        let mut t = TraceBuffer::new(64);
        t.push(TraceEvent::Dispatch {
            cycle: 1,
            seq: 0,
            pc: 0x1000,
        });
        t.push(TraceEvent::Issue {
            cycle: 2,
            seq: 0,
            suspect: true,
        });
        t.push(TraceEvent::Block {
            cycle: 2,
            seq: 0,
            filter: BlockFilter::CacheMiss,
            vaddr: 0x8000_0040,
            page: 0x8000,
        });
        t.push(TraceEvent::FastForward {
            cycle: 3,
            skipped: 5,
        });
        t.push(TraceEvent::Squash {
            cycle: 8,
            keep_seq: 0,
            redirect_pc: 0x1004,
            cause: SquashCause::Mispredict,
        });
        t.push(TraceEvent::Commit {
            cycle: 9,
            seq: 0,
            pc: 0x1000,
        });
        t
    }

    fn events(doc: &Json) -> &[Json] {
        doc.get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array")
    }

    #[test]
    fn export_declares_tracks_and_schema() {
        let doc = to_chrome_trace(&sample_buffer());
        let evs = events(&doc);
        let metadata = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        assert_eq!(metadata, 1 + TRACKS.len(), "process + one per track");
        let other = doc.get("otherData").expect("otherData");
        assert_eq!(
            other.get("schema").and_then(Json::as_str),
            Some(TRACE_SCHEMA)
        );
        assert_eq!(other.get("events").and_then(Json::as_u64), Some(6));
        assert_eq!(other.get("dropped").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn timestamps_are_monotonic_and_payload_survives() {
        let doc = to_chrome_trace(&sample_buffer());
        let mut last = 0;
        let mut block_args = None;
        for e in events(&doc) {
            if e.get("ph").and_then(Json::as_str) == Some("M") {
                continue;
            }
            let ts = e.get("ts").and_then(Json::as_u64).expect("ts");
            assert!(ts >= last, "timestamps must be non-decreasing");
            last = ts;
            if e.get("name").and_then(Json::as_str) == Some("block") {
                block_args = e.get("args").cloned();
            }
        }
        let args = block_args.expect("block slice exported");
        assert_eq!(
            args.get("filter").and_then(Json::as_str),
            Some("cache-miss")
        );
        assert_eq!(args.get("vaddr").and_then(Json::as_str), Some("0x80000040"));
    }

    #[test]
    fn lifecycle_flows_share_an_id_and_fast_forward_spans_window() {
        let doc = to_chrome_trace(&sample_buffer());
        let flows: Vec<&Json> = events(&doc)
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
            .collect();
        assert_eq!(flows.len(), 3, "s, t, f for the one instruction");
        let ids: Vec<_> = flows
            .iter()
            .map(|e| e.get("id").and_then(Json::as_str).unwrap())
            .collect();
        assert!(ids.iter().all(|i| *i == "seq0.0"));
        let phases: Vec<_> = flows
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(phases, vec!["s", "t", "f"]);

        let ff = events(&doc)
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("fast-forward"))
            .expect("fast-forward slice");
        assert_eq!(ff.get("dur").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn recycled_seq_gets_a_new_flow_generation() {
        let mut t = TraceBuffer::new(16);
        for cycle in [1, 5] {
            t.push(TraceEvent::Dispatch {
                cycle,
                seq: 3,
                pc: 0x2000,
            });
        }
        let doc = to_chrome_trace(&t);
        let ids: Vec<String> = events(&doc)
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .map(|e| e.get("id").and_then(Json::as_str).unwrap().to_string())
            .collect();
        assert_eq!(ids, vec!["seq3.0", "seq3.1"]);
    }

    #[test]
    fn leak_events_land_on_the_leak_track_with_payload() {
        use crate::trace::LeakChannel;
        let mut t = TraceBuffer::new(8);
        t.push(TraceEvent::Leak {
            cycle: 40,
            seq: 11,
            channel: LeakChannel::TpbufInsert,
            addr: 0x102a000,
            survived_squash: true,
        });
        let doc = to_chrome_trace(&t);
        let slice = events(&doc)
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("leak"))
            .expect("leak slice exported");
        assert_eq!(slice.get("tid").and_then(Json::as_u64), Some(8));
        assert_eq!(slice.get("cat").and_then(Json::as_str), Some("leak"));
        let args = slice.get("args").expect("args");
        assert_eq!(
            args.get("channel").and_then(Json::as_str),
            Some("tpbuf-insert")
        );
        assert_eq!(args.get("addr").and_then(Json::as_str), Some("0x102a000"));
        assert_eq!(
            args.get("survived_squash").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn render_parses_back() {
        let doc = to_chrome_trace(&sample_buffer());
        let text = doc.render();
        let parsed = Json::parse(&text).expect("export must be valid JSON");
        assert_eq!(parsed.render(), text, "round-trip is lossless");
    }
}

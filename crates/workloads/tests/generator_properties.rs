//! The workload generator's calibration knobs, verified by actually
//! simulating short windows: hit-rate targets are approached, the fence
//! knob emits fences, pointer chasing shows up as suspect flags, and the
//! S-Pattern mismatch ordering separates streaming from page-jumping
//! benchmarks.

use condspec::{DefenseConfig, SimConfig, Simulator};
use condspec_workloads::spec::{build_program, by_name, suite, WorkloadSpec};

const ITERS: u64 = 8;
const BUDGET: u64 = 100_000_000;

fn simulate(spec: &WorkloadSpec, defense: DefenseConfig) -> condspec::Report {
    let program = std::sync::Arc::new(build_program(spec, ITERS));
    let mut sim = Simulator::new(SimConfig::new(defense));
    sim.load_program(program);
    let r = sim.run(BUDGET);
    assert!(sim.core().is_halted(), "{} must halt: {r:?}", spec.name);
    sim.report()
}

#[test]
fn l1_hit_rates_track_their_targets() {
    // A representative slice across the hit-rate range; tolerance is
    // loose because short windows include the cold-start transient.
    for name in ["GemsFDTD", "astar", "libquantum", "mcf", "lbm", "zeusmp"] {
        let spec = by_name(name).expect("suite benchmark");
        let report = simulate(&spec, DefenseConfig::Origin);
        let error = (report.l1d_hit_rate - spec.l1_hit_target).abs();
        assert!(
            error < 0.08,
            "{name}: measured {:.3} vs target {:.3}",
            report.l1d_hit_rate,
            spec.l1_hit_target
        );
    }
}

#[test]
fn hit_rate_ordering_matches_the_suite() {
    // Across the whole suite, measured hit rates must preserve the
    // paper's ordering for well-separated pairs.
    let mut measured: Vec<(f64, f64)> = Vec::new();
    for spec in suite() {
        let report = simulate(&spec, DefenseConfig::Origin);
        measured.push((spec.l1_hit_target, report.l1d_hit_rate));
    }
    for a in &measured {
        for b in &measured {
            if a.0 + 0.1 < b.0 {
                assert!(
                    a.1 < b.1 + 0.05,
                    "targets {:.2} vs {:.2} inverted: measured {:.2} vs {:.2}",
                    a.0,
                    b.0,
                    a.1,
                    b.1
                );
            }
        }
    }
}

#[test]
fn fence_knob_emits_fences_and_serializes() {
    let spec = by_name("sjeng").expect("suite benchmark");
    let fenced = WorkloadSpec {
        fence_after_branches: true,
        ..spec
    };
    let plain_program = build_program(&spec, ITERS);
    let fenced_program = build_program(&fenced, ITERS);
    let plain_fences = plain_program
        .insts()
        .iter()
        .filter(|i| i.is_fence())
        .count();
    let fenced_fences = fenced_program
        .insts()
        .iter()
        .filter(|i| i.is_fence())
        .count();
    assert_eq!(plain_fences, 0);
    assert!(
        fenced_fences > 5,
        "got {fenced_fences} fences (static code; each executes per iteration)"
    );

    let plain = simulate(&spec, DefenseConfig::Origin);
    let hardened = simulate(&fenced, DefenseConfig::Origin);
    assert!(
        hardened.cycles as f64 > plain.cycles as f64 * 1.3,
        "fencing must cost real time: {} vs {}",
        hardened.cycles,
        plain.cycles
    );
}

#[test]
fn pointer_chase_knob_creates_miss_phase_suspects() {
    let spec = by_name("libquantum").expect("a chasing benchmark");
    assert!(spec.pointer_chase);
    let unchased = WorkloadSpec {
        pointer_chase: false,
        ..spec
    };

    let with_chase = simulate(&spec, DefenseConfig::CacheHit);
    let without = simulate(&unchased, DefenseConfig::CacheHit);
    assert!(
        with_chase.blocked_rate > without.blocked_rate + 0.05,
        "chasing drives the blocked rate: {:.3} vs {:.3}",
        with_chase.blocked_rate,
        without.blocked_rate
    );
}

#[test]
fn s_pattern_mismatch_separates_streaming_from_page_jumping() {
    let lbm = simulate(&by_name("lbm").unwrap(), DefenseConfig::CacheHitTpbuf);
    let libquantum = simulate(
        &by_name("libquantum").unwrap(),
        DefenseConfig::CacheHitTpbuf,
    );
    assert!(
        lbm.s_pattern_mismatch_rate > libquantum.s_pattern_mismatch_rate + 0.2,
        "streaming ({:.2}) must mismatch far more than page-jumping ({:.2})",
        lbm.s_pattern_mismatch_rate,
        libquantum.s_pattern_mismatch_rate
    );
}

#[test]
fn chasers_cover_the_misses_dominated_benchmarks() {
    for spec in suite() {
        if spec.l1_hit_target < 0.90 {
            assert!(spec.pointer_chase, "{} is miss-dominated", spec.name);
        }
    }
    assert!(
        by_name("mcf").unwrap().pointer_chase,
        "mcf is the canonical chaser"
    );
    assert!(!by_name("GemsFDTD").unwrap().pointer_chase);
}

#![warn(missing_docs)]

//! Workloads for the Conditional Speculation reproduction:
//!
//! * [`gadgets`] — executable Spectre proof-of-concept victim programs
//!   (V1, V2, V4, and same-page variants for the non-shared-memory attack
//!   scenarios of Table IV), with a well-known memory layout the attack
//!   orchestrator can flush/prime/probe.
//! * [`spec`] — synthetic SPEC CPU 2006-like benchmark programs,
//!   calibrated per benchmark to the microarchitectural profile the paper
//!   reports in Table V (L1D hit rate, page locality of misses, branch
//!   behaviour). These drive the Figure 5 / Table V / Table VI
//!   reproductions.
//!
//! # Examples
//!
//! ```
//! use condspec_workloads::spec::{suite, build_program};
//!
//! let specs = suite();
//! assert_eq!(specs.len(), 22);
//! let program = build_program(&specs[0], 10);
//! assert!(program.len() > 50);
//! ```

pub mod gadgets;
pub mod spec;

pub use gadgets::{GadgetKind, SpectreGadget};
pub use spec::{build_program, suite, WorkloadSpec};

//! Synthetic SPEC CPU 2006-like workloads.
//!
//! Running the real SPEC suite is impossible on a custom micro-ISA, so
//! each benchmark is replaced by a generated program calibrated to the
//! microarchitectural profile the paper itself reports for it in Table V:
//!
//! * **L1D hit rate** — the ratio of "hot" accesses (a small resident
//!   region) to miss-prone accesses (regions far larger than any cache).
//! * **Miss page-locality** — miss-prone accesses run in homogeneous
//!   *phases*: a streaming phase walks memory sequentially (in-flight
//!   accesses share pages → high S-Pattern mismatch, the lbm shape),
//!   while a random phase jumps between pages (in-flight accesses differ
//!   in page → low mismatch, the libquantum/bwaves shape). Phases are
//!   inner loops much longer than the out-of-order window, so the window
//!   is usually page-homogeneous inside a streaming phase.
//! * **Branch behaviour** — branch conditions read the last *loaded*
//!   value (through a value-preserving mask), so branches stay unresolved
//!   in the Issue Queue exactly as long as their producing loads are in
//!   flight — the paper's §II.B "delinquent memory access" window. A
//!   calibrated fraction of branches additionally key on a pseudo-random
//!   LCG bit and are genuinely unpredictable.
//! * **Memory-memory speculation** — store addresses depend on loaded
//!   data, so stores sit unissued in the IQ and younger loads acquire
//!   memory-memory security dependences (the Spectre V4 hazard shape).
//!
//! Generation is deterministic (seeded); iteration counts are loop bounds
//! in registers, so the code size is independent of the simulated length.

use condspec_isa::{AluOp, BranchCond, Program, ProgramBuilder};
use condspec_stats::SplitMix64;

/// Base virtual address of generated benchmark code.
const CODE_BASE: u64 = 0x0040_0000;
/// Hot (L1-resident) data region: 16 KiB inside a 64 KiB L1.
const HOT_BASE: u64 = 0x0200_0000;
const HOT_BYTES: u64 = 16 * 1024;
/// Streaming region base.
const STREAM_BASE: u64 = 0x1000_0000;
/// Random-access region base.
const RAND_BASE: u64 = 0x4000_0000;
/// Data-memory accesses per outer iteration (phase lengths are derived
/// from this and the hit-rate target).
const ACCESSES_PER_OUTER: f64 = 1024.0;
/// Memory accesses per inner-phase body.
const BODY_ACCESSES: usize = 8;
/// Fraction of constant-direction branches whose condition depends on the
/// last loaded value (slow to resolve); the rest have always-ready
/// operands.
const SLOW_BRANCH_FRACTION: f64 = 0.25;
/// Extra multiplies in a slow branch's condition chain (a ~30-cycle
/// resolution delay, like a floating-point compare chain).
const SLOW_BRANCH_CHAIN: usize = 9;
/// Fraction of stores whose address depends on loaded data (the
/// memory-memory speculation source).
const STORE_DEP_FRACTION: f64 = 0.35;
/// Fraction of hot loads whose address chains on the previous loaded
/// value (pointer-chase shape): they sit briefly unissued in the IQ and
/// give younger accesses short-lived security dependences.
const HOT_DEP_FRACTION: f64 = 0.4;
/// The body slot whose miss-phase load chains on the previous *missed*
/// value (indirection through cold data, the mcf shape): it sits unissued
/// for a full miss latency, opening the long speculation window that
/// makes miss-phase accesses suspect. One chase per body.
const CHASE_SLOT: usize = 6;

/// Per-benchmark generation parameters (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (matches the paper's Table V rows).
    pub name: &'static str,
    /// Target L1D hit rate (Table V column 1).
    pub l1_hit_target: f64,
    /// Of the miss-prone accesses, the fraction in streaming phases
    /// (calibrated from Table V's S-Pattern mismatch column).
    pub seq_miss_fraction: f64,
    /// Fraction of body branches keyed to the pseudo-random chain
    /// (unpredictable; calibrated to the benchmark's misprediction rate).
    pub unpred_branch_fraction: f64,
    /// Of memory accesses, the fraction that are stores.
    pub store_fraction: f64,
    /// Size of the miss-prone regions (bytes, power of two).
    pub region_bytes: u64,
    /// Whether miss-phase bodies chain one load on the previous missed
    /// value (pointer-chasing codes: mcf, omnetpp, astar, gobmk).
    pub pointer_chase: bool,
    /// Insert an `lfence` after every conditional branch — the blanket
    /// software mitigation the paper's related work discusses, used by
    /// the comparison harness (never set in the default suite).
    pub fence_after_branches: bool,
    /// RNG seed (deterministic generation).
    pub seed: u64,
}

/// The 22 SPEC CPU 2006 benchmarks of the paper's Figure 5 / Table V,
/// with per-benchmark knobs calibrated to the paper's own measurements.
pub fn suite() -> Vec<WorkloadSpec> {
    // Pointer-chasing / indirection-heavy codes: every miss-phase body
    // chains one load on cold data. This covers the classic chasers and
    // every benchmark whose misses dominate its profile (their in-flight
    // windows in gem5 are likewise full of unissued memory operations).
    let chasers = ["astar", "gobmk", "mcf", "omnetpp"];
    let spec = move |name, hit: f64, seq: f64, unpred: f64, store: f64, region: u64| WorkloadSpec {
        name,
        l1_hit_target: hit,
        seq_miss_fraction: seq,
        unpred_branch_fraction: unpred,
        store_fraction: store,
        region_bytes: region,
        pointer_chase: chasers.contains(&name) || hit < 0.90,
        fence_after_branches: false,
        seed: 0xc0de_0000 ^ fxhash(name),
    };
    const MB: u64 = 1024 * 1024;
    vec![
        spec("astar", 0.944, 0.15, 0.25, 0.15, 8 * MB),
        spec("bwaves", 0.813, 0.02, 0.04, 0.20, 16 * MB),
        spec("bzip2", 0.967, 0.05, 0.15, 0.25, 4 * MB),
        spec("dealII", 0.973, 0.16, 0.06, 0.15, 2 * MB),
        spec("gamess", 0.960, 0.11, 0.06, 0.20, 2 * MB),
        spec("gcc", 0.962, 0.19, 0.12, 0.20, 4 * MB),
        spec("GemsFDTD", 0.999, 0.01, 0.04, 0.20, 2 * MB),
        spec("gobmk", 0.953, 0.39, 0.20, 0.15, 4 * MB),
        spec("gromacs", 0.938, 0.19, 0.08, 0.20, 4 * MB),
        spec("h264ref", 0.991, 0.47, 0.08, 0.20, 2 * MB),
        spec("hmmer", 0.979, 0.02, 0.04, 0.20, 2 * MB),
        spec("lbm", 0.618, 0.86, 0.02, 0.30, 32 * MB),
        spec("leslie3d", 0.951, 0.17, 0.06, 0.20, 8 * MB),
        spec("libquantum", 0.796, 0.001, 0.02, 0.15, 32 * MB),
        spec("mcf", 0.739, 0.33, 0.18, 0.10, 32 * MB),
        spec("milc", 0.662, 0.06, 0.04, 0.20, 32 * MB),
        spec("namd", 0.975, 0.32, 0.04, 0.15, 2 * MB),
        spec("omnetpp", 0.929, 0.01, 0.15, 0.20, 16 * MB),
        spec("sjeng", 0.994, 0.12, 0.18, 0.15, 2 * MB),
        spec("soplex", 0.849, 0.003, 0.08, 0.15, 16 * MB),
        spec("sphinx3", 0.979, 0.13, 0.08, 0.10, 4 * MB),
        spec("zeusmp", 0.553, 0.27, 0.04, 0.25, 32 * MB),
    ]
}

/// Looks up one benchmark of the suite by name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|s| s.name == name)
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Register allocation for generated programs.
mod regs {
    use condspec_isa::Reg;
    pub const LCG: Reg = Reg::R1;
    pub const LCG_MUL: Reg = Reg::R2;
    pub const STREAM_IDX: Reg = Reg::R3;
    pub const HOT_BASE: Reg = Reg::R4;
    pub const STREAM_BASE: Reg = Reg::R5;
    pub const RAND_BASE: Reg = Reg::R6;
    pub const REGION_MASK: Reg = Reg::R7;
    pub const OUTER: Reg = Reg::R8;
    pub const OUTER_LIM: Reg = Reg::R9;
    pub const ADDR: Reg = Reg::R10;
    pub const DATA: Reg = Reg::R11;
    pub const TMP: Reg = Reg::R12;
    pub const SINK: Reg = Reg::R13;
    pub const FILL_A: Reg = Reg::R14;
    pub const FILL_B: Reg = Reg::R15;
    pub const ZERO: Reg = Reg::R17;
    pub const PHASE: Reg = Reg::R18;
    pub const PHASE_LIM: Reg = Reg::R19;
    pub const DEP: Reg = Reg::R20;
    pub const HOT_IDX: Reg = Reg::R21;
    pub const HOT_MASK: Reg = Reg::R22;
    pub const HOT_DATA: Reg = Reg::R23;
    pub const MISS_DATA: Reg = Reg::R24;
}

/// The three access phases of a generated benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Stream,
    Random,
    Hot,
}

struct Gen<'a> {
    b: ProgramBuilder,
    rng: SplitMix64,
    spec: &'a WorkloadSpec,
    label_counter: usize,
    /// Deterministic fraction accumulators (Bresenham-style), so every
    /// generated body realizes its calibrated fractions exactly instead
    /// of sampling them — a body is emitted once but executed thousands
    /// of times, so sampling noise would be frozen into the benchmark.
    acc_store: f64,
    acc_store_dep: f64,
    acc_hot_dep: f64,
    acc_unpred: f64,
    acc_slow: f64,
}

impl Gen<'_> {
    fn fresh_label(&mut self, prefix: &str) -> String {
        self.label_counter += 1;
        format!("{prefix}{}", self.label_counter)
    }

    /// Deterministic "one in every 1/fraction" decision.
    fn take(acc: &mut f64, fraction: f64) -> bool {
        *acc += fraction;
        if *acc >= 1.0 {
            *acc -= 1.0;
            true
        } else {
            false
        }
    }

    /// A branch slot. Three flavours, as in real code:
    ///
    /// * *unpredictable*: keys on a pseudo-random LCG bit (calibrated
    ///   fraction — drives the misprediction rate);
    /// * *slow*: constant direction, but the condition hangs off the last
    ///   loaded value through a short multiply chain — the branch stays
    ///   unissued while its producing load is in flight (the §II.B
    ///   delinquent window that makes younger memory accesses suspect);
    /// * *quick*: constant direction with always-ready operands.
    fn emit_branch(&mut self, phase: Phase) {
        use regs::*;
        let label = self.fresh_label("b");
        if Self::take(&mut self.acc_unpred, self.spec.unpred_branch_fraction) {
            let bit = self.rng.gen_range(1, 24) as i64;
            self.b.alu_imm(AluOp::Shr, TMP, LCG, bit);
            self.b.alu_imm(AluOp::And, TMP, TMP, 1);
            self.b.branch_to(BranchCond::Eq, TMP, ZERO, &label);
            self.b.alu_imm(AluOp::Add, SINK, SINK, 1);
        } else if Self::take(&mut self.acc_slow, SLOW_BRANCH_FRACTION) {
            // Condition chains on recently loaded (hot) data through a
            // ~30-cycle compute chain, like a floating-point compare:
            // long enough that younger memory accesses issue inside the
            // window and acquire the suspect flag, short enough that the
            // machine is not serialized around it. (The long §II.B
            // windows come from the pointer chases and dependent stores
            // of the miss phases.)
            let _ = phase;
            let source = HOT_DATA;
            self.b.alu(AluOp::Mul, TMP, source, LCG_MUL);
            for _ in 0..SLOW_BRANCH_CHAIN {
                self.b.alu(AluOp::Mul, TMP, TMP, LCG_MUL);
            }
            self.b.branch_to(BranchCond::LtU, TMP, ZERO, &label);
            self.b.alu_imm(AluOp::Add, SINK, SINK, 1);
        } else {
            self.b.branch_to(BranchCond::LtU, OUTER_LIM, OUTER, &label);
            self.b.alu_imm(AluOp::Add, SINK, SINK, 1);
        }
        self.b.label(&label).expect("generated labels are unique");
        if self.spec.fence_after_branches {
            self.b.fence();
        }
    }

    /// Emits the load or store at the address currently in `ADDR`.
    /// Stores are only allowed where they do not break the line-reuse
    /// structure (`may_store`).
    fn emit_mem_op(&mut self, offset: i64, may_store: bool) {
        use regs::*;
        if may_store && Self::take(&mut self.acc_store, self.spec.store_fraction) {
            if Self::take(&mut self.acc_store_dep, STORE_DEP_FRACTION) {
                // Store address depends on loaded data (value-preserving
                // mask): the store waits in the IQ and younger accesses
                // acquire memory-memory security dependences.
                self.b.alu(AluOp::And, DEP, DATA, ZERO);
                self.b.alu(AluOp::Add, ADDR, ADDR, DEP);
            }
            self.b.store(DATA, ADDR, offset);
        } else {
            self.b.load(DATA, ADDR, offset);
        }
    }

    /// One hot-region access (always hits after warm-up). A calibrated
    /// fraction chain on the previous loaded value, like pointer-chasing
    /// code, so hot loads too spend a few cycles unissued in the IQ.
    fn emit_hot_access(&mut self) {
        use regs::*;
        self.b.alu(AluOp::Add, ADDR, regs::HOT_BASE, HOT_IDX);
        self.b.alu_imm(AluOp::Add, HOT_IDX, HOT_IDX, 448);
        self.b.alu(AluOp::And, HOT_IDX, HOT_IDX, HOT_MASK);
        if Self::take(&mut self.acc_hot_dep, HOT_DEP_FRACTION) {
            self.b.alu(AluOp::And, DEP, HOT_DATA, ZERO);
            self.b.alu(AluOp::Add, ADDR, ADDR, DEP);
        }
        if Self::take(&mut self.acc_store, self.spec.store_fraction) {
            self.b.store(HOT_DATA, ADDR, 0);
        } else {
            self.b.load(HOT_DATA, ADDR, 0);
        }
    }

    /// One memory access of the given phase kind.
    ///
    /// Hits and misses interleave on the *same* data structures, as in
    /// real code:
    ///
    /// * the **stream** body walks lines with a 32-byte stride — even
    ///   slots miss on a fresh line, odd slots hit the same line, and
    ///   the whole in-flight window shares a page or two;
    /// * the **random** body touches a random line twice (miss, then a
    ///   same-line hit that arms TPBuf with that page) for three pairs,
    ///   then two hot accesses — whose *different* page keeps an armed
    ///   TPBuf entry in the window, so random-page misses match the
    ///   S-Pattern (the libquantum/bwaves shape);
    /// * the **hot** body always hits.
    fn emit_access(&mut self, phase: Phase, slot: usize) {
        use regs::*;
        match phase {
            Phase::Stream => {
                self.b.alu(AluOp::Add, ADDR, STREAM_BASE, STREAM_IDX);
                self.b.alu_imm(AluOp::Add, STREAM_IDX, STREAM_IDX, 32);
                self.b.alu(AluOp::And, STREAM_IDX, STREAM_IDX, REGION_MASK);
                if slot.is_multiple_of(2) {
                    if slot == CHASE_SLOT && self.spec.pointer_chase {
                        // Indirection: this miss's address depends on the
                        // previous *missed* value.
                        self.b.alu(AluOp::And, DEP, MISS_DATA, ZERO);
                        self.b.alu(AluOp::Add, ADDR, ADDR, DEP);
                    }
                    // Fresh line: always a load, into the miss-value
                    // register so chases and dependent stores see the
                    // full miss latency.
                    self.b.load(MISS_DATA, ADDR, 0);
                } else {
                    self.emit_mem_op(0, true);
                }
            }
            Phase::Random => {
                if slot < 2 {
                    // Hot accesses lead the body: their (different) page
                    // arms TPBuf before this body's random misses query.
                    self.emit_hot_access();
                } else if slot.is_multiple_of(2) {
                    // New random line: a miss.
                    let shift = 3 + ((slot * 7) % 29) as i64;
                    self.b.alu_imm(AluOp::Shr, TMP, LCG, shift);
                    self.b.alu_imm(AluOp::Shl, TMP, TMP, 6);
                    self.b.alu(AluOp::And, TMP, TMP, REGION_MASK);
                    self.b.alu(AluOp::Add, ADDR, RAND_BASE, TMP);
                    if slot == CHASE_SLOT && self.spec.pointer_chase {
                        self.b.alu(AluOp::And, DEP, MISS_DATA, ZERO);
                        self.b.alu(AluOp::Add, ADDR, ADDR, DEP);
                    }
                    self.b.load(MISS_DATA, ADDR, 0);
                } else {
                    // Second word of the same line: a hit on the same
                    // page, arming TPBuf with that page.
                    self.emit_mem_op(8, true);
                }
            }
            Phase::Hot => self.emit_hot_access(),
        }
    }

    /// An inner phase loop performing `iters * BODY_ACCESSES` accesses.
    fn emit_phase(&mut self, phase: Phase, iters: u64) {
        use regs::*;
        if iters == 0 {
            return;
        }
        let head = self.fresh_label("p");
        self.b.li(PHASE, 0);
        self.b.li(PHASE_LIM, iters);
        self.b.label(&head).expect("generated labels are unique");
        // The pseudo-random chain advances once per body. It is kept
        // independent of loaded data so that miss addresses are known
        // early and the machine retains its memory-level parallelism;
        // load-dependence enters through the slow branches and dependent
        // stores instead.
        self.b.alu(AluOp::Mul, LCG, LCG, LCG_MUL);
        self.b.alu_imm(AluOp::Add, LCG, LCG, 0x9e37_79b9);
        for slot in 0..BODY_ACCESSES {
            self.emit_access(phase, slot);
            if slot % 3 == 1 {
                self.emit_branch(phase);
            }
            match slot % 3 {
                0 => self.b.alu(AluOp::Add, FILL_A, FILL_A, DATA),
                1 => self.b.alu_imm(AluOp::Xor, FILL_B, FILL_A, 0x5a),
                _ => self.b.alu(AluOp::Or, SINK, FILL_B, TMP),
            };
        }
        self.b.alu_imm(AluOp::Add, PHASE, PHASE, 1);
        self.b.branch_to(BranchCond::LtU, PHASE, PHASE_LIM, &head);
    }
}

/// Builds the benchmark program: `outer_iterations` passes over the
/// stream / random / hot phase sequence. One outer iteration performs
/// roughly 1024 data accesses (~4700 instructions).
///
/// # Examples
///
/// ```
/// use condspec_workloads::spec::{by_name, build_program};
///
/// let lbm = by_name("lbm").unwrap();
/// let p = build_program(&lbm, 100);
/// assert!(p.len() > 50);
/// ```
pub fn build_program(spec: &WorkloadSpec, outer_iterations: u64) -> Program {
    use regs::*;
    assert!(
        spec.region_bytes.is_power_of_two(),
        "region must be a power of two"
    );

    // Phase lengths from the calibration targets. A stream body of 8
    // accesses misses 4 times; a random body misses 3 times (three
    // miss+hit pairs plus two hot accesses).
    let miss_acc = (ACCESSES_PER_OUTER * (1.0 - spec.l1_hit_target)).max(0.0);
    let stream_bodies = miss_acc * spec.seq_miss_fraction / 4.0;
    let rand_bodies = miss_acc * (1.0 - spec.seq_miss_fraction) / 3.0;
    let stream_acc = (stream_bodies * 8.0).min(ACCESSES_PER_OUTER);
    let rand_acc = (rand_bodies * 8.0).min(ACCESSES_PER_OUTER - stream_acc);
    let hot_acc = (ACCESSES_PER_OUTER - stream_acc - rand_acc).max(0.0);
    let iters = |acc: f64| -> u64 {
        if acc < 0.5 {
            0
        } else {
            ((acc / BODY_ACCESSES as f64).round() as u64).max(1)
        }
    };

    let mut g = Gen {
        b: ProgramBuilder::new(CODE_BASE),
        rng: SplitMix64::new(spec.seed),
        spec,
        label_counter: 0,
        acc_store: 0.0,
        acc_store_dep: 0.0,
        acc_hot_dep: 0.0,
        acc_unpred: 0.0,
        acc_slow: 0.0,
    };

    // Prologue.
    g.b.li(LCG, spec.seed | 1);
    g.b.li(LCG_MUL, 6364136223846793005);
    g.b.li(STREAM_IDX, 0);
    g.b.li(regs::HOT_BASE, super::spec::HOT_BASE);
    g.b.li(regs::STREAM_BASE, super::spec::STREAM_BASE);
    g.b.li(regs::RAND_BASE, super::spec::RAND_BASE);
    g.b.li(REGION_MASK, (spec.region_bytes - 1) & !7);
    g.b.li(HOT_MASK, (HOT_BYTES - 1) & !63);
    g.b.li(HOT_IDX, 0);
    g.b.li(ZERO, 0);
    g.b.li(OUTER, 0);
    g.b.li(OUTER_LIM, outer_iterations);
    g.b.label("outer").expect("fresh label");

    g.emit_phase(Phase::Stream, iters(stream_acc));
    g.emit_phase(Phase::Random, iters(rand_acc));
    g.emit_phase(Phase::Hot, iters(hot_acc));

    g.b.alu_imm(AluOp::Add, OUTER, OUTER, 1);
    g.b.branch_to(BranchCond::LtU, OUTER, OUTER_LIM, "outer");
    g.b.halt();

    // Hot region is initialized data so steady state arrives quickly.
    g.b.reserve(super::spec::HOT_BASE, HOT_BYTES as usize);
    g.b.build().expect("generated benchmark assembles")
}

/// Approximate committed instructions per outer iteration (used by
/// harnesses to size runs).
pub fn insts_per_outer(spec: &WorkloadSpec) -> u64 {
    // ~4.3 instructions per access slot plus loop overhead.
    (ACCESSES_PER_OUTER * 4.6) as u64 + 40 + (spec.store_fraction * 100.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_unique() {
        let s = suite();
        assert_eq!(s.len(), 22);
        let names: std::collections::HashSet<&str> = s.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 22);
        for w in &s {
            assert!(w.l1_hit_target > 0.5 && w.l1_hit_target <= 1.0);
            assert!(w.seq_miss_fraction >= 0.0 && w.seq_miss_fraction <= 1.0);
            assert!(w.region_bytes.is_power_of_two());
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("lbm").is_some());
        assert!(by_name("notabenchmark").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let w = by_name("mcf").unwrap();
        let a = build_program(&w, 5);
        let b = build_program(&w, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = build_program(&by_name("mcf").unwrap(), 5);
        let b = build_program(&by_name("milc").unwrap(), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn iterations_scale_nothing_but_limit() {
        let w = by_name("gcc").unwrap();
        let a = build_program(&w, 5);
        let b = build_program(&w, 500);
        assert_eq!(
            a.len(),
            b.len(),
            "iteration count is a register limit, not code size"
        );
    }

    #[test]
    fn programs_contain_expected_mix() {
        let w = by_name("bwaves").unwrap();
        let p = build_program(&w, 1);
        let loads = p.insts().iter().filter(|i| i.is_load()).count();
        let stores = p.insts().iter().filter(|i| i.is_store()).count();
        let branches = p.insts().iter().filter(|i| i.is_branch()).count();
        assert!(loads > 5, "got {loads} loads");
        assert!(stores > 1, "got {stores} stores");
        assert!(branches > 4, "got {branches} branches");
    }

    #[test]
    fn high_hit_benchmark_has_hot_phase_only_misses_rarely() {
        // GemsFDTD targets 99.9%: the miss phases must still exist (at
        // least one body) so the rate is not exactly 1.0.
        let w = by_name("GemsFDTD").unwrap();
        let p = build_program(&w, 1);
        assert!(p.len() > 100);
    }

    #[test]
    fn lbm_streams_dominate() {
        let w = by_name("lbm").unwrap();
        // 1024 * 0.382 * 0.86 ≈ 336 streaming accesses per outer
        // iteration — far longer than the 192-entry ROB window.
        let stream = ACCESSES_PER_OUTER * (1.0 - w.l1_hit_target) * w.seq_miss_fraction;
        assert!(stream > 300.0);
    }
}

//! Executable Spectre proof-of-concept gadgets.
//!
//! Each gadget is a complete victim program with a documented memory
//! layout, so the attack orchestrator (`condspec-attacks`) can train the
//! predictor, flush/prime the relevant lines, supply the malicious input
//! and probe the side channel afterwards.
//!
//! All layouts follow the structure of the paper's Listings 1 and 2: an
//! instruction *A* speculatively reads the secret, a dependent
//! instruction *B* transmits it by touching a probe-array line selected
//! by the secret value. The page-stride variants (`shl 12`, as in the
//! paper's PoC) encode the secret at page granularity in a shared probe
//! array; the same-page variants (`shl 6`) encode it at cache-line
//! granularity *inside the secret's own page*, which is what makes the
//! non-shared-memory attacks of Table IV rows 5-6 invisible to TPBuf.

use condspec_isa::{AluOp, BranchCond, Program, ProgramBuilder, Reg};
use std::sync::Arc;

/// Fixed virtual-address layout shared by all gadgets.
pub mod layout {
    /// Victim code base.
    pub const CODE: u64 = 0x0001_0000;
    /// Attacker-controlled input word (the index `x`).
    pub const INPUT: u64 = 0x0002_0000;
    /// Bounds word (`array1_len`) — flushed to open the window.
    pub const LEN: u64 = 0x0003_0000;
    /// Victim's legitimate array (256 bytes valid).
    pub const ARRAY1: u64 = 0x0004_0000;
    /// The secret byte's address.
    pub const SECRET: u64 = 0x0050_0000;
    /// Shared probe array: 256 slots with page (4 KiB) stride.
    pub const PROBE: u64 = 0x0100_0000;
    /// V2 function-pointer slot.
    pub const FNPTR: u64 = 0x0006_0000;
    /// V4 pointer slot "P".
    pub const PTR_SLOT: u64 = 0x0007_0000;
    /// V4 benign redirect target.
    pub const BENIGN: u64 = 0x0008_0000;
    /// Page stride used by shared-memory transmit gadgets.
    pub const PAGE_STRIDE: u64 = 4096;
    /// Line stride used by same-page transmit gadgets.
    pub const LINE_STRIDE: u64 = 64;
    /// Number of probe slots for page-stride gadgets (one per byte
    /// value).
    pub const PAGE_SLOTS: usize = 256;
    /// Number of probe slots for same-page gadgets (bounded by the page
    /// size: the transmit range must stay inside the secret's page).
    pub const SAME_PAGE_SLOTS: usize = 60;
    /// The planted secret byte (must be `< SAME_PAGE_SLOTS` so both
    /// gadget families can encode it, and nonzero so the V4 architectural
    /// replay, which transmits slot 0, is distinguishable).
    pub const SECRET_BYTE: u8 = 42;
}

/// Which Spectre variant a gadget implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetKind {
    /// Bounds-check bypass via conditional-branch misprediction
    /// (Listing 2), transmitting through the shared page-stride probe
    /// array.
    V1,
    /// Branch-target injection: a poisoned BTB entry sends an indirect
    /// jump to a disclosure gadget.
    V2,
    /// Speculative store bypass (Listing 1): a load speculatively reads a
    /// stale pointer and dereferences the secret.
    V4,
    /// V1 control flow, but the transmit array lives in the *same
    /// physical page* as the secret with cache-line stride — the shape
    /// that evades the S-Pattern (used for the Prime+Probe and
    /// Evict+Time non-shared scenarios).
    V1SamePage,
    /// V1 control flow with a page-plus-line (4160-byte) transmit stride,
    /// so every secret value maps to a distinct L1 set *and* a distinct
    /// page — used by the shared-memory Prime+Probe (SpectrePrime-like)
    /// scenario, where the attacker monitors sets rather than lines.
    V1SetStride,
    /// Return-stack speculation (SpectreRSB / ret2spec, the paper's
    /// related-work reference [35]): the attacker leaves a poisoned
    /// return address on the shared RAS; the victim's `ret` — whose real
    /// target is a delinquent load away — speculatively returns into the
    /// disclosure gadget.
    Rsb,
}

impl GadgetKind {
    /// All gadget kinds.
    pub const ALL: [GadgetKind; 6] = [
        GadgetKind::V1,
        GadgetKind::V2,
        GadgetKind::V4,
        GadgetKind::V1SamePage,
        GadgetKind::V1SetStride,
        GadgetKind::Rsb,
    ];

    /// A stable machine-readable key (CLI values, job hashes). The
    /// inverse of [`GadgetKind::from_key`].
    pub fn key(&self) -> &'static str {
        match self {
            GadgetKind::V1 => "v1",
            GadgetKind::V2 => "v2",
            GadgetKind::V4 => "v4",
            GadgetKind::V1SamePage => "v1-same-page",
            GadgetKind::V1SetStride => "v1-set-stride",
            GadgetKind::Rsb => "rsb",
        }
    }

    /// Parses a [`GadgetKind::key`] value.
    pub fn from_key(key: &str) -> Option<GadgetKind> {
        GadgetKind::ALL.iter().copied().find(|k| k.key() == key)
    }
}

/// A built gadget: the victim program plus everything the attacker needs
/// to know about its layout.
#[derive(Debug, Clone)]
pub struct SpectreGadget {
    /// Variant.
    pub kind: GadgetKind,
    /// The victim program, shared so loading it into a simulator is a
    /// reference-count bump rather than a deep copy (the probe-array data
    /// segments are large).
    pub program: Arc<Program>,
    /// Address of the attacker-controlled input word.
    pub input_addr: u64,
    /// Address of the bounds word (flush target), if the gadget has one.
    pub len_addr: Option<u64>,
    /// Address of the secret byte.
    pub secret_addr: u64,
    /// Base of the transmit/probe array.
    pub probe_base: u64,
    /// Stride between probe slots.
    pub probe_stride: u64,
    /// Number of probe slots (distinct encodable secret values).
    pub probe_slots: usize,
    /// PC of the mispredicted conditional branch (V1 family).
    pub branch_pc: Option<u64>,
    /// PC of the indirect jump (V2).
    pub indirect_pc: Option<u64>,
    /// Address of the disclosure gadget (V2 BTB poison target).
    pub gadget_entry: Option<u64>,
    /// Address the indirect jump architecturally goes to (V2).
    pub legit_target: Option<u64>,
    /// Address of the V4 pointer slot / V2 function-pointer slot that the
    /// attacker flushes to widen the window.
    pub pointer_slot: Option<u64>,
    /// The in-bounds input used for training runs.
    pub train_input: u64,
    /// The malicious input that reaches the secret.
    pub attack_input: u64,
    /// The planted secret bytes (defaults to `[SECRET_BYTE]`).
    secret: Vec<u8>,
}

impl SpectreGadget {
    /// Builds the gadget for `kind` with the default layout and the
    /// default planted secret ([`layout::SECRET_BYTE`]).
    pub fn build(kind: GadgetKind) -> SpectreGadget {
        Self::build_with_secret(kind, &[layout::SECRET_BYTE])
    }

    /// Builds the V1 gadget with an `lfence` inserted right after the
    /// bounds check — the software mitigation the paper's related-work
    /// section contrasts against. The fence stops the attack even on the
    /// unprotected core, at the cost of serializing every call.
    ///
    /// # Panics
    ///
    /// Panics for non-V1 kinds (the mitigation is gadget-specific).
    pub fn build_fenced(kind: GadgetKind) -> SpectreGadget {
        assert_eq!(kind, GadgetKind::V1, "fenced variant exists for V1 only");
        let mut gadget = build_v1(V1Mode::PageStride);
        // Rebuild with a fence as the first instruction of the
        // speculative body (right after the branch).
        let branch_idx = gadget
            .program
            .insts()
            .iter()
            .position(|i| i.is_branch())
            .expect("v1 has a branch");
        let mut insts = gadget.program.insts().to_vec();
        insts.insert(branch_idx + 1, condspec_isa::Inst::Fence);
        // Instruction addresses after the insertion shift by 4; the only
        // absolute target in V1 is the branch's forward target, which
        // lies after the insertion point.
        for inst in &mut insts[..=branch_idx] {
            if let condspec_isa::Inst::Branch { target, .. } = inst {
                *target += condspec_isa::INST_BYTES;
            }
        }
        gadget.program = Arc::new(Program::new(
            gadget.program.code_base(),
            insts,
            gadget.program.data().to_vec(),
        ));
        gadget
    }

    /// Builds the gadget with an arbitrary secret byte string planted at
    /// [`layout::SECRET`]. The gadget's `attack_input` points at the
    /// first byte; an orchestrator reads byte `i` by adding `i` to it.
    ///
    /// # Panics
    ///
    /// Panics if `secret` is empty, longer than a cache line, or (for
    /// the same-page variant) contains bytes outside the encodable
    /// range.
    pub fn build_with_secret(kind: GadgetKind, secret: &[u8]) -> SpectreGadget {
        assert!(!secret.is_empty(), "a secret must be planted");
        assert!(secret.len() <= 64, "the secret must fit one cache line");
        let mut gadget = match kind {
            GadgetKind::V1 => build_v1(V1Mode::PageStride),
            GadgetKind::V1SamePage => build_v1(V1Mode::SamePage),
            GadgetKind::V1SetStride => build_v1(V1Mode::SetStride),
            GadgetKind::V2 => build_v2(),
            GadgetKind::V4 => build_v4(),
            GadgetKind::Rsb => build_rsb(),
        };
        for b in secret {
            assert!(
                (*b as usize) < gadget.probe_slots,
                "secret byte {b} is not encodable by this gadget's {} probe slots",
                gadget.probe_slots
            );
        }
        gadget.secret = secret.to_vec();
        // Re-plant the data segment.
        let program = &gadget.program;
        let mut data = program.data().to_vec();
        for seg in &mut data {
            if seg.base == layout::SECRET {
                seg.bytes = secret.to_vec();
            }
        }
        gadget.program = Arc::new(crate::gadgets::Program::new(
            program.code_base(),
            program.insts().to_vec(),
            data,
        ));
        gadget
    }

    /// The probe-slot address that encodes `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the encodable range.
    pub fn probe_slot_addr(&self, value: usize) -> u64 {
        assert!(
            value < self.probe_slots,
            "value {value} exceeds probe slots"
        );
        self.probe_base + value as u64 * self.probe_stride
    }

    /// The first planted secret byte (for single-byte verdicts).
    pub fn planted_secret(&self) -> u8 {
        self.secret[0]
    }

    /// The full planted secret (for multi-byte extraction demos).
    pub fn planted_secret_bytes(&self) -> &[u8] {
        &self.secret
    }
}

/// Length of the value-preserving multiply chain that widens the
/// speculation window (each multiply costs 3 dependent cycles).
const WINDOW_CHAIN: usize = 80;

/// The three V1 transmit-array layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V1Mode {
    /// Page stride through the shared probe array (`shl 12`).
    PageStride,
    /// Line stride inside the secret's own page (`shl 6`).
    SamePage,
    /// Page-plus-line stride through the shared probe array (distinct L1
    /// sets per value, for set-granular channels).
    SetStride,
}

fn build_v1(mode: V1Mode) -> SpectreGadget {
    use layout::*;
    let mut b = ProgramBuilder::new(CODE);
    // Register conventions: r10 array1, r11 &len, r12 &input, r13 probe
    // base, r14 x, r1 len, r2 secret byte, r3 shifted index, r8 transmit
    // address.
    b.li(Reg::R10, ARRAY1);
    b.li(Reg::R11, LEN);
    b.li(Reg::R12, INPUT);
    let (probe_base, stride, slots): (u64, u64, usize) = match mode {
        // Transmit inside the secret's own page, starting one line above
        // the secret byte itself.
        V1Mode::SamePage => (SECRET + LINE_STRIDE, LINE_STRIDE, SAME_PAGE_SLOTS),
        V1Mode::PageStride => (PROBE, PAGE_STRIDE, PAGE_SLOTS),
        V1Mode::SetStride => (PROBE, PAGE_STRIDE + LINE_STRIDE, PAGE_SLOTS),
    };
    b.li(Reg::R13, probe_base);
    b.li(Reg::R16, 1);
    if mode != V1Mode::PageStride {
        // In the eviction-based scenarios the attacker cannot flush the
        // secret line, and the victim legitimately touches its own secret
        // beforehand, so the secret line is cached and the A -> B leak
        // chain is fast.
        b.load_byte(Reg::R20, Reg::R0, SECRET as i64);
    }
    b.load(Reg::R14, Reg::R12, 0); // x = *input
    b.load(Reg::R1, Reg::R11, 0); // len = *len_addr (attacker flushes LEN)
                                  // Long dependence chain on the bounds value (paper §II.B): keeps the
                                  // branch unresolved in the Issue Queue long enough for the disclosure
                                  // chain to issue, independent of where `len` is cached.
    for _ in 0..WINDOW_CHAIN {
        b.alu(AluOp::Mul, Reg::R1, Reg::R1, Reg::R16);
    }
    let branch_pc = b.here();
    b.branch_to(BranchCond::GeU, Reg::R14, Reg::R1, "skip"); // bounds check
    b.alu(AluOp::Add, Reg::R8, Reg::R10, Reg::R14);
    b.load_byte(Reg::R2, Reg::R8, 0); // A: array1[x] — the secret when x is OOB
                                      // B's slot address: secret * stride + probe_base. A multiply keeps
                                      // the dependence chain A -> B explicit for any stride.
    b.li(Reg::R15, stride);
    b.alu(AluOp::Mul, Reg::R3, Reg::R2, Reg::R15);
    b.alu(AluOp::Add, Reg::R8, Reg::R13, Reg::R3);
    b.load(Reg::R4, Reg::R8, 0); // B: transmit
    b.label("skip").expect("fresh label");
    b.halt();
    // Data: input + len + array1 + the secret byte.
    b.data_u64s(INPUT, &[0]);
    b.data_u64s(LEN, &[256]);
    b.data_segment(ARRAY1, (0..=255u8).collect());
    b.data_segment(SECRET, vec![SECRET_BYTE]);
    SpectreGadget {
        kind: match mode {
            V1Mode::PageStride => GadgetKind::V1,
            V1Mode::SamePage => GadgetKind::V1SamePage,
            V1Mode::SetStride => GadgetKind::V1SetStride,
        },
        program: Arc::new(b.build().expect("gadget assembles")),
        input_addr: INPUT,
        len_addr: Some(LEN),
        secret_addr: SECRET,
        probe_base,
        probe_stride: stride,
        probe_slots: slots,
        branch_pc: Some(branch_pc),
        indirect_pc: None,
        gadget_entry: None,
        legit_target: None,
        pointer_slot: None,
        train_input: 17, // in bounds
        attack_input: SECRET - ARRAY1,
        secret: vec![SECRET_BYTE],
    }
}

fn build_v2() -> SpectreGadget {
    use layout::*;
    let mut b = ProgramBuilder::new(CODE);
    b.li(Reg::R20, FNPTR);
    b.li(Reg::R13, PROBE);
    b.li(Reg::R21, SECRET);
    b.li(Reg::R16, 1);
    b.load(Reg::R22, Reg::R20, 0); // fn ptr — attacker flushes FNPTR
                                   // Dependence chain on the jump target: the indirect jump stays
                                   // unresolved while the poisoned-path gadget executes, even when the
                                   // gadget's own code and data are cold on the first round.
    for _ in 0..(2 * WINDOW_CHAIN + 40) {
        b.alu(AluOp::Mul, Reg::R22, Reg::R22, Reg::R16);
    }
    let indirect_pc = b.here();
    b.jump_indirect(Reg::R22, 0);
    let legit_target = b.here();
    b.label("legit").expect("fresh label");
    b.halt();
    let gadget_entry = b.here();
    b.label("gadget").expect("fresh label");
    b.load_byte(Reg::R2, Reg::R21, 0); // A: the secret
    b.alu_imm(AluOp::Shl, Reg::R3, Reg::R2, 12);
    b.alu(AluOp::Add, Reg::R8, Reg::R13, Reg::R3);
    b.load(Reg::R4, Reg::R8, 0); // B: transmit
    b.halt();
    b.data_u64s(FNPTR, &[legit_target]);
    b.data_segment(SECRET, vec![SECRET_BYTE]);
    b.data_u64s(INPUT, &[0]);
    SpectreGadget {
        kind: GadgetKind::V2,
        program: Arc::new(b.build().expect("gadget assembles")),
        input_addr: INPUT,
        len_addr: None,
        secret_addr: SECRET,
        probe_base: PROBE,
        probe_stride: PAGE_STRIDE,
        probe_slots: PAGE_SLOTS,
        branch_pc: None,
        indirect_pc: Some(indirect_pc),
        gadget_entry: Some(gadget_entry),
        legit_target: Some(legit_target),
        pointer_slot: Some(FNPTR),
        train_input: 0,
        attack_input: 0,
        secret: vec![SECRET_BYTE],
    }
}

fn build_v4() -> SpectreGadget {
    use layout::*;
    let mut b = ProgramBuilder::new(CODE);
    // Listing 1 shape: a store whose address resolves late, bypassed by a
    // dependent load chain that dereferences the stale pointer.
    b.li(Reg::R10, PTR_SLOT);
    b.li(Reg::R11, BENIGN);
    b.li(Reg::R13, PROBE);
    // Warm the pointer slot (the victim uses P regularly).
    b.load(Reg::R19, Reg::R10, 0);
    b.fence(); // the warm-up is not part of the speculative window
               // Slow chain computing the store address: ~120 dependent multiplies.
    b.li(Reg::R5, 1);
    for _ in 0..120 {
        b.alu(AluOp::Mul, Reg::R5, Reg::R5, Reg::R5);
    }
    b.alu(AluOp::Mul, Reg::R6, Reg::R10, Reg::R5); // r6 = P (late)
    b.store(Reg::R11, Reg::R6, 0); // i1: *P = &benign   (unresolved store)
    b.load(Reg::R2, Reg::R10, 0); // i4: speculative bypass reads stale *P = &secret
    b.load_byte(Reg::R3, Reg::R2, 0); // A: secret byte
    b.alu_imm(AluOp::Shl, Reg::R4, Reg::R3, 12);
    b.alu(AluOp::Add, Reg::R8, Reg::R13, Reg::R4);
    b.load(Reg::R9, Reg::R8, 0); // B: transmit
    b.halt();
    b.data_u64s(PTR_SLOT, &[SECRET]);
    b.data_segment(BENIGN, vec![0; 64]);
    b.data_segment(SECRET, vec![SECRET_BYTE]);
    b.data_u64s(INPUT, &[0]);
    SpectreGadget {
        kind: GadgetKind::V4,
        program: Arc::new(b.build().expect("gadget assembles")),
        input_addr: INPUT,
        len_addr: None,
        secret_addr: SECRET,
        probe_base: PROBE,
        probe_stride: PAGE_STRIDE,
        probe_slots: PAGE_SLOTS,
        branch_pc: None,
        indirect_pc: None,
        gadget_entry: None,
        legit_target: None,
        pointer_slot: Some(PTR_SLOT),
        train_input: 0,
        attack_input: 0,
        secret: vec![SECRET_BYTE],
    }
}

/// The SpectreRSB victim: loads its return address from memory (the
/// attacker flushes that slot, so the `ret` stays unresolved), returns —
/// and the return-address-stack predictor, polluted by the attacker's
/// unbalanced calls, sends the wrong path into the disclosure gadget.
fn build_rsb() -> SpectreGadget {
    use layout::*;
    let mut b = ProgramBuilder::new(CODE);
    b.li(Reg::R13, PROBE);
    b.li(Reg::R21, SECRET);
    b.li(Reg::R20, FNPTR); // reuse the pointer slot for the return address
    b.li(Reg::R16, 1);
    b.load(Reg::R31, Reg::R20, 0); // return address — attacker flushes FNPTR
                                   // Keep the ret unresolved while the predicted path runs.
    for _ in 0..(2 * WINDOW_CHAIN + 40) {
        b.alu(AluOp::Mul, Reg::R31, Reg::R31, Reg::R16);
    }
    let indirect_pc = b.here();
    b.ret(Reg::R31); // predicted from the (poisoned) RAS
    let legit_target = b.here();
    b.label("legit").expect("fresh label");
    b.halt();
    let gadget_entry = b.here();
    b.label("gadget").expect("fresh label");
    b.load_byte(Reg::R2, Reg::R21, 0); // A: the secret
    b.li(Reg::R15, PAGE_STRIDE);
    b.alu(AluOp::Mul, Reg::R3, Reg::R2, Reg::R15);
    b.alu(AluOp::Add, Reg::R8, Reg::R13, Reg::R3);
    b.load(Reg::R4, Reg::R8, 0); // B: transmit
    b.halt();
    b.data_u64s(FNPTR, &[legit_target]);
    b.data_segment(SECRET, vec![SECRET_BYTE]);
    b.data_u64s(INPUT, &[0]);
    SpectreGadget {
        kind: GadgetKind::Rsb,
        program: Arc::new(b.build().expect("gadget assembles")),
        input_addr: INPUT,
        len_addr: None,
        secret_addr: SECRET,
        probe_base: PROBE,
        probe_stride: PAGE_STRIDE,
        probe_slots: PAGE_SLOTS,
        branch_pc: None,
        indirect_pc: Some(indirect_pc),
        gadget_entry: Some(gadget_entry),
        legit_target: Some(legit_target),
        pointer_slot: Some(FNPTR),
        train_input: 0,
        attack_input: 0,
        secret: vec![SECRET_BYTE],
    }
}

/// The attacker's RAS-pollution program: a call whose callee *discards*
/// its return address and halts, leaving the pushed entry (pointing one
/// instruction past the call) stale on the shared return-address stack.
/// The attacker places a `jump <poison_target>` at that address, so the
/// victim's stale-RAS return speculatively lands on the poison target.
pub fn rsb_pollution_program(poison_target: u64) -> Program {
    // Run in the attacker's own code region, away from the victim's.
    let mut b = ProgramBuilder::new(0x000f_0000);
    b.call_to("callee", Reg::R31);
    // The RAS entry points here: redirect speculation into the victim's
    // disclosure gadget. (Architecturally never executed: the callee
    // halts.)
    b.jump(poison_target);
    b.label("callee").expect("fresh label");
    b.halt(); // never returns: the RAS entry is left dangling
    b.build().expect("pollution program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gadgets_assemble() {
        for kind in GadgetKind::ALL {
            let g = SpectreGadget::build(kind);
            assert!(!g.program.is_empty());
            assert_eq!(g.kind, kind);
            assert!(g.probe_slots > usize::from(layout::SECRET_BYTE));
        }
    }

    #[test]
    fn rsb_gadget_layout() {
        let g = SpectreGadget::build(GadgetKind::Rsb);
        assert_ne!(g.legit_target, g.gadget_entry);
        let pollution = rsb_pollution_program(g.gadget_entry.unwrap());
        assert!(pollution.len() >= 3);
    }

    #[test]
    fn v1_layout_reaches_secret() {
        let g = SpectreGadget::build(GadgetKind::V1);
        assert_eq!(layout::ARRAY1 + g.attack_input, g.secret_addr);
        assert!(g.train_input < 256);
        assert!(g.branch_pc.is_some());
        assert_eq!(g.probe_stride, 4096);
    }

    #[test]
    fn same_page_variant_stays_in_secret_page() {
        let g = SpectreGadget::build(GadgetKind::V1SamePage);
        let last = g.probe_slot_addr(g.probe_slots - 1) + 63;
        assert_eq!(
            last >> 12,
            g.secret_addr >> 12,
            "transmit array must share the secret's page to evade TPBuf"
        );
        assert_eq!(g.probe_stride, 64);
    }

    #[test]
    fn v2_pointer_and_targets() {
        let g = SpectreGadget::build(GadgetKind::V2);
        let legit = g.legit_target.unwrap();
        let gadget = g.gadget_entry.unwrap();
        assert_ne!(legit, gadget);
        // The function pointer in the data segment points at legit.
        let fnptr_seg = g
            .program
            .data()
            .iter()
            .find(|s| s.base == layout::FNPTR)
            .expect("fnptr segment");
        assert_eq!(
            u64::from_le_bytes(fnptr_seg.bytes[..8].try_into().unwrap()),
            legit
        );
    }

    #[test]
    fn v4_pointer_slot_holds_secret_address() {
        let g = SpectreGadget::build(GadgetKind::V4);
        let seg = g
            .program
            .data()
            .iter()
            .find(|s| s.base == layout::PTR_SLOT)
            .expect("pointer slot segment");
        assert_eq!(
            u64::from_le_bytes(seg.bytes[..8].try_into().unwrap()),
            g.secret_addr
        );
    }

    #[test]
    fn probe_slot_addresses() {
        let g = SpectreGadget::build(GadgetKind::V1);
        assert_eq!(g.probe_slot_addr(0), layout::PROBE);
        assert_eq!(g.probe_slot_addr(42), layout::PROBE + 42 * 4096);
    }

    #[test]
    #[should_panic(expected = "exceeds probe slots")]
    fn probe_slot_out_of_range_panics() {
        let g = SpectreGadget::build(GadgetKind::V1SamePage);
        let _ = g.probe_slot_addr(255);
    }
}

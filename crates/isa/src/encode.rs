//! Fixed-width binary instruction encoding.
//!
//! Every instruction encodes to exactly [`ENCODED_BYTES`] bytes. The layout
//! is:
//!
//! ```text
//! byte 0      opcode
//! byte 1      register field A (rd / store src / link / branch rs1)
//! byte 2      register field B (rs1 / base)
//! byte 3      sub-opcode (AluOp / BranchCond / MemSize)
//! byte 4      register field C (rs2 / branch rs2)
//! bytes 5-12  64-bit little-endian immediate / offset / target
//! bytes 13-15 reserved, must be zero on encode
//! ```
//!
//! The encoding exists for storing programs and for round-trip testing of
//! the ISA; the simulator itself operates on decoded [`Inst`] values.

use crate::inst::{AluOp, BranchCond, Inst, MemSize};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Size in bytes of one encoded instruction.
pub const ENCODED_BYTES: usize = 16;

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// A register field is out of range.
    BadReg(u8),
    /// The sub-opcode byte is invalid for this instruction.
    BadSubOp(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadReg(b) => write!(f, "invalid register index {b}"),
            DecodeError::BadSubOp(b) => write!(f, "invalid sub-opcode byte {b:#04x}"),
        }
    }
}

impl Error for DecodeError {}

const OP_NOP: u8 = 0;
const OP_HALT: u8 = 1;
const OP_FENCE: u8 = 2;
const OP_ALU: u8 = 3;
const OP_ALU_IMM: u8 = 4;
const OP_LOAD_IMM: u8 = 5;
const OP_LOAD: u8 = 6;
const OP_STORE: u8 = 7;
const OP_BRANCH: u8 = 8;
const OP_JUMP: u8 = 9;
const OP_JUMP_INDIRECT: u8 = 10;
const OP_CALL: u8 = 11;
const OP_RET: u8 = 12;
const OP_FLUSH: u8 = 13;

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Mul => 7,
        AluOp::SltU => 8,
        AluOp::Slt => 9,
    }
}

fn alu_from_code(c: u8) -> Result<AluOp, DecodeError> {
    Ok(match c {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Shr,
        7 => AluOp::Mul,
        8 => AluOp::SltU,
        9 => AluOp::Slt,
        other => return Err(DecodeError::BadSubOp(other)),
    })
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::LtU => 4,
        BranchCond::GeU => 5,
    }
}

fn cond_from_code(c: u8) -> Result<BranchCond, DecodeError> {
    Ok(match c {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::LtU,
        5 => BranchCond::GeU,
        other => return Err(DecodeError::BadSubOp(other)),
    })
}

fn size_code(s: MemSize) -> u8 {
    match s {
        MemSize::B1 => 0,
        MemSize::B2 => 1,
        MemSize::B4 => 2,
        MemSize::B8 => 3,
    }
}

fn size_from_code(c: u8) -> Result<MemSize, DecodeError> {
    Ok(match c {
        0 => MemSize::B1,
        1 => MemSize::B2,
        2 => MemSize::B4,
        3 => MemSize::B8,
        other => return Err(DecodeError::BadSubOp(other)),
    })
}

fn reg_from(b: u8) -> Result<Reg, DecodeError> {
    Reg::from_index(b as usize).ok_or(DecodeError::BadReg(b))
}

/// Encodes an instruction into its fixed 16-byte representation.
///
/// # Examples
///
/// ```
/// use condspec_isa::{encode, decode, Inst, Reg, MemSize};
///
/// let inst = Inst::Load { rd: Reg::R1, base: Reg::R2, offset: -64, size: MemSize::B8 };
/// let bytes = encode(&inst);
/// assert_eq!(decode(&bytes), Ok(inst));
/// ```
pub fn encode(inst: &Inst) -> [u8; ENCODED_BYTES] {
    let mut b = [0u8; ENCODED_BYTES];
    let imm = |b: &mut [u8; ENCODED_BYTES], v: u64| b[5..13].copy_from_slice(&v.to_le_bytes());
    match *inst {
        Inst::Nop => b[0] = OP_NOP,
        Inst::Halt => b[0] = OP_HALT,
        Inst::Fence => b[0] = OP_FENCE,
        Inst::Alu { op, rd, rs1, rs2 } => {
            b[0] = OP_ALU;
            b[1] = rd.index() as u8;
            b[2] = rs1.index() as u8;
            b[3] = alu_code(op);
            b[4] = rs2.index() as u8;
        }
        Inst::AluImm {
            op,
            rd,
            rs1,
            imm: v,
        } => {
            b[0] = OP_ALU_IMM;
            b[1] = rd.index() as u8;
            b[2] = rs1.index() as u8;
            b[3] = alu_code(op);
            imm(&mut b, v as u64);
        }
        Inst::LoadImm { rd, imm: v } => {
            b[0] = OP_LOAD_IMM;
            b[1] = rd.index() as u8;
            imm(&mut b, v);
        }
        Inst::Load {
            rd,
            base,
            offset,
            size,
        } => {
            b[0] = OP_LOAD;
            b[1] = rd.index() as u8;
            b[2] = base.index() as u8;
            b[3] = size_code(size);
            imm(&mut b, offset as u64);
        }
        Inst::Store {
            src,
            base,
            offset,
            size,
        } => {
            b[0] = OP_STORE;
            b[1] = src.index() as u8;
            b[2] = base.index() as u8;
            b[3] = size_code(size);
            imm(&mut b, offset as u64);
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            b[0] = OP_BRANCH;
            b[1] = rs1.index() as u8;
            b[3] = cond_code(cond);
            b[4] = rs2.index() as u8;
            imm(&mut b, target);
        }
        Inst::Jump { target } => {
            b[0] = OP_JUMP;
            imm(&mut b, target);
        }
        Inst::JumpIndirect { base, offset } => {
            b[0] = OP_JUMP_INDIRECT;
            b[2] = base.index() as u8;
            imm(&mut b, offset as u64);
        }
        Inst::Call { target, link } => {
            b[0] = OP_CALL;
            b[1] = link.index() as u8;
            imm(&mut b, target);
        }
        Inst::Ret { link } => {
            b[0] = OP_RET;
            b[1] = link.index() as u8;
        }
        Inst::Flush { base, offset } => {
            b[0] = OP_FLUSH;
            b[2] = base.index() as u8;
            imm(&mut b, offset as u64);
        }
    }
    b
}

/// Decodes a 16-byte instruction encoding.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the opcode, a register index, or a
/// sub-opcode field is invalid.
pub fn decode(bytes: &[u8; ENCODED_BYTES]) -> Result<Inst, DecodeError> {
    let imm_u64 = u64::from_le_bytes(bytes[5..13].try_into().expect("fixed slice"));
    let imm_i64 = imm_u64 as i64;
    Ok(match bytes[0] {
        OP_NOP => Inst::Nop,
        OP_HALT => Inst::Halt,
        OP_FENCE => Inst::Fence,
        OP_ALU => Inst::Alu {
            op: alu_from_code(bytes[3])?,
            rd: reg_from(bytes[1])?,
            rs1: reg_from(bytes[2])?,
            rs2: reg_from(bytes[4])?,
        },
        OP_ALU_IMM => Inst::AluImm {
            op: alu_from_code(bytes[3])?,
            rd: reg_from(bytes[1])?,
            rs1: reg_from(bytes[2])?,
            imm: imm_i64,
        },
        OP_LOAD_IMM => Inst::LoadImm {
            rd: reg_from(bytes[1])?,
            imm: imm_u64,
        },
        OP_LOAD => Inst::Load {
            rd: reg_from(bytes[1])?,
            base: reg_from(bytes[2])?,
            offset: imm_i64,
            size: size_from_code(bytes[3])?,
        },
        OP_STORE => Inst::Store {
            src: reg_from(bytes[1])?,
            base: reg_from(bytes[2])?,
            offset: imm_i64,
            size: size_from_code(bytes[3])?,
        },
        OP_BRANCH => Inst::Branch {
            cond: cond_from_code(bytes[3])?,
            rs1: reg_from(bytes[1])?,
            rs2: reg_from(bytes[4])?,
            target: imm_u64,
        },
        OP_JUMP => Inst::Jump { target: imm_u64 },
        OP_JUMP_INDIRECT => Inst::JumpIndirect {
            base: reg_from(bytes[2])?,
            offset: imm_i64,
        },
        OP_CALL => Inst::Call {
            target: imm_u64,
            link: reg_from(bytes[1])?,
        },
        OP_RET => Inst::Ret {
            link: reg_from(bytes[1])?,
        },
        OP_FLUSH => Inst::Flush {
            base: reg_from(bytes[2])?,
            offset: imm_i64,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insts() -> Vec<Inst> {
        vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Fence,
            Inst::Alu {
                op: AluOp::Xor,
                rd: Reg::R3,
                rs1: Reg::R4,
                rs2: Reg::R5,
            },
            Inst::AluImm {
                op: AluOp::Shl,
                rd: Reg::R1,
                rs1: Reg::R2,
                imm: -12,
            },
            Inst::LoadImm {
                rd: Reg::R31,
                imm: u64::MAX,
            },
            Inst::Load {
                rd: Reg::R7,
                base: Reg::R8,
                offset: -4096,
                size: MemSize::B2,
            },
            Inst::Store {
                src: Reg::R9,
                base: Reg::R10,
                offset: 8,
                size: MemSize::B4,
            },
            Inst::Branch {
                cond: BranchCond::GeU,
                rs1: Reg::R1,
                rs2: Reg::R2,
                target: 0xdead_0000,
            },
            Inst::Jump {
                target: 0x4000_0000,
            },
            Inst::JumpIndirect {
                base: Reg::R6,
                offset: 16,
            },
            Inst::Call {
                target: 0x1234,
                link: Reg::R31,
            },
            Inst::Ret { link: Reg::R31 },
            Inst::Flush {
                base: Reg::R11,
                offset: 64,
            },
        ]
    }

    #[test]
    fn roundtrip_all_forms() {
        for inst in sample_insts() {
            let bytes = encode(&inst);
            assert_eq!(decode(&bytes), Ok(inst), "roundtrip failed for {inst}");
        }
    }

    #[test]
    fn bad_opcode() {
        let mut b = [0u8; ENCODED_BYTES];
        b[0] = 0xff;
        assert_eq!(decode(&b), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_register() {
        let mut b = encode(&Inst::Ret { link: Reg::R1 });
        b[1] = 32;
        assert_eq!(decode(&b), Err(DecodeError::BadReg(32)));
    }

    #[test]
    fn bad_subop() {
        let mut b = encode(&Inst::Alu {
            op: AluOp::Add,
            rd: Reg::R1,
            rs1: Reg::R1,
            rs2: Reg::R1,
        });
        b[3] = 200;
        assert_eq!(decode(&b), Err(DecodeError::BadSubOp(200)));
        let mut b = encode(&Inst::Load {
            rd: Reg::R1,
            base: Reg::R1,
            offset: 0,
            size: MemSize::B1,
        });
        b[3] = 9;
        assert_eq!(decode(&b), Err(DecodeError::BadSubOp(9)));
    }

    #[test]
    fn negative_offsets_preserved() {
        let inst = Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: i64::MIN,
            size: MemSize::B8,
        };
        assert_eq!(decode(&encode(&inst)), Ok(inst));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::BadOpcode(0xab).to_string().contains("0xab"));
        assert!(DecodeError::BadReg(40).to_string().contains("40"));
        assert!(DecodeError::BadSubOp(7).to_string().contains("0x07"));
    }
}

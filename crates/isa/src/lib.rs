#![warn(missing_docs)]

//! The micro-ISA used by the Conditional Speculation reproduction.
//!
//! The paper evaluates on gem5's ALPHA model; this reproduction defines a
//! small RISC-like ISA that contains everything the defense and the Spectre
//! proof-of-concept gadgets need:
//!
//! * 32 general-purpose 64-bit registers ([`Reg`]), with `r0` hardwired to
//!   zero,
//! * ALU register/immediate operations ([`AluOp`]),
//! * loads and stores of 1/2/4/8 bytes ([`MemSize`]),
//! * conditional branches ([`BranchCond`]), direct jumps, indirect jumps
//!   (needed for Spectre V2), calls and returns,
//! * a cache-line flush instruction (`clflush`, needed by Flush+Reload
//!   attackers) and a speculation fence (`fence`, the software `lfence`
//!   mitigation the paper contrasts against),
//! * `halt` to terminate simulation.
//!
//! Each instruction occupies 4 bytes of the simulated address space for PC
//! arithmetic; a fixed 16-byte binary encoding is provided for storage and
//! testing ([`encode()`]).
//!
//! # Examples
//!
//! Building a tiny program with the assembler-style [`ProgramBuilder`]:
//!
//! ```
//! use condspec_isa::{ProgramBuilder, Reg, AluOp, BranchCond, MemSize};
//!
//! # fn main() -> Result<(), condspec_isa::BuildError> {
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(Reg::R1, 0);
//! b.label("loop")?;
//! b.alu_imm(AluOp::Add, Reg::R1, Reg::R1, 1);
//! b.branch_to(BranchCond::Ne, Reg::R1, Reg::R2, "loop");
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod binfile;
pub mod builder;
pub mod encode;
pub mod inst;
pub mod program;
pub mod reg;

pub use builder::{BuildError, ProgramBuilder};
pub use encode::{decode, encode, DecodeError};
pub use inst::{AluOp, BranchCond, Inst, MemSize};
pub use program::{DataSegment, Program};
pub use reg::Reg;

/// Size in bytes that each instruction occupies in the simulated address
/// space (used for PC arithmetic and instruction-cache indexing).
pub const INST_BYTES: u64 = 4;

//! Binary program files: a compact serialization of a [`Program`] (code
//! via the fixed 16-byte instruction encoding plus raw data segments),
//! used by the `condspec run` CLI command and for shipping test corpora.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8 bytes  "CONDSPEC"
//! version    4 bytes  (currently 1)
//! code_base  8 bytes
//! n_insts    4 bytes
//! insts      n_insts * 16 bytes
//! n_segs     4 bytes
//! per segment: base (8) + len (4) + bytes
//! ```

use crate::encode::{decode, encode, DecodeError, ENCODED_BYTES};
use crate::program::{DataSegment, Program};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 8] = b"CONDSPEC";
const VERSION: u32 = 1;

/// Error produced by [`from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinfileError {
    /// The file does not start with the `CONDSPEC` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The file ended before the declared contents.
    Truncated,
    /// An instruction failed to decode.
    BadInstruction(DecodeError),
    /// Declared sizes are inconsistent (e.g. misaligned code base).
    Malformed(String),
}

impl fmt::Display for BinfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinfileError::BadMagic => write!(f, "not a condspec program file"),
            BinfileError::BadVersion(v) => write!(f, "unsupported program file version {v}"),
            BinfileError::Truncated => write!(f, "program file is truncated"),
            BinfileError::BadInstruction(e) => write!(f, "invalid instruction: {e}"),
            BinfileError::Malformed(msg) => write!(f, "malformed program file: {msg}"),
        }
    }
}

impl Error for BinfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BinfileError::BadInstruction(e) => Some(e),
            _ => None,
        }
    }
}

/// Serializes a program.
///
/// # Examples
///
/// ```
/// use condspec_isa::{ProgramBuilder, Reg};
/// use condspec_isa::binfile::{to_bytes, from_bytes};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new(0x1000);
/// b.li(Reg::R1, 7);
/// b.halt();
/// let program = b.build()?;
/// let bytes = to_bytes(&program);
/// assert_eq!(from_bytes(&bytes)?, program);
/// # Ok(())
/// # }
/// ```
pub fn to_bytes(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&program.code_base().to_le_bytes());
    out.extend_from_slice(&(program.len() as u32).to_le_bytes());
    for inst in program.insts() {
        out.extend_from_slice(&encode(inst));
    }
    out.extend_from_slice(&(program.data().len() as u32).to_le_bytes());
    for seg in program.data() {
        out.extend_from_slice(&seg.base.to_le_bytes());
        out.extend_from_slice(&(seg.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&seg.bytes);
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinfileError> {
        let end = self.pos.checked_add(n).ok_or(BinfileError::Truncated)?;
        if end > self.bytes.len() {
            return Err(BinfileError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u32(&mut self) -> Result<u32, BinfileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("fixed")))
    }
    fn u64(&mut self) -> Result<u64, BinfileError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("fixed")))
    }
}

/// Deserializes a program.
///
/// # Errors
///
/// Returns a [`BinfileError`] describing the first structural or
/// instruction-level problem found.
pub fn from_bytes(bytes: &[u8]) -> Result<Program, BinfileError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(BinfileError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(BinfileError::BadVersion(version));
    }
    let code_base = r.u64()?;
    if code_base % 4 != 0 {
        return Err(BinfileError::Malformed(format!(
            "code base {code_base:#x} is not 4-byte aligned"
        )));
    }
    let n_insts = r.u32()? as usize;
    let mut insts = Vec::with_capacity(n_insts.min(1 << 20));
    for _ in 0..n_insts {
        let chunk: [u8; ENCODED_BYTES] =
            r.take(ENCODED_BYTES)?.try_into().expect("fixed-size take");
        insts.push(decode(&chunk).map_err(BinfileError::BadInstruction)?);
    }
    let n_segs = r.u32()? as usize;
    let mut data = Vec::with_capacity(n_segs.min(1 << 16));
    for _ in 0..n_segs {
        let base = r.u64()?;
        let len = r.u32()? as usize;
        data.push(DataSegment::new(base, r.take(len)?.to_vec()));
    }
    if r.pos != bytes.len() {
        return Err(BinfileError::Malformed(format!(
            "{} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok(Program::new(code_base, insts, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, BranchCond, ProgramBuilder, Reg};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new(0x40_0000);
        b.li(Reg::R1, 0x1234);
        b.alu_imm(AluOp::Add, Reg::R2, Reg::R1, -5);
        b.label("x").unwrap();
        b.branch_to(BranchCond::Ne, Reg::R2, Reg::R0, "x");
        b.halt();
        b.data_u64s(0x50_0000, &[1, 2, 3]);
        b.data_segment(0x60_0000, vec![0xab; 17]);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(from_bytes(&to_bytes(&p)), Ok(p));
    }

    #[test]
    fn roundtrip_empty_program() {
        let p = Program::new(0, vec![], vec![]);
        assert_eq!(from_bytes(&to_bytes(&p)), Ok(p));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes), Err(BinfileError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&sample());
        bytes[8] = 99;
        assert_eq!(from_bytes(&bytes), Err(BinfileError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = to_bytes(&sample());
        for cut in [4, 11, 19, 25, 40, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert!(matches!(
            from_bytes(&bytes),
            Err(BinfileError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bad_instruction() {
        let mut bytes = to_bytes(&sample());
        // First instruction starts at offset 8 + 4 + 8 + 4 = 24.
        bytes[24] = 0xff;
        assert!(matches!(
            from_bytes(&bytes),
            Err(BinfileError::BadInstruction(_))
        ));
    }

    #[test]
    fn rejects_misaligned_code_base() {
        let mut bytes = to_bytes(&sample());
        bytes[12] = 2; // code_base low byte -> misaligned
        assert!(matches!(
            from_bytes(&bytes),
            Err(BinfileError::Malformed(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(BinfileError::BadMagic.to_string().contains("condspec"));
        assert!(BinfileError::Truncated.to_string().contains("truncated"));
    }
}

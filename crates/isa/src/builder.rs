//! Assembler-style program construction with labels and data segments.

use crate::inst::{AluOp, BranchCond, Inst, MemSize};
use crate::program::{DataSegment, Program};
use crate::reg::Reg;
use crate::INST_BYTES;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A data segment overlaps the code region or another segment.
    OverlappingSegment {
        /// Base address of the offending segment.
        base: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            BuildError::OverlappingSegment { base } => {
                write!(
                    f,
                    "data segment at {base:#x} overlaps code or another segment"
                )
            }
        }
    }
}

impl Error for BuildError {}

enum Fixup {
    Branch(usize, String),
    Jump(usize, String),
    Call(usize, String),
}

/// Incrementally builds a [`Program`], resolving labels at [`build`] time.
///
/// Emit methods append one instruction each and return `&mut Self` for
/// chaining. Targets can be given as absolute addresses (`branch`, `jump`)
/// or labels (`branch_to`, `jump_to`), and labels may be referenced before
/// they are defined.
///
/// # Examples
///
/// ```
/// use condspec_isa::{ProgramBuilder, Reg, AluOp, BranchCond};
///
/// # fn main() -> Result<(), condspec_isa::BuildError> {
/// let mut b = ProgramBuilder::new(0x400000);
/// b.li(Reg::R1, 3);
/// b.label("spin")?;
/// b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
/// b.branch_to(BranchCond::Ne, Reg::R1, Reg::R0, "spin");
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.len(), 4);
/// # Ok(())
/// # }
/// ```
///
/// [`build`]: ProgramBuilder::build
pub struct ProgramBuilder {
    code_base: u64,
    insts: Vec<Inst>,
    labels: HashMap<String, u64>,
    fixups: Vec<Fixup>,
    data: Vec<DataSegment>,
}

impl fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("code_base", &self.code_base)
            .field("insts", &self.insts.len())
            .field("labels", &self.labels.len())
            .field("pending_fixups", &self.fixups.len())
            .field("data_segments", &self.data.len())
            .finish()
    }
}

impl ProgramBuilder {
    /// Creates a builder whose first instruction will live at `code_base`.
    ///
    /// # Panics
    ///
    /// Panics if `code_base` is not 4-byte aligned.
    pub fn new(code_base: u64) -> Self {
        assert_eq!(
            code_base % INST_BYTES,
            0,
            "code base must be 4-byte aligned"
        );
        ProgramBuilder {
            code_base,
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
        }
    }

    /// The address the next emitted instruction will occupy.
    pub fn here(&self) -> u64 {
        self.code_base + self.insts.len() as u64 * INST_BYTES
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Binds `name` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateLabel`] if the label already exists.
    pub fn label(&mut self, name: &str) -> Result<u64, BuildError> {
        let addr = self.here();
        if self.labels.insert(name.to_string(), addr).is_some() {
            return Err(BuildError::DuplicateLabel(name.to_string()));
        }
        Ok(addr)
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// `rd = op(rs1, rs2)`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = op(rs1, imm)`.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: u64) -> &mut Self {
        self.push(Inst::LoadImm { rd, imm })
    }

    /// 8-byte load `rd = mem[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load_sized(rd, base, offset, MemSize::B8)
    }

    /// 1-byte load (zero-extended).
    pub fn load_byte(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load_sized(rd, base, offset, MemSize::B1)
    }

    /// Load with explicit width.
    pub fn load_sized(&mut self, rd: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.push(Inst::Load {
            rd,
            base,
            offset,
            size,
        })
    }

    /// 8-byte store `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store_sized(src, base, offset, MemSize::B8)
    }

    /// 1-byte store.
    pub fn store_byte(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store_sized(src, base, offset, MemSize::B1)
    }

    /// Store with explicit width.
    pub fn store_sized(&mut self, src: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.push(Inst::Store {
            src,
            base,
            offset,
            size,
        })
    }

    /// Conditional branch to an absolute address.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: u64) -> &mut Self {
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        })
    }

    /// Conditional branch to a label (may be a forward reference).
    pub fn branch_to(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.fixups.push(Fixup::Branch(idx, label.to_string()));
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: 0,
        })
    }

    /// Unconditional jump to an absolute address.
    pub fn jump(&mut self, target: u64) -> &mut Self {
        self.push(Inst::Jump { target })
    }

    /// Unconditional jump to a label.
    pub fn jump_to(&mut self, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.fixups.push(Fixup::Jump(idx, label.to_string()));
        self.push(Inst::Jump { target: 0 })
    }

    /// Indirect jump through a register.
    pub fn jump_indirect(&mut self, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::JumpIndirect { base, offset })
    }

    /// Call to a label, linking through `link`.
    pub fn call_to(&mut self, label: &str, link: Reg) -> &mut Self {
        let idx = self.insts.len();
        self.fixups.push(Fixup::Call(idx, label.to_string()));
        self.push(Inst::Call { target: 0, link })
    }

    /// Return through `link`.
    pub fn ret(&mut self, link: Reg) -> &mut Self {
        self.push(Inst::Ret { link })
    }

    /// Cache-line flush of `base + offset`.
    pub fn flush(&mut self, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Flush { base, offset })
    }

    /// Speculation fence.
    pub fn fence(&mut self) -> &mut Self {
        self.push(Inst::Fence)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Emits `n` no-ops (padding / dependence-window spacing).
    pub fn nops(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.push(Inst::Nop);
        }
        self
    }

    /// Halts the simulation at retirement.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Adds an initialized data segment.
    pub fn data_segment(&mut self, base: u64, bytes: Vec<u8>) -> &mut Self {
        self.data.push(DataSegment::new(base, bytes));
        self
    }

    /// Adds a data segment of little-endian `u64` words.
    pub fn data_u64s(&mut self, base: u64, words: &[u64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data_segment(base, bytes)
    }

    /// Adds a zero-initialized data segment of `len` bytes.
    pub fn reserve(&mut self, base: u64, len: usize) -> &mut Self {
        self.data_segment(base, vec![0; len])
    }

    /// Resolves all label references and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownLabel`] if a referenced label was never
    /// defined, or [`BuildError::OverlappingSegment`] if a data segment
    /// overlaps the code region or another data segment.
    pub fn build(mut self) -> Result<Program, BuildError> {
        for fixup in self.fixups.drain(..).collect::<Vec<_>>() {
            let (idx, label) = match &fixup {
                Fixup::Branch(i, l) | Fixup::Jump(i, l) | Fixup::Call(i, l) => (*i, l.clone()),
            };
            let addr = *self
                .labels
                .get(&label)
                .ok_or(BuildError::UnknownLabel(label))?;
            match (&fixup, &mut self.insts[idx]) {
                (Fixup::Branch(..), Inst::Branch { target, .. })
                | (Fixup::Jump(..), Inst::Jump { target, .. })
                | (Fixup::Call(..), Inst::Call { target, .. }) => *target = addr,
                _ => unreachable!("fixup kind always matches the emitted instruction"),
            }
        }
        let code_start = self.code_base;
        let code_end = self.code_base + self.insts.len() as u64 * INST_BYTES;
        let mut ranges: Vec<(u64, u64)> = vec![(code_start, code_end)];
        for seg in &self.data {
            let range = (seg.base, seg.end());
            if ranges.iter().any(|(s, e)| range.0 < *e && *s < range.1) {
                return Err(BuildError::OverlappingSegment { base: seg.base });
            }
            ranges.push(range);
        }
        Ok(Program::new(self.code_base, self.insts, self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new(0x100);
        b.jump_to("end");
        b.label("mid").unwrap();
        b.nop();
        b.branch_to(BranchCond::Eq, Reg::R1, Reg::R2, "mid");
        b.label("end").unwrap();
        b.halt();
        let p = b.build().unwrap();
        match p.insts()[0] {
            Inst::Jump { target } => assert_eq!(target, 0x10c),
            other => panic!("unexpected {other:?}"),
        }
        match p.insts()[2] {
            Inst::Branch { target, .. } => assert_eq!(target, 0x104),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new(0);
        b.label("x").unwrap();
        assert_eq!(b.label("x"), Err(BuildError::DuplicateLabel("x".into())));
    }

    #[test]
    fn unknown_label_errors() {
        let mut b = ProgramBuilder::new(0);
        b.jump_to("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnknownLabel("nowhere".into())
        );
    }

    #[test]
    fn call_fixup() {
        let mut b = ProgramBuilder::new(0);
        b.call_to("f", Reg::R31);
        b.halt();
        b.label("f").unwrap();
        b.ret(Reg::R31);
        let p = b.build().unwrap();
        match p.insts()[0] {
            Inst::Call { target, link } => {
                assert_eq!(target, 0x8);
                assert_eq!(link, Reg::R31);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn data_helpers() {
        let mut b = ProgramBuilder::new(0x1000);
        b.halt();
        b.data_u64s(0x2000, &[1, 2]);
        b.reserve(0x3000, 64);
        let p = b.build().unwrap();
        assert_eq!(p.data().len(), 2);
        assert_eq!(p.data()[0].bytes[0..8], 1u64.to_le_bytes());
        assert_eq!(p.data()[1].bytes.len(), 64);
    }

    #[test]
    fn overlapping_data_with_code_errors() {
        let mut b = ProgramBuilder::new(0x1000);
        b.nop().nop();
        b.data_segment(0x1004, vec![0; 4]);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::OverlappingSegment { base: 0x1004 }
        );
    }

    #[test]
    fn overlapping_data_segments_error() {
        let mut b = ProgramBuilder::new(0x1000);
        b.halt();
        b.data_segment(0x2000, vec![0; 16]);
        b.data_segment(0x200f, vec![0; 1]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::OverlappingSegment { base: 0x200f }
        ));
    }

    #[test]
    fn adjacent_segments_are_fine() {
        let mut b = ProgramBuilder::new(0x1000);
        b.halt();
        b.data_segment(0x2000, vec![0; 16]);
        b.data_segment(0x2010, vec![0; 16]);
        assert!(b.build().is_ok());
    }

    #[test]
    fn here_advances() {
        let mut b = ProgramBuilder::new(0x100);
        assert_eq!(b.here(), 0x100);
        assert!(b.is_empty());
        b.nop();
        assert_eq!(b.here(), 0x104);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn nops_pads() {
        let mut b = ProgramBuilder::new(0);
        b.nops(5).halt();
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            BuildError::DuplicateLabel("a".into()).to_string(),
            "duplicate label `a`"
        );
        assert_eq!(
            BuildError::UnknownLabel("b".into()).to_string(),
            "unknown label `b`"
        );
        assert!(BuildError::OverlappingSegment { base: 16 }
            .to_string()
            .contains("0x10"));
    }
}

//! Instruction definitions and classification.

use crate::reg::Reg;
use std::fmt;

/// ALU operation kinds, used by both register-register and
/// register-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned set-less-than: `rd = (rs1 < rs2) as u64`.
    SltU,
    /// Signed set-less-than: `rd = ((rs1 as i64) < (rs2 as i64)) as u64`.
    Slt,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit operands.
    ///
    /// # Examples
    ///
    /// ```
    /// use condspec_isa::AluOp;
    ///
    /// assert_eq!(AluOp::Add.eval(1, 2), 3);
    /// assert_eq!(AluOp::Shl.eval(1, 12), 4096);
    /// assert_eq!(AluOp::SltU.eval(1, 2), 1);
    /// ```
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::SltU => u64::from(a < b),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Mul => "mul",
            AluOp::SltU => "sltu",
            AluOp::Slt => "slt",
        };
        f.write_str(s)
    }
}

/// Conditional branch conditions (compare `rs1` against `rs2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    LtU,
    /// Branch if unsigned greater-or-equal.
    GeU,
}

impl BranchCond {
    /// Evaluates the condition on two operand values.
    ///
    /// # Examples
    ///
    /// ```
    /// use condspec_isa::BranchCond;
    ///
    /// assert!(BranchCond::LtU.eval(1, 2));
    /// assert!(BranchCond::Lt.eval(u64::MAX, 2)); // signed: -1 < 2
    /// assert!(!BranchCond::LtU.eval(u64::MAX, 2)); // unsigned: huge >= 2
    /// ```
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::LtU => a < b,
            BranchCond::GeU => a >= b,
        }
    }

    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::LtU => BranchCond::GeU,
            BranchCond::GeU => BranchCond::LtU,
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::LtU => "bltu",
            BranchCond::GeU => "bgeu",
        };
        f.write_str(s)
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// One instruction of the micro-ISA.
///
/// Branch and jump targets are absolute simulated virtual addresses
/// (the [`crate::ProgramBuilder`] resolves labels to addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = op(rs1, imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate operand (sign-reinterpreted as u64 at evaluation).
        imm: i64,
    },
    /// `rd = imm` (load immediate).
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `rd = mem[rs_base + offset]` (zero-extended).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
        /// Access width.
        size: MemSize,
    },
    /// `mem[rs_base + offset] = src`.
    Store {
        /// Source (data) register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
        /// Access width.
        size: MemSize,
    },
    /// Conditional direct branch: `if cond(rs1, rs2) goto target`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Absolute target address.
        target: u64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Absolute target address.
        target: u64,
    },
    /// Indirect jump: `goto rs_base + offset` (value, not memory).
    ///
    /// This is the instruction Spectre V2 trains the BTB against.
    JumpIndirect {
        /// Register holding the target address.
        base: Reg,
        /// Signed displacement added to the register value.
        offset: i64,
    },
    /// Direct call: saves the return address (`pc + 4`) into `link` and
    /// jumps to `target`. Pushes onto the return-address stack predictor.
    Call {
        /// Absolute target address.
        target: u64,
        /// Link register receiving the return address.
        link: Reg,
    },
    /// Return: jumps to the address in `link`. Pops the return-address
    /// stack predictor.
    Ret {
        /// Register holding the return address.
        link: Reg,
    },
    /// Flushes the cache line containing `rs_base + offset` from the whole
    /// hierarchy (the `clflush` primitive Flush+Reload attackers use).
    Flush {
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Speculation fence: younger instructions may not issue until the
    /// fence retires (models `lfence`).
    Fence,
    /// No operation.
    Nop,
    /// Stops the simulation when it retires.
    Halt,
}

impl Inst {
    /// Whether this instruction accesses data memory (load or store).
    ///
    /// `Flush` is *not* a memory access for security-dependence purposes:
    /// it cannot be the victim-side leaking instruction (it only removes
    /// lines). The paper's matrix formula checks `opcode == MEMORY` for the
    /// dependent instruction and `MEMORY or BRANCH` for the producer.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Whether this instruction is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this instruction is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this instruction is a control-flow instruction whose
    /// resolution may redirect fetch (conditional branch, indirect jump,
    /// call or return). Direct unconditional jumps resolve in the front
    /// end and are not speculation sources.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::JumpIndirect { .. } | Inst::Ret { .. }
        )
    }

    /// Whether this is any control-flow instruction (including direct
    /// jumps and calls).
    pub fn is_control(&self) -> bool {
        self.is_branch() || matches!(self, Inst::Jump { .. } | Inst::Call { .. })
    }

    /// Whether the instruction is a speculation fence.
    pub fn is_fence(&self) -> bool {
        matches!(self, Inst::Fence)
    }

    /// The destination register, if the instruction writes one.
    ///
    /// Writes to `r0` are reported as `None` (they are architectural
    /// no-ops).
    pub fn dest(&self) -> Option<Reg> {
        let d = match self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::LoadImm { rd, .. }
            | Inst::Load { rd, .. } => Some(*rd),
            Inst::Call { link, .. } => Some(*link),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// Source registers read by the instruction (at most 2).
    pub fn sources(&self) -> SourceIter {
        let (a, b) = match self {
            Inst::Alu { rs1, rs2, .. } => (Some(*rs1), Some(*rs2)),
            Inst::AluImm { rs1, .. } => (Some(*rs1), None),
            Inst::LoadImm { .. } => (None, None),
            Inst::Load { base, .. } => (Some(*base), None),
            Inst::Store { src, base, .. } => (Some(*base), Some(*src)),
            Inst::Branch { rs1, rs2, .. } => (Some(*rs1), Some(*rs2)),
            Inst::Jump { .. } => (None, None),
            Inst::JumpIndirect { base, .. } => (Some(*base), None),
            Inst::Call { .. } => (None, None),
            Inst::Ret { link } => (Some(*link), None),
            Inst::Flush { base, .. } => (Some(*base), None),
            Inst::Fence | Inst::Nop | Inst::Halt => (None, None),
        };
        // r0 always reads as zero and never creates a dependence.
        SourceIter {
            regs: [a.filter(|r| !r.is_zero()), b.filter(|r| !r.is_zero())],
            idx: 0,
        }
    }
}

/// Iterator over an instruction's source registers.
///
/// Produced by [`Inst::sources`].
#[derive(Debug, Clone)]
pub struct SourceIter {
    regs: [Option<Reg>; 2],
    idx: usize,
}

impl Iterator for SourceIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.idx < 2 {
            let r = self.regs[self.idx];
            self.idx += 1;
            if r.is_some() {
                return r;
            }
        }
        None
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Inst::LoadImm { rd, imm } => write!(f, "li {rd}, {imm:#x}"),
            Inst::Load {
                rd,
                base,
                offset,
                size,
            } => {
                write!(f, "ld{size} {rd}, {offset}({base})")
            }
            Inst::Store {
                src,
                base,
                offset,
                size,
            } => {
                write!(f, "st{size} {src}, {offset}({base})")
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "{cond} {rs1}, {rs2}, {target:#x}")
            }
            Inst::Jump { target } => write!(f, "j {target:#x}"),
            Inst::JumpIndirect { base, offset } => write!(f, "jr {offset}({base})"),
            Inst::Call { target, link } => write!(f, "call {target:#x}, {link}"),
            Inst::Ret { link } => write!(f, "ret {link}"),
            Inst::Flush { base, offset } => write!(f, "clflush {offset}({base})"),
            Inst::Fence => f.write_str("fence"),
            Inst::Nop => f.write_str("nop"),
            Inst::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 64 + 3), 8, "shift amount is mod 64");
        assert_eq!(AluOp::Shr.eval(16, 2), 4);
        assert_eq!(AluOp::Mul.eval(3, 5), 15);
        assert_eq!(AluOp::SltU.eval(2, 1), 0);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1, "-1 < 0 signed");
    }

    #[test]
    fn branch_eval_and_negate() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(u64::MAX, 0));
        assert!(BranchCond::Ge.eval(0, u64::MAX));
        assert!(BranchCond::LtU.eval(0, u64::MAX));
        assert!(BranchCond::GeU.eval(u64::MAX, 0));
        for c in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::LtU,
            BranchCond::GeU,
        ] {
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 5)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::B1.bytes(), 1);
        assert_eq!(MemSize::B2.bytes(), 2);
        assert_eq!(MemSize::B4.bytes(), 4);
        assert_eq!(MemSize::B8.bytes(), 8);
    }

    #[test]
    fn classification() {
        let ld = Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 0,
            size: MemSize::B8,
        };
        let st = Inst::Store {
            src: Reg::R1,
            base: Reg::R2,
            offset: 0,
            size: MemSize::B8,
        };
        let br = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::R1,
            rs2: Reg::R2,
            target: 0,
        };
        let jr = Inst::JumpIndirect {
            base: Reg::R1,
            offset: 0,
        };
        let j = Inst::Jump { target: 0 };
        assert!(ld.is_mem() && ld.is_load() && !ld.is_store());
        assert!(st.is_mem() && st.is_store() && !st.is_load());
        assert!(br.is_branch() && !br.is_mem());
        assert!(jr.is_branch());
        assert!(!j.is_branch() && j.is_control());
        assert!(Inst::Fence.is_fence());
        let fl = Inst::Flush {
            base: Reg::R1,
            offset: 0,
        };
        assert!(
            !fl.is_mem(),
            "clflush is not a security-relevant memory access"
        );
    }

    #[test]
    fn dest_and_sources() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::R3,
            rs1: Reg::R1,
            rs2: Reg::R2,
        };
        assert_eq!(i.dest(), Some(Reg::R3));
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![Reg::R1, Reg::R2]);

        let st = Inst::Store {
            src: Reg::R4,
            base: Reg::R5,
            offset: 8,
            size: MemSize::B1,
        };
        assert_eq!(st.dest(), None);
        let srcs: Vec<Reg> = st.sources().collect();
        assert_eq!(srcs, vec![Reg::R5, Reg::R4]);
    }

    #[test]
    fn r0_is_never_a_dependence() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rs1: Reg::R0,
            rs2: Reg::R1,
        };
        assert_eq!(i.dest(), None, "writes to r0 are discarded");
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![Reg::R1]);
    }

    #[test]
    fn call_writes_link() {
        let c = Inst::Call {
            target: 0x100,
            link: Reg::R31,
        };
        assert_eq!(c.dest(), Some(Reg::R31));
        assert!(c.is_control() && !c.is_branch());
        let r = Inst::Ret { link: Reg::R31 };
        assert!(r.is_branch());
        assert_eq!(r.sources().collect::<Vec<_>>(), vec![Reg::R31]);
    }

    #[test]
    fn display_forms() {
        let i = Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: -8,
            size: MemSize::B8,
        };
        assert_eq!(i.to_string(), "ld8 r1, -8(r2)");
        assert_eq!(Inst::Halt.to_string(), "halt");
        assert_eq!(Inst::Nop.to_string(), "nop");
        let b = Inst::Branch {
            cond: BranchCond::GeU,
            rs1: Reg::R1,
            rs2: Reg::R2,
            target: 0x40,
        };
        assert_eq!(b.to_string(), "bgeu r1, r2, 0x40");
    }
}

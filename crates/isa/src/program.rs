//! Programs: code plus initialized data segments.

use crate::inst::Inst;
use crate::INST_BYTES;
use std::fmt;

/// A contiguous block of initialized data in the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Base virtual address of the segment.
    pub base: u64,
    /// Segment contents.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// Creates a segment.
    pub fn new(base: u64, bytes: Vec<u8>) -> Self {
        DataSegment { base, bytes }
    }

    /// The exclusive end address of the segment.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Whether `addr` falls inside the segment.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// A complete program: instructions at `code_base` plus initialized data.
///
/// Instruction `i` lives at address `code_base + 4 * i`. Programs are
/// usually produced by [`crate::ProgramBuilder`].
///
/// # Examples
///
/// ```
/// use condspec_isa::{Program, Inst};
///
/// let p = Program::new(0x1000, vec![Inst::Nop, Inst::Halt], vec![]);
/// assert_eq!(p.fetch(0x1004), Some(Inst::Halt));
/// assert_eq!(p.fetch(0x0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    code_base: u64,
    insts: Vec<Inst>,
    data: Vec<DataSegment>,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `code_base` is not 4-byte aligned.
    pub fn new(code_base: u64, insts: Vec<Inst>, data: Vec<DataSegment>) -> Self {
        assert_eq!(
            code_base % INST_BYTES,
            0,
            "code base must be 4-byte aligned"
        );
        Program {
            code_base,
            insts,
            data,
        }
    }

    /// The address of the first instruction, i.e. the entry point.
    pub fn entry(&self) -> u64 {
        self.code_base
    }

    /// Base address of the code region.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// Exclusive end address of the code region.
    pub fn code_end(&self) -> u64 {
        self.code_base + self.insts.len() as u64 * INST_BYTES
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The initialized data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// Fetches the instruction at virtual address `pc`, or `None` if `pc`
    /// is outside the code region or misaligned.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        if pc < self.code_base || !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - self.code_base) / INST_BYTES) as usize;
        self.insts.get(idx).copied()
    }

    /// The address of instruction index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn addr_of(&self, idx: usize) -> u64 {
        assert!(
            idx < self.insts.len(),
            "instruction index {idx} out of range"
        );
        self.code_base + idx as u64 * INST_BYTES
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{:#010x}: {}", self.addr_of(i), inst)?;
        }
        for seg in &self.data {
            writeln!(f, "data @ {:#010x}: {} bytes", seg.base, seg.bytes.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = Program::new(0x100, vec![Inst::Nop, Inst::Fence, Inst::Halt], vec![]);
        assert_eq!(p.fetch(0x100), Some(Inst::Nop));
        assert_eq!(p.fetch(0x104), Some(Inst::Fence));
        assert_eq!(p.fetch(0x108), Some(Inst::Halt));
        assert_eq!(p.fetch(0x10c), None);
        assert_eq!(p.fetch(0xfc), None);
        assert_eq!(p.fetch(0x102), None, "misaligned");
    }

    #[test]
    fn addr_of_and_bounds() {
        let p = Program::new(0x1000, vec![Inst::Nop; 4], vec![]);
        assert_eq!(p.addr_of(0), 0x1000);
        assert_eq!(p.addr_of(3), 0x100c);
        assert_eq!(p.code_end(), 0x1010);
        assert_eq!(p.entry(), 0x1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_of_out_of_range_panics() {
        let p = Program::new(0x1000, vec![Inst::Nop], vec![]);
        let _ = p.addr_of(1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_base_panics() {
        let _ = Program::new(0x1001, vec![], vec![]);
    }

    #[test]
    fn data_segment_bounds() {
        let seg = DataSegment::new(0x2000, vec![1, 2, 3]);
        assert_eq!(seg.end(), 0x2003);
        assert!(seg.contains(0x2000));
        assert!(seg.contains(0x2002));
        assert!(!seg.contains(0x2003));
        assert!(!seg.contains(0x1fff));
    }

    #[test]
    fn empty_program() {
        let p = Program::new(0, vec![], vec![]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.fetch(0), None);
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::new(
            0x100,
            vec![Inst::Nop],
            vec![DataSegment::new(0x2000, vec![0; 8])],
        );
        let s = p.to_string();
        assert!(s.contains("nop"));
        assert!(s.contains("8 bytes"));
    }
}

//! Property tests for the micro-ISA: encode/decode round-trips for every
//! instruction form, and builder label resolution.

use condspec_isa::{
    decode, encode, AluOp, BranchCond, Inst, MemSize, ProgramBuilder, Reg,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).expect("index < 32"))
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
        Just(AluOp::SltU),
        Just(AluOp::Slt),
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::LtU),
        Just(BranchCond::GeU),
    ]
}

fn arb_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::B1),
        Just(MemSize::B2),
        Just(MemSize::B4),
        Just(MemSize::B8),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        Just(Inst::Fence),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i64>())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (arb_reg(), any::<u64>()).prop_map(|(rd, imm)| Inst::LoadImm { rd, imm }),
        (arb_reg(), arb_reg(), any::<i64>(), arb_size())
            .prop_map(|(rd, base, offset, size)| Inst::Load { rd, base, offset, size }),
        (arb_reg(), arb_reg(), any::<i64>(), arb_size())
            .prop_map(|(src, base, offset, size)| Inst::Store { src, base, offset, size }),
        (arb_cond(), arb_reg(), arb_reg(), any::<u64>())
            .prop_map(|(cond, rs1, rs2, target)| Inst::Branch { cond, rs1, rs2, target }),
        any::<u64>().prop_map(|target| Inst::Jump { target }),
        (arb_reg(), any::<i64>()).prop_map(|(base, offset)| Inst::JumpIndirect { base, offset }),
        (any::<u64>(), arb_reg()).prop_map(|(target, link)| Inst::Call { target, link }),
        arb_reg().prop_map(|link| Inst::Ret { link }),
        (arb_reg(), any::<i64>()).prop_map(|(base, offset)| Inst::Flush { base, offset }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let bytes = encode(&inst);
        prop_assert_eq!(decode(&bytes), Ok(inst));
    }

    #[test]
    fn sources_never_include_r0(inst in arb_inst()) {
        prop_assert!(inst.sources().all(|r| !r.is_zero()));
        prop_assert!(inst.dest().is_none_or(|r| !r.is_zero()));
    }

    #[test]
    fn classification_is_consistent(inst in arb_inst()) {
        // A memory instruction is exactly a load xor a store.
        prop_assert_eq!(inst.is_mem(), inst.is_load() || inst.is_store());
        prop_assert!(!(inst.is_load() && inst.is_store()));
        // Everything resolved in the back end is control flow.
        if inst.is_branch() {
            prop_assert!(inst.is_control());
        }
    }

    #[test]
    fn display_is_never_empty(inst in arb_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn alu_eval_zero_identities(a in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.eval(a, 0), a);
        prop_assert_eq!(AluOp::Sub.eval(a, 0), a);
        prop_assert_eq!(AluOp::Or.eval(a, 0), a);
        prop_assert_eq!(AluOp::Xor.eval(a, a), 0);
        prop_assert_eq!(AluOp::And.eval(a, 0), 0);
        prop_assert_eq!(AluOp::Mul.eval(a, 1), a);
    }

    #[test]
    fn branch_negation_is_exact(
        cond in arb_cond(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assert_ne!(cond.eval(a, b), cond.negate().eval(a, b));
        prop_assert_eq!(cond.negate().negate(), cond);
    }

    #[test]
    fn builder_resolves_forward_branches(skip in 1usize..50) {
        let mut b = ProgramBuilder::new(0x1000);
        b.branch_to(BranchCond::Eq, Reg::R1, Reg::R2, "end");
        for _ in 0..skip {
            b.nop();
        }
        b.label("end").expect("fresh label");
        b.halt();
        let p = b.build().expect("assembles");
        match p.insts()[0] {
            Inst::Branch { target, .. } => {
                prop_assert_eq!(target, 0x1000 + 4 * (skip as u64 + 1));
                prop_assert_eq!(p.fetch(target), Some(Inst::Halt));
            }
            other => prop_assert!(false, "expected branch, got {other:?}"),
        }
    }

    #[test]
    fn program_fetch_matches_indexing(n in 1usize..100) {
        let mut b = ProgramBuilder::new(0x4000);
        for _ in 0..n {
            b.nop();
        }
        b.halt();
        let p = b.build().expect("assembles");
        for i in 0..p.len() {
            prop_assert_eq!(p.fetch(p.addr_of(i)), Some(p.insts()[i]));
        }
        prop_assert_eq!(p.fetch(p.code_end()), None);
    }
}

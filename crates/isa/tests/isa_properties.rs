//! Randomized property tests for the micro-ISA: encode/decode
//! round-trips for every instruction form, and builder label resolution.
//!
//! Cases are generated with the workspace's seeded [`SplitMix64`]
//! generator, so every run checks the same cases — failures reproduce
//! exactly.

use condspec_isa::{decode, encode, AluOp, BranchCond, Inst, MemSize, ProgramBuilder, Reg};
use condspec_stats::SplitMix64;

const CASES: u64 = 512;

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Mul,
    AluOp::SltU,
    AluOp::Slt,
];

const CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::LtU,
    BranchCond::GeU,
];

const SIZES: [MemSize; 4] = [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8];

fn rand_reg(rng: &mut SplitMix64) -> Reg {
    Reg::from_index(rng.gen_usize(0, 32)).expect("index < 32")
}

fn rand_inst(rng: &mut SplitMix64) -> Inst {
    match rng.gen_usize(0, 13) {
        0 => Inst::Nop,
        1 => Inst::Halt,
        2 => Inst::Fence,
        3 => Inst::Alu {
            op: *rng.choice(&ALU_OPS),
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
        },
        4 => Inst::AluImm {
            op: *rng.choice(&ALU_OPS),
            rd: rand_reg(rng),
            rs1: rand_reg(rng),
            imm: rng.next_u64() as i64,
        },
        5 => Inst::LoadImm {
            rd: rand_reg(rng),
            imm: rng.next_u64(),
        },
        6 => Inst::Load {
            rd: rand_reg(rng),
            base: rand_reg(rng),
            offset: rng.next_u64() as i64,
            size: *rng.choice(&SIZES),
        },
        7 => Inst::Store {
            src: rand_reg(rng),
            base: rand_reg(rng),
            offset: rng.next_u64() as i64,
            size: *rng.choice(&SIZES),
        },
        8 => Inst::Branch {
            cond: *rng.choice(&CONDS),
            rs1: rand_reg(rng),
            rs2: rand_reg(rng),
            target: rng.next_u64(),
        },
        9 => Inst::Jump {
            target: rng.next_u64(),
        },
        10 => Inst::JumpIndirect {
            base: rand_reg(rng),
            offset: rng.next_u64() as i64,
        },
        11 => Inst::Call {
            target: rng.next_u64(),
            link: rand_reg(rng),
        },
        _ => {
            if rng.gen_bool(0.5) {
                Inst::Ret {
                    link: rand_reg(rng),
                }
            } else {
                Inst::Flush {
                    base: rand_reg(rng),
                    offset: rng.next_u64() as i64,
                }
            }
        }
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = SplitMix64::new(0x15a_0001);
    for _ in 0..CASES {
        let inst = rand_inst(&mut rng);
        let bytes = encode(&inst);
        assert_eq!(decode(&bytes), Ok(inst), "{inst:?}");
    }
}

#[test]
fn sources_never_include_r0() {
    let mut rng = SplitMix64::new(0x15a_0002);
    for _ in 0..CASES {
        let inst = rand_inst(&mut rng);
        assert!(inst.sources().all(|r| !r.is_zero()), "{inst:?}");
        assert!(inst.dest().is_none_or(|r| !r.is_zero()), "{inst:?}");
    }
}

#[test]
fn classification_is_consistent() {
    let mut rng = SplitMix64::new(0x15a_0003);
    for _ in 0..CASES {
        let inst = rand_inst(&mut rng);
        // A memory instruction is exactly a load xor a store.
        assert_eq!(inst.is_mem(), inst.is_load() || inst.is_store(), "{inst:?}");
        assert!(!(inst.is_load() && inst.is_store()), "{inst:?}");
        // Everything resolved in the back end is control flow.
        if inst.is_branch() {
            assert!(inst.is_control(), "{inst:?}");
        }
    }
}

#[test]
fn display_is_never_empty() {
    let mut rng = SplitMix64::new(0x15a_0004);
    for _ in 0..CASES {
        let inst = rand_inst(&mut rng);
        assert!(!inst.to_string().is_empty(), "{inst:?}");
    }
}

#[test]
fn alu_eval_zero_identities() {
    let mut rng = SplitMix64::new(0x15a_0005);
    for _ in 0..CASES {
        let a = rng.next_u64();
        assert_eq!(AluOp::Add.eval(a, 0), a);
        assert_eq!(AluOp::Sub.eval(a, 0), a);
        assert_eq!(AluOp::Or.eval(a, 0), a);
        assert_eq!(AluOp::Xor.eval(a, a), 0);
        assert_eq!(AluOp::And.eval(a, 0), 0);
        assert_eq!(AluOp::Mul.eval(a, 1), a);
    }
}

#[test]
fn branch_negation_is_exact() {
    let mut rng = SplitMix64::new(0x15a_0006);
    for _ in 0..CASES {
        let cond = *rng.choice(&CONDS);
        // Mix equal and unequal operand pairs.
        let a = rng.gen_range(0, 8);
        let b = if rng.gen_bool(0.3) { a } else { rng.next_u64() };
        assert_ne!(
            cond.eval(a, b),
            cond.negate().eval(a, b),
            "{cond:?} {a} {b}"
        );
        assert_eq!(cond.negate().negate(), cond);
    }
}

#[test]
fn builder_resolves_forward_branches() {
    let mut rng = SplitMix64::new(0x15a_0007);
    for _ in 0..64 {
        let skip = rng.gen_usize(1, 50);
        let mut b = ProgramBuilder::new(0x1000);
        b.branch_to(BranchCond::Eq, Reg::R1, Reg::R2, "end");
        for _ in 0..skip {
            b.nop();
        }
        b.label("end").expect("fresh label");
        b.halt();
        let p = b.build().expect("assembles");
        match p.insts()[0] {
            Inst::Branch { target, .. } => {
                assert_eq!(target, 0x1000 + 4 * (skip as u64 + 1));
                assert_eq!(p.fetch(target), Some(Inst::Halt));
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }
}

#[test]
fn program_fetch_matches_indexing() {
    let mut rng = SplitMix64::new(0x15a_0008);
    for _ in 0..32 {
        let n = rng.gen_usize(1, 100);
        let mut b = ProgramBuilder::new(0x4000);
        for _ in 0..n {
            b.nop();
        }
        b.halt();
        let p = b.build().expect("assembles");
        for i in 0..p.len() {
            assert_eq!(p.fetch(p.addr_of(i)), Some(p.insts()[i]));
        }
        assert_eq!(p.fetch(p.code_end()), None);
    }
}

//! Cache side-channel primitives, expressed as attacker operations on the
//! simulated machine.
//!
//! The attacker shares the machine's caches with the victim. Shared-memory
//! channels (Flush+Reload, Flush+Flush, Evict+Reload) operate directly on
//! the victim's probe lines (the attacker has them mapped); non-shared
//! channels (Prime+Probe, Evict+Time) only ever touch *attacker-owned*
//! addresses that conflict with the victim's lines in the cache sets.
//!
//! Timing measurements use [`condspec_mem::CacheHierarchy::peek_latency`],
//! which reports
//! the latency a demand access *would* see without perturbing state —
//! equivalent to a timed access followed by restoring the line's state,
//! and exactly the signal `rdtsc`-based attackers extract.

use condspec::Simulator;
use condspec_mem::LruUpdate;

/// Attacker-owned memory region used to build eviction sets. Kept far
/// from every gadget address.
pub const ATTACKER_REGION: u64 = 0x8000_0000;

/// A reload timing is classified as a hit when it does not exceed this
/// latency (the L1 hit latency of every preset is 2 cycles; 4 leaves
/// headroom without reaching the L2 latency).
pub const HIT_THRESHOLD: u64 = 4;

/// Flushes one line (the attacker's `clflush` on shared memory).
pub fn flush_line(sim: &mut Simulator, vaddr: u64) {
    let paddr = sim.core().page_table().translate(vaddr);
    sim.core_mut().hierarchy_mut().flush_line(paddr);
}

/// Flushes every probe slot of a region (`base + i * stride`).
pub fn flush_region(sim: &mut Simulator, base: u64, stride: u64, slots: usize) {
    for i in 0..slots {
        flush_line(sim, base + i as u64 * stride);
    }
}

/// Times a reload of `vaddr` (Flush+Reload / Evict+Reload measurement).
pub fn reload_latency(sim: &Simulator, vaddr: u64) -> u64 {
    let paddr = sim.core().page_table().translate(vaddr);
    sim.core().hierarchy().peek_latency(paddr)
}

/// Whether a reload of `vaddr` would hit (fast path).
pub fn reload_hits(sim: &Simulator, vaddr: u64) -> bool {
    reload_latency(sim, vaddr) <= HIT_THRESHOLD
}

/// Flush+Flush measurement: flushing a *cached* line is observably slower
/// than flushing an absent one. Returns `true` when the flush was "slow",
/// i.e. the line was present. (Destructive: the line is flushed.)
pub fn flush_was_slow(sim: &mut Simulator, vaddr: u64) -> bool {
    let paddr = sim.core().page_table().translate(vaddr);
    sim.core_mut().hierarchy_mut().flush_line(paddr)
}

/// The attacker-owned line addresses that conflict with `vaddr` in the
/// L1D (one per way, all inside [`ATTACKER_REGION`]).
pub fn l1_eviction_set(sim: &Simulator, vaddr: u64) -> Vec<u64> {
    let paddr = sim.core().page_table().translate(vaddr);
    let l1d = sim.core().hierarchy().l1d();
    let ways = l1d.config().ways;
    l1d.conflicting_lines(paddr, ATTACKER_REGION, ways)
}

/// Accesses every line of an eviction set (attacker demand accesses),
/// evicting the target line from L1D and installing the attacker's lines
/// (the *prime* step of Prime+Probe, and the *evict* step of
/// Evict+Reload / Evict+Time).
pub fn prime_set(sim: &mut Simulator, eviction_set: &[u64]) {
    for &line in eviction_set {
        sim.core_mut()
            .hierarchy_mut()
            .access_data(line, LruUpdate::Normal);
    }
}

/// Evicts `vaddr` from L1D using attacker-owned conflicting accesses.
pub fn evict_line(sim: &mut Simulator, vaddr: u64) {
    let set = l1_eviction_set(sim, vaddr);
    prime_set(sim, &set);
    // Accessing `ways` distinct conflicting lines fills the whole set,
    // displacing the target. (True-LRU makes this deterministic.)
    debug_assert!(!sim
        .core()
        .hierarchy()
        .l1d()
        .probe(sim.core().page_table().translate(vaddr)));
}

/// The *probe* step of Prime+Probe: how many of the attacker's primed
/// lines are still resident in L1D. A count below the set size means the
/// victim touched this set.
pub fn probe_set_hits(sim: &Simulator, eviction_set: &[u64]) -> usize {
    let l1d = sim.core().hierarchy().l1d();
    eviction_set.iter().filter(|l| l1d.probe(**l)).count()
}

/// The Evict+Time style aggregate measurement: total latency of
/// re-accessing the attacker's lines. Larger totals mean the victim
/// displaced something.
pub fn time_set(sim: &Simulator, eviction_set: &[u64]) -> u64 {
    eviction_set
        .iter()
        .map(|l| sim.core().hierarchy().peek_latency(*l))
        .sum()
}

/// The L1D set index a virtual address maps to (attacker layout
/// knowledge, used to exclude known victim addresses from verdicts).
pub fn l1_set_of(sim: &Simulator, vaddr: u64) -> usize {
    let paddr = sim.core().page_table().translate(vaddr);
    sim.core().hierarchy().l1d().set_index(paddr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use condspec::{DefenseConfig, SimConfig};

    fn sim() -> Simulator {
        Simulator::new(SimConfig::new(DefenseConfig::Origin))
    }

    #[test]
    fn flush_then_reload_is_slow() {
        let mut s = sim();
        s.core_mut()
            .hierarchy_mut()
            .access_data(0x9000, LruUpdate::Normal);
        assert!(reload_hits(&s, 0x9000));
        flush_line(&mut s, 0x9000);
        assert!(!reload_hits(&s, 0x9000));
    }

    #[test]
    fn flush_flush_distinguishes_presence() {
        let mut s = sim();
        s.core_mut()
            .hierarchy_mut()
            .access_data(0x9000, LruUpdate::Normal);
        assert!(flush_was_slow(&mut s, 0x9000), "cached line: slow flush");
        assert!(!flush_was_slow(&mut s, 0x9000), "now absent: fast flush");
    }

    #[test]
    fn eviction_set_conflicts_and_evicts() {
        let mut s = sim();
        let target = 0xa040;
        s.core_mut()
            .hierarchy_mut()
            .access_data(target, LruUpdate::Normal);
        let set = l1_eviction_set(&s, target);
        assert_eq!(set.len(), 4, "paper-default L1D is 4-way");
        for line in &set {
            assert_eq!(
                s.core().hierarchy().l1d().set_index(*line),
                l1_set_of(&s, target)
            );
            assert!(*line >= ATTACKER_REGION);
        }
        evict_line(&mut s, target);
        assert!(!reload_hits(&s, target));
    }

    #[test]
    fn prime_probe_detects_victim_access() {
        let mut s = sim();
        let victim_line = 0xb000;
        let set = l1_eviction_set(&s, victim_line);
        prime_set(&mut s, &set);
        assert_eq!(probe_set_hits(&s, &set), 4, "all primed lines resident");
        // Victim touches its line: one attacker way is displaced.
        s.core_mut()
            .hierarchy_mut()
            .access_data(victim_line, LruUpdate::Normal);
        assert_eq!(probe_set_hits(&s, &set), 3);
    }

    #[test]
    fn time_set_grows_after_victim_access() {
        let mut s = sim();
        let victim_line = 0xc000;
        let set = l1_eviction_set(&s, victim_line);
        prime_set(&mut s, &set);
        let quiet = time_set(&s, &set);
        s.core_mut()
            .hierarchy_mut()
            .access_data(victim_line, LruUpdate::Normal);
        let noisy = time_set(&s, &set);
        assert!(noisy > quiet, "displacement shows up in aggregate timing");
    }

    #[test]
    fn flush_region_clears_all_slots() {
        let mut s = sim();
        for i in 0..4u64 {
            s.core_mut()
                .hierarchy_mut()
                .access_data(0x2_0000 + i * 4096, LruUpdate::Normal);
        }
        flush_region(&mut s, 0x2_0000, 4096, 4);
        for i in 0..4u64 {
            assert!(!reload_hits(&s, 0x2_0000 + i * 4096));
        }
    }
}

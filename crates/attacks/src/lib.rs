#![warn(missing_docs)]

//! End-to-end Spectre attacks against the simulated machine, used for the
//! paper's security analysis (Table IV).
//!
//! An attack is: train the predictors, prepare the cache channel
//! (flush / evict / prime), trigger the victim with a malicious input,
//! and read the channel back. The verdict is whether the planted secret
//! byte was actually recovered — not a proxy metric.
//!
//! * [`channel`] — side-channel primitives (flush, evict, prime, probe,
//!   timed reload).
//! * [`spectre`] — the attack drivers: six channel scenarios (Table IV
//!   rows) and per-variant drivers (V1, V2, V4).
//!
//! # Examples
//!
//! ```
//! use condspec_attacks::{AttackScenario};
//! use condspec::DefenseConfig;
//!
//! // Flush+Reload on the unprotected core leaks the planted secret...
//! let outcome = AttackScenario::FlushReloadShared.run(DefenseConfig::Origin);
//! assert!(outcome.leaked());
//! // ...and the full defense stops it.
//! let outcome = AttackScenario::FlushReloadShared.run(DefenseConfig::CacheHitTpbuf);
//! assert!(!outcome.leaked());
//! ```

pub mod channel;
pub mod spectre;

pub use spectre::{
    leak_probe, run_variant, traced_variant_round, AttackOutcome, AttackScenario, LeakProbeOutcome,
};

//! Attack orchestration: the six Table IV channel scenarios and the
//! per-variant Spectre drivers.

use crate::channel;
use condspec::{DefenseConfig, SimConfig, Simulator};
use condspec_pipeline::{LeakReport, TaintConfig, TraceEvent};
use condspec_workloads::gadgets::{GadgetKind, SpectreGadget};
use std::collections::{HashMap, HashSet};

/// Cycle budget per victim invocation (gadgets finish in a few thousand
/// cycles; the budget only guards against harness bugs).
const RUN_BUDGET: u64 = 500_000;

/// Number of attack rounds; the first round doubles as a cache warmer
/// (real attacks run continuously).
const ROUNDS: usize = 2;

/// Result of one end-to-end attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The secret value the channel readout singled out, if any.
    pub recovered: Option<u8>,
    /// The secret the gadget layout plants.
    pub planted: u8,
    /// All candidate values the readout produced (after excluding the
    /// victim's architecturally-touched lines).
    pub candidates: Vec<usize>,
}

impl AttackOutcome {
    /// Whether the attack actually extracted the planted secret.
    pub fn leaked(&self) -> bool {
        self.recovered == Some(self.planted)
    }
}

/// The six attack classifications of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackScenario {
    /// Flush+Reload over shared memory (the classic Spectre V1 channel).
    FlushReloadShared,
    /// Flush+Flush over shared memory (flush-latency readout).
    FlushFlushShared,
    /// Evict+Reload over shared memory (no `clflush`; conflict
    /// evictions + timed reload).
    EvictReloadShared,
    /// Prime+Probe with a shared transmit array (the SpectrePrime-like
    /// scenario; set-granular readout).
    PrimeProbeShared,
    /// Prime+Probe with no shared memory: the transmit array lives in
    /// the secret's own page.
    PrimeProbeNoShare,
    /// Evict+Time with no shared memory: aggregate re-access timing.
    EvictTimeNoShare,
}

impl AttackScenario {
    /// All six scenarios in the paper's Table IV order.
    pub const ALL: [AttackScenario; 6] = [
        AttackScenario::FlushReloadShared,
        AttackScenario::FlushFlushShared,
        AttackScenario::EvictReloadShared,
        AttackScenario::PrimeProbeShared,
        AttackScenario::PrimeProbeNoShare,
        AttackScenario::EvictTimeNoShare,
    ];

    /// Table-row label.
    pub fn label(&self) -> &'static str {
        match self {
            AttackScenario::FlushReloadShared => "Flush+Reload, share data",
            AttackScenario::FlushFlushShared => "Flush+Flush, share data",
            AttackScenario::EvictReloadShared => "Evict+Reload, share data",
            AttackScenario::PrimeProbeShared => "Prime+Probe, share data",
            AttackScenario::PrimeProbeNoShare => "Prime+Probe, no shared data",
            AttackScenario::EvictTimeNoShare => "Evict+Time, no shared data",
        }
    }

    /// A stable machine-readable key (CLI values, job hashes). The
    /// inverse of [`AttackScenario::from_key`].
    pub fn key(&self) -> &'static str {
        match self {
            AttackScenario::FlushReloadShared => "flush-reload",
            AttackScenario::FlushFlushShared => "flush-flush",
            AttackScenario::EvictReloadShared => "evict-reload",
            AttackScenario::PrimeProbeShared => "prime-probe",
            AttackScenario::PrimeProbeNoShare => "prime-probe-noshare",
            AttackScenario::EvictTimeNoShare => "evict-time",
        }
    }

    /// Parses an [`AttackScenario::key`] value.
    pub fn from_key(key: &str) -> Option<AttackScenario> {
        AttackScenario::ALL.iter().copied().find(|s| s.key() == key)
    }

    /// Whether the channel relies on attacker/victim shared memory.
    pub fn shared_memory(&self) -> bool {
        matches!(
            self,
            AttackScenario::FlushReloadShared
                | AttackScenario::FlushFlushShared
                | AttackScenario::EvictReloadShared
                | AttackScenario::PrimeProbeShared
        )
    }

    /// The paper's Table IV ground truth: is `defense` expected to stop
    /// this scenario?
    pub fn expected_defended(&self, defense: DefenseConfig) -> bool {
        match defense {
            DefenseConfig::Origin => false,
            DefenseConfig::Baseline | DefenseConfig::CacheHit => true,
            // TPBuf's S-Pattern is defined for shared-memory,
            // page-granular channels; the non-shared rows evade it.
            DefenseConfig::CacheHitTpbuf => self.shared_memory(),
        }
    }

    /// Runs the scenario against a fresh machine with `defense`.
    pub fn run(&self, defense: DefenseConfig) -> AttackOutcome {
        let mut sim = Simulator::new(SimConfig::new(defense));
        self.run_on(&mut sim)
    }

    /// Runs the scenario on an existing machine.
    pub fn run_on(&self, sim: &mut Simulator) -> AttackOutcome {
        match self {
            AttackScenario::FlushReloadShared => {
                flush_style_attack(sim, GadgetKind::V1, Readout::Reload)
            }
            AttackScenario::FlushFlushShared => {
                flush_style_attack(sim, GadgetKind::V1, Readout::FlushTiming)
            }
            AttackScenario::EvictReloadShared => evict_reload_attack(sim),
            AttackScenario::PrimeProbeShared => {
                prime_style_attack(sim, GadgetKind::V1SetStride, Readout::ProbeCount)
            }
            AttackScenario::PrimeProbeNoShare => {
                prime_style_attack(sim, GadgetKind::V1SamePage, Readout::ProbeCount)
            }
            AttackScenario::EvictTimeNoShare => {
                prime_style_attack(sim, GadgetKind::V1SamePage, Readout::SetTiming)
            }
        }
    }
}

impl std::fmt::Display for AttackScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the channel is read back after the victim runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Readout {
    /// Timed reload of each slot (Flush+Reload / Evict+Reload).
    Reload,
    /// Flush-latency of each slot (Flush+Flush).
    FlushTiming,
    /// Residency count of each primed set (Prime+Probe).
    ProbeCount,
    /// Aggregate re-access timing of each primed set (Evict+Time).
    SetTiming,
}

/// Runs the variant-specific attack (Flush+Reload channel for the three
/// page-stride variants, Prime+Probe for the set-stride one), as used by
/// the per-variant security analysis.
pub fn run_variant(kind: GadgetKind, defense: DefenseConfig) -> AttackOutcome {
    let mut sim = Simulator::new(SimConfig::new(defense));
    match kind {
        GadgetKind::V1 | GadgetKind::V2 | GadgetKind::V4 => {
            flush_style_attack(&mut sim, kind, Readout::Reload)
        }
        GadgetKind::V1SetStride | GadgetKind::V1SamePage => {
            prime_style_attack(&mut sim, kind, Readout::ProbeCount)
        }
        GadgetKind::Rsb => rsb_attack(&mut sim),
    }
}

/// Warms and trains a Spectre gadget, then runs one malicious round
/// with pipeline tracing enabled and returns the trace (the last
/// `events` pipeline events of the round).
///
/// This is the shared setup behind `condspec trace` and the serve
/// daemon's trace endpoint: load the gadget, train with the in-bounds
/// input, reload with the attack input, flush the bounds/pointer lines
/// the variant needs cold, pre-poison the BTB for v2, and trace the
/// attack run.
pub fn traced_variant_round(
    kind: GadgetKind,
    defense: DefenseConfig,
    events: usize,
) -> condspec_pipeline::TraceBuffer {
    let gadget = SpectreGadget::build(kind);
    let mut sim = Simulator::new(SimConfig::new(defense));
    // Warm + train, then trace one malicious round.
    sim.load_program(gadget.program.clone());
    sim.write_memory(gadget.input_addr, gadget.train_input, 8);
    sim.run(RUN_BUDGET);
    sim.load_program(gadget.program.clone());
    sim.write_memory(gadget.input_addr, gadget.attack_input, 8);
    if let Some(len) = gadget.len_addr {
        let pa = sim.core().page_table().translate(len);
        sim.core_mut().hierarchy_mut().flush_line(pa);
    }
    if let Some(slot) = gadget.pointer_slot {
        let pa = sim.core().page_table().translate(slot);
        sim.core_mut().hierarchy_mut().flush_line(pa);
    }
    if kind == GadgetKind::V2 {
        let jr = gadget.indirect_pc.expect("v2 gadget");
        let target = gadget.gadget_entry.expect("v2 gadget");
        sim.core_mut().frontend_mut().btb_mut().update(jr, target);
    }
    sim.core_mut().enable_trace(events);
    sim.run(RUN_BUDGET);
    sim.core_mut().disable_trace().expect("tracing enabled")
}

/// Result of one taint-oracle leak probe (see [`leak_probe`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LeakProbeOutcome {
    /// Per-channel leak totals of the malicious round.
    pub leaks: LeakReport,
    /// The round's [`TraceEvent::Leak`] records, in resolution order.
    pub events: Vec<TraceEvent>,
}

impl LeakProbeOutcome {
    /// Whether a cache-channel leak survived a squash — the oracle's
    /// verdict that the gadget transmitted through the paper's threat
    /// model. TLB and TPBuf survivors are reported but excluded: they
    /// are the paper's admitted blind spots, not its claim.
    pub fn cache_leaked(&self) -> bool {
        self.leaks.cache_survived() > 0
    }
}

/// Trace capacity for leak probes: comfortably above the pipeline event
/// count of one gadget round, so leak records are never pushed out of
/// the bounded buffer.
const LEAK_TRACE_EVENTS: usize = 1 << 17;

/// Runs one Spectre gadget round under the taint-tracking leak oracle
/// and reports every channel a secret-tainted value reached.
///
/// The harness mirrors the end-to-end attacks — train the predictors,
/// flush the channel, trigger the victim with the malicious input — but
/// the verdict comes from the oracle watching information flow inside
/// the pipeline, not from an attacker reading the channel back. The
/// planted secret's physical bytes are the taint source.
pub fn leak_probe(kind: GadgetKind, defense: DefenseConfig) -> LeakProbeOutcome {
    let gadget = SpectreGadget::build(kind);
    let mut sim = Simulator::new(SimConfig::new(defense));

    // Warm + train exactly like the end-to-end attacks.
    let pollution = (kind == GadgetKind::Rsb).then(|| {
        std::sync::Arc::new(condspec_workloads::gadgets::rsb_pollution_program(
            gadget.gadget_entry.expect("rsb gadget"),
        ))
    });
    match kind {
        GadgetKind::V1 | GadgetKind::V1SamePage | GadgetKind::V1SetStride => {
            train(&mut sim, &gadget, 8);
        }
        GadgetKind::V2 | GadgetKind::V4 => {
            sim.load_program(gadget.program.clone());
            sim.run(RUN_BUDGET);
        }
        GadgetKind::Rsb => {
            let pollution = pollution.clone().expect("built above");
            sim.core_mut().map_shared_code(pollution);
            sim.load_program(gadget.program.clone());
            sim.run(RUN_BUDGET);
        }
    }

    // Taint the planted secret's physical bytes and watch the malicious
    // round.
    let secret_pa = sim.core().page_table().translate(gadget.secret_addr);
    let secret_len = gadget.planted_secret_bytes().len() as u64;
    sim.core_mut()
        .enable_taint(TaintConfig::range(secret_pa, secret_len));
    sim.core_mut().enable_trace(LEAK_TRACE_EVENTS);

    // Two malicious rounds, like the end-to-end attacks: the first warms
    // the victim's own lines (a cold secret line can stall the tainted
    // value past the branch resolution and close the window).
    for _ in 0..ROUNDS {
        if let Some(pollution) = &pollution {
            // Re-plant the dangling RAS entry before every trigger.
            sim.load_program(pollution.clone());
            sim.run(RUN_BUDGET);
            assert!(sim.core().is_halted(), "pollution run must complete");
        }
        sim.load_program(gadget.program.clone());
        sim.write_memory(gadget.input_addr, gadget.attack_input, 8);
        channel::flush_region(
            &mut sim,
            gadget.probe_base,
            gadget.probe_stride,
            gadget.probe_slots,
        );
        if let Some(len) = gadget.len_addr {
            channel::flush_line(&mut sim, len);
        }
        if let Some(slot) = gadget.pointer_slot {
            channel::flush_line(&mut sim, slot);
        }
        if kind == GadgetKind::V2 {
            let jr = gadget.indirect_pc.expect("v2 has an indirect jump");
            let target = gadget.gadget_entry.expect("v2 has a gadget");
            sim.core_mut().frontend_mut().btb_mut().update(jr, target);
        }
        sim.run(RUN_BUDGET);
        assert!(sim.core().is_halted(), "leak probe run must complete");
    }

    let oracle = sim.core_mut().disable_taint().expect("taint enabled");
    let trace = sim.core_mut().disable_trace().expect("tracing enabled");
    let events = trace
        .events()
        .filter(|e| matches!(e, TraceEvent::Leak { .. }))
        .copied()
        .collect();
    LeakProbeOutcome {
        leaks: oracle.report(),
        events,
    }
}

/// The SpectreRSB attack: the attacker runs an unbalanced-call program
/// that leaves a stale entry on the shared return-address stack, pointing
/// at attacker code that jumps into the victim's disclosure gadget. The
/// victim's delinquent `ret` then speculatively returns through it.
/// Readout is Flush+Reload on the shared probe array.
pub fn rsb_attack(sim: &mut Simulator) -> AttackOutcome {
    use condspec_workloads::gadgets::rsb_pollution_program;
    let gadget = SpectreGadget::build(GadgetKind::Rsb);
    let pollution = std::sync::Arc::new(rsb_pollution_program(
        gadget.gadget_entry.expect("rsb gadget"),
    ));

    // The attacker's stub is an executable page mapped into the shared
    // address space (like a shared library); the victim's wrong path can
    // fetch through it.
    sim.core_mut().map_shared_code(pollution.clone());

    // Warm run: victim executes its legitimate path once.
    sim.load_program(gadget.program.clone());
    sim.run(RUN_BUDGET);

    let mut candidates = Vec::new();
    for round in 0..ROUNDS {
        // Pollute the RAS (the dangling entry survives program loads —
        // predictors are shared microarchitectural state).
        sim.load_program(pollution.clone());
        sim.run(RUN_BUDGET);
        assert!(sim.core().is_halted(), "pollution run must complete");

        trigger(sim, &gadget, |sim| {
            channel::flush_region(
                sim,
                gadget.probe_base,
                gadget.probe_stride,
                gadget.probe_slots,
            );
            if let Some(slot) = gadget.pointer_slot {
                channel::flush_line(sim, slot);
            }
        });
        if round + 1 < ROUNDS {
            continue;
        }
        candidates = (0..gadget.probe_slots)
            .filter(|v| channel::reload_hits(sim, gadget.probe_slot_addr(*v)))
            .collect();
    }
    AttackOutcome {
        recovered: single_candidate(&candidates),
        planted: gadget.planted_secret(),
        candidates,
    }
}

/// Extracts an entire multi-byte secret through repeated Flush+Reload
/// V1 attacks: one flush → trigger → reload pass per byte (two rounds
/// each, the first warming the machine), sweeping the malicious index
/// across the victim's memory.
///
/// Returns one entry per planted byte; `None` where the readout was
/// ambiguous.
///
/// # Examples
///
/// ```
/// use condspec::{DefenseConfig, SimConfig, Simulator};
/// use condspec_attacks::spectre::flush_reload_extract;
/// use condspec_workloads::gadgets::{GadgetKind, SpectreGadget};
///
/// let gadget = SpectreGadget::build_with_secret(GadgetKind::V1, b"HI");
/// let mut sim = Simulator::new(SimConfig::new(DefenseConfig::Origin));
/// let bytes = flush_reload_extract(&mut sim, &gadget);
/// assert_eq!(bytes, vec![Some(b'H'), Some(b'I')]);
/// ```
pub fn flush_reload_extract(sim: &mut Simulator, gadget: &SpectreGadget) -> Vec<Option<u8>> {
    let mut recovered = Vec::new();
    for i in 0..gadget.planted_secret_bytes().len() as u64 {
        let mut byte = None;
        // Each mis-speculated run trains the bounds check *taken*, and a
        // history-based predictor can even learn a perfectly periodic
        // train/attack rhythm — so the attacker varies the training
        // length and simply retries, exactly as real exploits do.
        for attempt in 0..6u64 {
            train(sim, gadget, 5 + ((i + attempt) % 5) as usize);
            sim.load_program(gadget.program.clone());
            sim.write_memory(gadget.input_addr, gadget.attack_input + i, 8);
            channel::flush_region(
                sim,
                gadget.probe_base,
                gadget.probe_stride,
                gadget.probe_slots,
            );
            if let Some(len) = gadget.len_addr {
                channel::flush_line(sim, len);
            }
            sim.run(RUN_BUDGET);
            assert!(sim.core().is_halted(), "extraction run must complete");
            let candidates: Vec<usize> = (0..gadget.probe_slots)
                .filter(|v| channel::reload_hits(sim, gadget.probe_slot_addr(*v)))
                .collect();
            if let Some(b) = single_candidate(&candidates) {
                byte = Some(b);
                break;
            }
        }
        recovered.push(byte);
    }
    recovered
}

/// Trains the V1-family branch predictor with in-bounds runs.
fn train(sim: &mut Simulator, gadget: &SpectreGadget, runs: usize) {
    for _ in 0..runs {
        sim.load_program(gadget.program.clone());
        sim.write_memory(gadget.input_addr, gadget.train_input, 8);
        sim.run(RUN_BUDGET);
        assert!(sim.core().is_halted(), "training run must complete");
    }
}

/// One victim invocation with the malicious input.
fn trigger(sim: &mut Simulator, gadget: &SpectreGadget, prepare: impl FnOnce(&mut Simulator)) {
    sim.load_program(gadget.program.clone());
    sim.write_memory(gadget.input_addr, gadget.attack_input, 8);
    prepare(sim);
    sim.run(RUN_BUDGET);
    assert!(sim.core().is_halted(), "attack run must complete");
}

fn single_candidate(candidates: &[usize]) -> Option<u8> {
    match candidates {
        [v] => u8::try_from(*v).ok(),
        _ => None,
    }
}

/// Flush-based attacks (shared memory): flush the probe array and the
/// window lines, run the victim, read slots back by reload or flush
/// timing.
fn flush_style_attack(sim: &mut Simulator, kind: GadgetKind, readout: Readout) -> AttackOutcome {
    let gadget = SpectreGadget::build(kind);
    if matches!(
        kind,
        GadgetKind::V1 | GadgetKind::V1SamePage | GadgetKind::V1SetStride
    ) {
        train(sim, &gadget, 8);
    } else {
        // V2/V4: one warm run (code, pointer slots).
        sim.load_program(gadget.program.clone());
        sim.run(RUN_BUDGET);
    }

    let mut candidates = Vec::new();
    for round in 0..ROUNDS {
        trigger(sim, &gadget, |sim| {
            channel::flush_region(
                sim,
                gadget.probe_base,
                gadget.probe_stride,
                gadget.probe_slots,
            );
            if let Some(len) = gadget.len_addr {
                channel::flush_line(sim, len);
            }
            if let Some(slot) = gadget.pointer_slot {
                channel::flush_line(sim, slot);
            }
            if kind == GadgetKind::V2 {
                // Poison the BTB entry of the victim's indirect jump.
                let jr = gadget.indirect_pc.expect("v2 has an indirect jump");
                let target = gadget.gadget_entry.expect("v2 has a gadget");
                sim.core_mut().frontend_mut().btb_mut().update(jr, target);
            }
        });
        if round + 1 < ROUNDS {
            continue; // earlier rounds only warm the machine
        }
        candidates = (0..gadget.probe_slots)
            .filter(|v| {
                let addr = gadget.probe_slot_addr(*v);
                match readout {
                    Readout::Reload => channel::reload_hits(sim, addr),
                    Readout::FlushTiming => channel::flush_was_slow(sim, addr),
                    _ => unreachable!("flush-style attacks use line-granular readouts"),
                }
            })
            // V4's architectural replay transmits through slot 0 (the
            // benign byte); every attacker discards it as ground noise.
            .filter(|v| kind != GadgetKind::V4 || *v != 0)
            .collect();
    }
    AttackOutcome {
        recovered: single_candidate(&candidates),
        planted: gadget.planted_secret(),
        candidates,
    }
}

/// Evict+Reload (shared memory, no `clflush`): evict the probe slots and
/// the bounds line with attacker-owned conflicts, read back by reload.
fn evict_reload_attack(sim: &mut Simulator) -> AttackOutcome {
    let gadget = SpectreGadget::build(GadgetKind::V1);
    train(sim, &gadget, 8);

    let mut candidates = Vec::new();
    for round in 0..ROUNDS {
        trigger(sim, &gadget, |sim| {
            for v in 0..gadget.probe_slots {
                channel::evict_line(sim, gadget.probe_slot_addr(v));
            }
            if let Some(len) = gadget.len_addr {
                channel::evict_line(sim, len);
            }
            // Eviction may have displaced the victim's input line; the
            // timing of x does not matter for the window (the chain on
            // `len` provides it), but re-warming models the attacker
            // invoking the victim's entry path repeatedly.
            let input_pa = sim.core().page_table().translate(gadget.input_addr);
            sim.core_mut()
                .hierarchy_mut()
                .access_data(input_pa, condspec_mem::LruUpdate::Normal);
        });
        if round + 1 < ROUNDS {
            continue;
        }
        candidates = (0..gadget.probe_slots)
            .filter(|v| channel::reload_hits(sim, gadget.probe_slot_addr(*v)))
            .collect();
    }
    AttackOutcome {
        recovered: single_candidate(&candidates),
        planted: gadget.planted_secret(),
        candidates,
    }
}

/// Prime-based attacks (set-granular, usable without shared memory):
/// prime every candidate slot's L1 set with attacker lines, run the
/// victim, find the set the victim displaced.
fn prime_style_attack(sim: &mut Simulator, kind: GadgetKind, readout: Readout) -> AttackOutcome {
    let gadget = SpectreGadget::build(kind);
    train(sim, &gadget, 8);

    // Build one eviction set per candidate value.
    let sets: HashMap<usize, Vec<u64>> = (0..gadget.probe_slots)
        .map(|v| (v, channel::l1_eviction_set(sim, gadget.probe_slot_addr(v))))
        .collect();
    let ways = sim.core().hierarchy().l1d().config().ways;
    let l1_hit = sim.core().hierarchy().l1d().config().hit_latency;

    // The attacker knows the victim's layout; sets its fixed accesses map
    // to are excluded from the verdict.
    let excluded: HashSet<usize> = victim_fixed_lines(&gadget)
        .into_iter()
        .map(|addr| channel::l1_set_of(sim, addr))
        .collect();

    let mut candidates = Vec::new();
    for round in 0..ROUNDS {
        trigger(sim, &gadget, |sim| {
            for v in 0..gadget.probe_slots {
                channel::prime_set(sim, &sets[&v]);
            }
            if let Some(len) = gadget.len_addr {
                channel::evict_line(sim, len);
            }
            let input_pa = sim.core().page_table().translate(gadget.input_addr);
            sim.core_mut()
                .hierarchy_mut()
                .access_data(input_pa, condspec_mem::LruUpdate::Normal);
        });
        if round + 1 < ROUNDS {
            continue;
        }
        candidates = (0..gadget.probe_slots)
            .filter(|v| !excluded.contains(&channel::l1_set_of(sim, gadget.probe_slot_addr(*v))))
            .filter(|v| match readout {
                Readout::ProbeCount => channel::probe_set_hits(sim, &sets[v]) < ways,
                Readout::SetTiming => channel::time_set(sim, &sets[v]) > ways as u64 * l1_hit,
                _ => unreachable!("prime-style attacks use set-granular readouts"),
            })
            .collect();
    }
    AttackOutcome {
        recovered: single_candidate(&candidates),
        planted: gadget.planted_secret(),
        candidates,
    }
}

/// The victim's architecturally-touched data lines (layout knowledge the
/// threat model grants the attacker).
fn victim_fixed_lines(gadget: &SpectreGadget) -> Vec<u64> {
    let mut lines = vec![gadget.input_addr, gadget.secret_addr];
    if let Some(len) = gadget.len_addr {
        lines.push(len);
    }
    lines.push(condspec_workloads::gadgets::layout::ARRAY1 + gadget.train_input);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end attack/defense verdicts live in the repository-level
    // integration tests (tests/table4_security.rs); here we check the
    // orchestration plumbing on the cheapest scenario.

    #[test]
    fn flush_reload_leaks_on_origin() {
        let outcome = AttackScenario::FlushReloadShared.run(DefenseConfig::Origin);
        assert!(
            outcome.leaked(),
            "F+R must recover the planted secret on the unprotected core: {outcome:?}"
        );
        assert_eq!(outcome.recovered, Some(42));
    }

    #[test]
    fn flush_reload_blocked_by_baseline() {
        let outcome = AttackScenario::FlushReloadShared.run(DefenseConfig::Baseline);
        assert!(!outcome.leaked(), "baseline must block: {outcome:?}");
        assert!(outcome.candidates.is_empty(), "no probe line may fill");
    }

    #[test]
    fn expected_defense_matrix_matches_table_iv() {
        use AttackScenario::*;
        use DefenseConfig::*;
        for s in AttackScenario::ALL {
            assert!(!s.expected_defended(Origin));
            assert!(s.expected_defended(Baseline));
            assert!(s.expected_defended(CacheHit));
        }
        assert!(FlushReloadShared.expected_defended(CacheHitTpbuf));
        assert!(PrimeProbeShared.expected_defended(CacheHitTpbuf));
        assert!(!PrimeProbeNoShare.expected_defended(CacheHitTpbuf));
        assert!(!EvictTimeNoShare.expected_defended(CacheHitTpbuf));
    }

    #[test]
    fn scenario_labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            AttackScenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn outcome_leak_requires_exact_recovery() {
        let o = AttackOutcome {
            recovered: Some(41),
            planted: 42,
            candidates: vec![41],
        };
        assert!(!o.leaked());
        let o = AttackOutcome {
            recovered: Some(42),
            planted: 42,
            candidates: vec![42],
        };
        assert!(o.leaked());
        let o = AttackOutcome {
            recovered: None,
            planted: 42,
            candidates: vec![1, 2],
        };
        assert!(!o.leaked());
    }
}

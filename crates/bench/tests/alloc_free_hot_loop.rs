//! Proves the steady-state simulation loop is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up that touches every memory page, predictor table and scratch
//! buffer the harness will ever need, a measured window of full
//! train/train/attack gadget rounds must perform **zero** new heap
//! allocations — reloads included, since `load_program_shared` only
//! resets pre-sized structures.
//!
//! This test lives in its own integration binary because a global
//! allocator is per-binary, and it is the only `#[test]` here so no
//! concurrent test can perturb the counter.

use condspec::{DefenseConfig, SimConfig, Simulator};
use condspec_workloads::gadgets::{GadgetKind, SpectreGadget};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const RUN_BUDGET: u64 = 500_000;
const WARMUP_ROUNDS: u32 = 10;
const MEASURED_ROUNDS: u32 = 50;

/// One train/train/attack cell round, identical in shape to the
/// `condspec perf` harness and the leakage experiments.
fn round(sim: &mut Simulator, gadget: &SpectreGadget) -> u64 {
    let mut cycles = 0;
    for _ in 0..2 {
        sim.load_program_shared(gadget.program.clone());
        sim.write_memory(gadget.input_addr, gadget.train_input, 8);
        cycles += sim.run(RUN_BUDGET).cycles;
    }
    sim.load_program_shared(gadget.program.clone());
    sim.write_memory(gadget.input_addr, gadget.attack_input, 8);
    if let Some(len) = gadget.len_addr {
        let pa = sim.core().page_table().translate(len);
        sim.core_mut().hierarchy_mut().flush_line(pa);
    }
    cycles += sim.run(RUN_BUDGET).cycles;
    cycles
}

#[test]
fn steady_state_rounds_do_not_allocate() {
    let gadget = SpectreGadget::build(GadgetKind::V1);
    for defense in [DefenseConfig::Origin, DefenseConfig::CacheHitTpbuf] {
        let mut sim = Simulator::new(SimConfig::new(defense));
        for _ in 0..WARMUP_ROUNDS {
            round(&mut sim, &gadget);
        }

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut cycles = 0;
        for _ in 0..MEASURED_ROUNDS {
            cycles += round(&mut sim, &gadget);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);

        assert!(cycles > 0, "measured window must simulate real work");
        assert_eq!(
            after - before,
            0,
            "{defense:?}: steady-state rounds allocated {} time(s) over \
             {MEASURED_ROUNDS} rounds ({cycles} cycles)",
            after - before,
        );
    }
}

//! Proves the steady-state simulation loop is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up that touches every memory page, predictor table and scratch
//! buffer the harness will ever need, a measured window of full
//! train/train/attack gadget rounds must perform **zero** new heap
//! allocations — reloads included, since `load_program` only
//! resets pre-sized structures. A second measured window runs a
//! mispredict-heavy branchy pointer chase, so the squash path (rename
//! walk-back, IQ squash, wakeup unsubscription, lazy event invalidation)
//! is proven heap-free too, not just the mostly-straight-line gadget.
//!
//! This test lives in its own integration binary because a global
//! allocator is per-binary, and it is the only `#[test]` here so no
//! concurrent test can perturb the counter.

use condspec::{DefenseConfig, ExitReason, SimConfig, Simulator};
use condspec_isa::{AluOp, BranchCond, Program, ProgramBuilder, Reg};
use condspec_stats::SplitMix64;
use condspec_workloads::gadgets::{GadgetKind, SpectreGadget};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const RUN_BUDGET: u64 = 500_000;
const WARMUP_ROUNDS: u32 = 10;
const MEASURED_ROUNDS: u32 = 50;

/// Branchy-chase geometry: an 8 KiB pointer ring (L1-resident, so the
/// loop turns fast) walked by loads whose values feed branch conditions.
const CHASE_CODE_BASE: u64 = 0x0040_0000;
const CHASE_RING_BASE: u64 = 0x0800_0000;
const CHASE_RING_SLOTS: usize = 1024;
const CHASE_ITERATIONS: u64 = 400;

/// One train/train/attack cell round, identical in shape to the
/// `condspec perf` harness and the leakage experiments.
fn round(sim: &mut Simulator, gadget: &SpectreGadget) -> u64 {
    let mut cycles = 0;
    for _ in 0..2 {
        sim.load_program(gadget.program.clone());
        sim.write_memory(gadget.input_addr, gadget.train_input, 8);
        cycles += sim.run(RUN_BUDGET).cycles;
    }
    sim.load_program(gadget.program.clone());
    sim.write_memory(gadget.input_addr, gadget.attack_input, 8);
    if let Some(len) = gadget.len_addr {
        let pa = sim.core().page_table().translate(len);
        sim.core_mut().hierarchy_mut().flush_line(pa);
    }
    cycles += sim.run(RUN_BUDGET).cycles;
    cycles
}

/// A pointer chase whose loaded values drive data-dependent branches:
/// each ring word's low bits are effectively random, so the forward
/// branch is unpredictable and resolves only after the load returns —
/// deep wrong paths and constant mispredict squashes.
fn branchy_chase(iterations: u64) -> Program {
    // Single-cycle ring permutation (Sattolo's algorithm).
    let mut rng = SplitMix64::new(0x5eed_ba5e_0b1a_5e01);
    let mut idx: Vec<usize> = (0..CHASE_RING_SLOTS).collect();
    for i in (1..CHASE_RING_SLOTS).rev() {
        let j = (rng.next_u64() % i as u64) as usize;
        idx.swap(i, j);
    }
    let mut next = vec![0usize; CHASE_RING_SLOTS];
    for w in 0..CHASE_RING_SLOTS {
        next[idx[w]] = idx[(w + 1) % CHASE_RING_SLOTS];
    }
    let words: Vec<u64> = next
        .iter()
        .map(|&n| CHASE_RING_BASE + 8 * n as u64)
        .collect();

    let mut b = ProgramBuilder::new(CHASE_CODE_BASE);
    b.li(Reg::R1, iterations);
    b.li(Reg::R2, CHASE_RING_BASE + 8 * idx[0] as u64);
    b.li(Reg::R4, 0);
    let top = b.here();
    b.load(Reg::R2, Reg::R2, 0);
    // Bit 3 of the chased pointer is a permutation artifact — close to a
    // coin flip per step, and unknown until the load completes.
    b.alu_imm(AluOp::And, Reg::R3, Reg::R2, 8);
    b.branch_to(BranchCond::Ne, Reg::R3, Reg::R0, "skip");
    b.alu_imm(AluOp::Add, Reg::R4, Reg::R4, 1);
    b.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R2);
    b.label("skip").expect("fresh label");
    b.alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1);
    b.branch(BranchCond::Ne, Reg::R1, Reg::R0, top);
    b.halt();
    b.data_u64s(CHASE_RING_BASE, &words);
    b.build().expect("branchy chase assembles")
}

fn chase_round(sim: &mut Simulator, program: &Arc<Program>) -> u64 {
    sim.load_program(program.clone());
    let result = sim.run(RUN_BUDGET);
    assert_eq!(result.exit, ExitReason::Halted, "chase must run to halt");
    result.cycles
}

#[test]
fn steady_state_rounds_do_not_allocate() {
    let gadget = SpectreGadget::build(GadgetKind::V1);
    let chase = Arc::new(branchy_chase(CHASE_ITERATIONS));
    for defense in [DefenseConfig::Origin, DefenseConfig::CacheHitTpbuf] {
        let mut sim = Simulator::new(SimConfig::new(defense));
        for _ in 0..WARMUP_ROUNDS {
            round(&mut sim, &gadget);
        }

        // Observability exercised and switched back off before the
        // measured window: with tracing, sampling and the taint oracle
        // disabled the hot loop must pay only an `Option` branch per
        // event site, never an allocation.
        sim.core_mut().enable_trace(256);
        sim.core_mut().enable_sampler(10_000, 64);
        let secret_pa = sim.core().page_table().translate(gadget.secret_addr);
        sim.core_mut()
            .enable_taint(condspec_pipeline::TaintConfig::range(secret_pa, 64));
        round(&mut sim, &gadget);
        sim.core_mut().disable_trace();
        sim.core_mut().disable_sampler();
        sim.core_mut().disable_taint();

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut cycles = 0;
        for _ in 0..MEASURED_ROUNDS {
            cycles += round(&mut sim, &gadget);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);

        assert!(cycles > 0, "measured window must simulate real work");
        assert_eq!(
            after - before,
            0,
            "{defense:?}: steady-state rounds allocated {} time(s) over \
             {MEASURED_ROUNDS} rounds ({cycles} cycles)",
            after - before,
        );

        // Second window: the mispredict-heavy chase on the same core, so
        // squash recovery runs hot inside the measured region.
        for _ in 0..WARMUP_ROUNDS {
            chase_round(&mut sim, &chase);
        }

        let squashes_before = sim.core().stats().mispredict_squashes;
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut cycles = 0;
        for _ in 0..MEASURED_ROUNDS {
            cycles += chase_round(&mut sim, &chase);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        let squashes = sim.core().stats().mispredict_squashes - squashes_before;

        assert!(
            squashes > 0,
            "{defense:?}: branchy chase must exercise squash recovery"
        );
        assert_eq!(
            after - before,
            0,
            "{defense:?}: branchy-chase rounds allocated {} time(s) over \
             {MEASURED_ROUNDS} rounds ({cycles} cycles, {squashes} squashes)",
            after - before,
        );
    }
}

//! Captures the compiler identity at build time.
//!
//! Wall-clock throughput numbers (`condspec perf`) are only comparable
//! when the code was produced by the same compiler on the same class of
//! machine; the `host` block of the simspeed/stagespeed reports records
//! `rustc -V` so `--compare` can refuse cross-toolchain comparisons
//! with a named reason instead of a silent skip.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(&rustc)
        .arg("-V")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .unwrap_or_else(|| "rustc unknown".to_string());
    println!("cargo:rustc-env=CONDSPEC_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}

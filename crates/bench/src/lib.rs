//! Shared experiment-harness helpers for the table/figure reproductions.
//!
//! Every `cargo bench` target in this crate regenerates one of the
//! paper's tables or figures; the sweep logic they share (run a
//! calibrated benchmark on a configured machine, with warm-up, and
//! collect the paper's metrics) lives here.

pub mod perf;
pub mod stage;

use condspec::{DefenseConfig, LruPolicy, MachineConfig, Report, SimConfig, Simulator};
use condspec_pipeline::PipelineStats;
use condspec_workloads::spec::{build_program, WorkloadSpec};

/// Outer iterations per measured benchmark run (~4.8k instructions per
/// iteration). Chosen so the full Figure 5 sweep finishes in minutes
/// while staying far beyond the warm-up transient.
pub const DEFAULT_OUTER_ITERATIONS: u64 = 40;

/// Cycle budget per run; generously above any defense's worst case.
pub const RUN_BUDGET: u64 = 200_000_000;

/// Outer iterations of the separate warm-up run executed before the
/// measured run (caches and predictors stay warm across program loads).
/// Warming by *work* rather than by cycles keeps the measured windows of
/// different defenses architecturally identical, so normalized cycle
/// counts compare like for like.
pub const WARMUP_ITERATIONS: u64 = 6;

/// One benchmark x configuration measurement.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Defense environment.
    pub defense: DefenseConfig,
    /// The evaluation report for the measured window.
    pub report: Report,
    /// Raw pipeline statistics for the measured window.
    pub pipeline: PipelineStats,
}

/// Runs one benchmark under one configuration: load, warm up, measure to
/// halt, report.
///
/// # Panics
///
/// Panics if the generated program does not halt within [`RUN_BUDGET`]
/// (a harness bug, not a measurement).
pub fn run_benchmark(
    spec: &WorkloadSpec,
    config: SimConfig,
    outer_iterations: u64,
) -> RunMeasurement {
    let mut sim = Simulator::new(config);
    let warmup = std::sync::Arc::new(build_program(spec, WARMUP_ITERATIONS));
    let program = std::sync::Arc::new(build_program(spec, outer_iterations));
    let report = sim.run_job(Some(&warmup), &program, RUN_BUDGET);
    RunMeasurement {
        benchmark: spec.name,
        defense: config.defense,
        report,
        pipeline: *sim.core().stats(),
    }
}

/// Runs one benchmark under every defense environment on a machine,
/// returning measurements in [`DefenseConfig::ALL`] order.
pub fn run_all_defenses(
    spec: &WorkloadSpec,
    machine: MachineConfig,
    outer_iterations: u64,
) -> Vec<RunMeasurement> {
    DefenseConfig::ALL
        .iter()
        .map(|d| run_benchmark(spec, SimConfig::on_machine(*d, machine), outer_iterations))
        .collect()
}

/// Runs one benchmark under the full defense with a given secure-LRU
/// policy (the §VII.A study).
pub fn run_with_lru(spec: &WorkloadSpec, lru: LruPolicy, outer_iterations: u64) -> RunMeasurement {
    let config = SimConfig {
        lru_policy: lru,
        ..SimConfig::new(DefenseConfig::CacheHitTpbuf)
    };
    run_benchmark(spec, config, outer_iterations)
}

/// Normalized execution time (vs the Origin measurement of the same
/// sweep).
pub fn normalized(measurement: &RunMeasurement, origin: &RunMeasurement) -> f64 {
    measurement.report.cycles as f64 / origin.report.cycles.max(1) as f64
}

/// The shared entry point of the table/figure harnesses: runs the named
/// engine sweep and prints its rendered table.
///
/// Recognized arguments (everything else — e.g. the `--bench` flag
/// cargo passes to harness binaries — is ignored): `--jobs <n>`,
/// `--resume`, `--quiet`, `--root <dir>`.
pub fn sweep_main(name: &str) -> std::process::ExitCode {
    use std::process::ExitCode;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let sweep = condspec_engine::Sweep::by_name(name).expect("harness names a known sweep");
    let mut opts = condspec_engine::SweepOptions {
        resume: args.iter().any(|a| a == "--resume"),
        quiet: args.iter().any(|a| a == "--quiet"),
        ..Default::default()
    };
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .cloned()
    };
    if let Some(jobs) = value_of("--jobs") {
        match jobs.parse::<usize>() {
            Ok(n) => opts.workers = n,
            Err(_) => {
                eprintln!("bad --jobs `{jobs}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(root) = value_of("--root") {
        opts.root = root.into();
    }
    let outcome = match condspec_engine::run_sweep(&sweep, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep {name} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", sweep.render(&outcome.results));
    println!(
        "sweep {}: {} executed, {} skipped, {} failed — artifacts in {}",
        outcome.sweep_id,
        outcome.executed,
        outcome.skipped,
        outcome.failed.len(),
        outcome.dir.display()
    );
    for (hash, label, error) in &outcome.failed {
        eprintln!("failed job {hash} ({label}): {error}");
    }
    if outcome.failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condspec_workloads::spec::by_name;

    #[test]
    fn run_benchmark_produces_nonzero_window() {
        let spec = by_name("sjeng").expect("suite benchmark");
        let m = run_benchmark(&spec, SimConfig::new(DefenseConfig::Origin), 4);
        assert!(m.report.cycles > 0);
        assert!(m.report.committed > 0);
        assert_eq!(m.defense, DefenseConfig::Origin);
    }

    #[test]
    fn defenses_ordering_on_one_benchmark() {
        let spec = by_name("gcc").expect("suite benchmark");
        let runs = run_all_defenses(&spec, MachineConfig::paper_default(), 20);
        assert_eq!(runs.len(), 4);
        let origin = &runs[0];
        for r in &runs[1..] {
            assert!(
                normalized(r, origin) >= 0.9,
                "defenses should not speed the machine up: {} {}",
                r.benchmark,
                r.defense
            );
        }
    }
}

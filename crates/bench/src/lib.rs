//! Shared experiment-harness helpers for the table/figure reproductions.
//!
//! Every `cargo bench` target in this crate regenerates one of the
//! paper's tables or figures; the sweep logic they share (run a
//! calibrated benchmark on a configured machine, with warm-up, and
//! collect the paper's metrics) lives here.

use condspec::{DefenseConfig, LruPolicy, MachineConfig, Report, SimConfig, Simulator};
use condspec_pipeline::PipelineStats;
use condspec_workloads::spec::{build_program, WorkloadSpec};

/// Outer iterations per measured benchmark run (~4.8k instructions per
/// iteration). Chosen so the full Figure 5 sweep finishes in minutes
/// while staying far beyond the warm-up transient.
pub const DEFAULT_OUTER_ITERATIONS: u64 = 40;

/// Cycle budget per run; generously above any defense's worst case.
pub const RUN_BUDGET: u64 = 200_000_000;

/// Outer iterations of the separate warm-up run executed before the
/// measured run (caches and predictors stay warm across program loads).
/// Warming by *work* rather than by cycles keeps the measured windows of
/// different defenses architecturally identical, so normalized cycle
/// counts compare like for like.
pub const WARMUP_ITERATIONS: u64 = 6;

/// One benchmark x configuration measurement.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Defense environment.
    pub defense: DefenseConfig,
    /// The evaluation report for the measured window.
    pub report: Report,
    /// Raw pipeline statistics for the measured window.
    pub pipeline: PipelineStats,
}

/// Runs one benchmark under one configuration: load, warm up, measure to
/// halt, report.
///
/// # Panics
///
/// Panics if the generated program does not halt within [`RUN_BUDGET`]
/// (a harness bug, not a measurement).
pub fn run_benchmark(
    spec: &WorkloadSpec,
    config: SimConfig,
    outer_iterations: u64,
) -> RunMeasurement {
    let mut sim = Simulator::new(config);
    let warmup = build_program(spec, WARMUP_ITERATIONS);
    sim.load_program(&warmup);
    let warm = sim.run(RUN_BUDGET);
    assert!(sim.core().is_halted(), "warm-up must complete: {warm:?}");
    let program = build_program(spec, outer_iterations);
    sim.load_program(&program);
    sim.reset_stats();
    let result = sim.run(RUN_BUDGET);
    assert!(
        sim.core().is_halted(),
        "{} under {} did not halt ({:?})",
        spec.name,
        config.defense,
        result.exit
    );
    RunMeasurement {
        benchmark: spec.name,
        defense: config.defense,
        report: sim.report(),
        pipeline: *sim.core().stats(),
    }
}

/// Runs one benchmark under every defense environment on a machine,
/// returning measurements in [`DefenseConfig::ALL`] order.
pub fn run_all_defenses(
    spec: &WorkloadSpec,
    machine: MachineConfig,
    outer_iterations: u64,
) -> Vec<RunMeasurement> {
    DefenseConfig::ALL
        .iter()
        .map(|d| run_benchmark(spec, SimConfig::on_machine(*d, machine), outer_iterations))
        .collect()
}

/// Runs one benchmark under the full defense with a given secure-LRU
/// policy (the §VII.A study).
pub fn run_with_lru(
    spec: &WorkloadSpec,
    lru: LruPolicy,
    outer_iterations: u64,
) -> RunMeasurement {
    let config = SimConfig {
        lru_policy: lru,
        ..SimConfig::new(DefenseConfig::CacheHitTpbuf)
    };
    run_benchmark(spec, config, outer_iterations)
}

/// Normalized execution time (vs the Origin measurement of the same
/// sweep).
pub fn normalized(measurement: &RunMeasurement, origin: &RunMeasurement) -> f64 {
    measurement.report.cycles as f64 / origin.report.cycles.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use condspec_workloads::spec::by_name;

    #[test]
    fn run_benchmark_produces_nonzero_window() {
        let spec = by_name("sjeng").expect("suite benchmark");
        let m = run_benchmark(&spec, SimConfig::new(DefenseConfig::Origin), 4);
        assert!(m.report.cycles > 0);
        assert!(m.report.committed > 0);
        assert_eq!(m.defense, DefenseConfig::Origin);
    }

    #[test]
    fn defenses_ordering_on_one_benchmark() {
        let spec = by_name("gcc").expect("suite benchmark");
        let runs = run_all_defenses(&spec, MachineConfig::paper_default(), 20);
        assert_eq!(runs.len(), 4);
        let origin = &runs[0];
        for r in &runs[1..] {
            assert!(
                normalized(r, origin) >= 0.9,
                "defenses should not speed the machine up: {} {}",
                r.benchmark,
                r.defense
            );
        }
    }
}

//! Simulator-throughput benchmark (`condspec perf`).
//!
//! Measures how fast the simulator itself runs — simulated cycles per
//! wall-clock second and committed instructions per wall-clock second —
//! over a fixed, deterministic workload matrix:
//!
//! * **counting-loop** — a register-only countdown loop: peak
//!   fetch/dispatch/issue/commit pressure with no memory traffic.
//! * **pointer-chase** — a permuted pointer ring larger than the L1:
//!   long-latency loads keep the IQ occupied, exercising the security
//!   dependence matrix and the blocked-wakeup path under the defenses.
//! * **spectre-gadget** — the Figure 5 attack-round shape: repeated
//!   `load_program` + train/trigger runs of the V1 gadget, exercising
//!   the program-load/reset path, squashes, and the filters.
//!
//! Each workload runs under Origin, Cache-hit, and Cache-hit + TPBuf.
//! The simulated work per cell is deterministic (identical cycle and
//! commit counts on every host); only the wall-clock fields vary. Every
//! cell is timed several times and the fastest wall time is reported —
//! the minimum over repeats of a deterministic computation estimates
//! the code's speed, not the host scheduler's mood. The result
//! serializes as the `condspec-simspeed-v1` JSON schema recorded in
//! `BENCH_simspeed.json`.
//!
//! Beyond the detailed matrix, the report carries **functional** rows
//! (architectural-only execution — the sampled-run fast-forward engine)
//! and **sampled** rows (the full SimPoint-style pipeline: functional
//! fast-forward, detailed windows, weighted stitch), tagged with a
//! per-cell `mode` field. A detailed cell carries no `mode` field, so
//! baselines from before the field still compare.

use condspec::{run_sampled, DefenseConfig, MachineConfig, SampledOptions, SimConfig, Simulator};
use condspec_isa::{AluOp, BranchCond, Program, ProgramBuilder, Reg};
use condspec_stats::{Json, SplitMix64};
use condspec_workloads::gadgets::SpectreGadget;
use condspec_workloads::GadgetKind;
use std::time::Instant;

/// Schema identifier embedded in the JSON output.
pub const SCHEMA: &str = "condspec-simspeed-v1";

/// Defenses measured per workload (the ISSUE's matrix; Baseline is
/// covered transitively — its hot path is a strict subset of Cache-hit).
pub const DEFENSES: [DefenseConfig; 3] = [
    DefenseConfig::Origin,
    DefenseConfig::CacheHit,
    DefenseConfig::CacheHitTpbuf,
];

/// Base address of the counting/pointer-chase code.
const CODE_BASE: u64 = 0x0040_0000;
/// Base of the pointer ring (page-aligned, far from gadget layouts).
const RING_BASE: u64 = 0x0800_0000;
/// Pointer-ring slots: 16 Ki × 8 B = 128 KiB, twice the 64 KiB L1D.
const RING_SLOTS: usize = 16 * 1024;
/// Cycle budget per gadget run (same as the attack harness).
const GADGET_RUN_BUDGET: u64 = 500_000;

/// The workload names of the matrix, in run order.
pub const WORKLOADS: [&str; 3] = ["counting-loop", "pointer-chase", "spectre-gadget"];

/// A `--only <workload>[:<defense>]` cell filter: restricts the matrix
/// to one workload, optionally to a single defense column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFilter {
    /// The selected workload (one of [`WORKLOADS`]).
    pub workload: &'static str,
    /// The selected defense; `None` keeps all three columns.
    pub defense: Option<DefenseConfig>,
}

impl CellFilter {
    /// Parses `<workload>[:<defense>]`, validating both names.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (workload_name, defense_key) = match spec.split_once(':') {
            Some((w, d)) => (w, Some(d)),
            None => (spec, None),
        };
        let workload = WORKLOADS
            .iter()
            .copied()
            .find(|w| *w == workload_name)
            .ok_or_else(|| {
                format!(
                    "unknown workload `{workload_name}` (expected one of: {})",
                    WORKLOADS.join(", ")
                )
            })?;
        let defense = defense_key
            .map(|key| {
                DEFENSES
                    .iter()
                    .copied()
                    .find(|d| d.key() == key)
                    .ok_or_else(|| {
                        let keys: Vec<_> = DEFENSES.iter().map(|d| d.key()).collect();
                        format!(
                            "unknown defense `{key}` (expected one of: {})",
                            keys.join(", ")
                        )
                    })
            })
            .transpose()?;
        Ok(CellFilter { workload, defense })
    }

    /// Whether the filter keeps the `(workload, defense)` cell.
    pub fn keeps(&self, workload: &str, defense: DefenseConfig) -> bool {
        self.workload == workload && self.defense.map(|d| d == defense).unwrap_or(true)
    }
}

/// Workload sizing for one `condspec perf` invocation.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Machine preset the matrix runs on.
    pub machine: MachineConfig,
    /// Quick mode: ~50× less simulated work per cell (CI smoke).
    pub quick: bool,
    /// Restricts the matrix to one workload (optionally one defense).
    pub only: Option<CellFilter>,
}

impl PerfOptions {
    /// Full-size run on the paper-default machine.
    pub fn paper_default() -> Self {
        PerfOptions {
            machine: MachineConfig::paper_default(),
            quick: false,
            only: None,
        }
    }

    fn counting_iterations(&self) -> u64 {
        if self.quick {
            6_000
        } else {
            300_000
        }
    }

    fn chase_iterations(&self) -> u64 {
        if self.quick {
            3_000
        } else {
            150_000
        }
    }

    fn gadget_rounds(&self) -> u32 {
        if self.quick {
            2
        } else {
            400
        }
    }

    fn sampled_checkpoints(&self) -> usize {
        if self.quick {
            4
        } else {
            8
        }
    }

    fn sampled_window(&self) -> u64 {
        if self.quick {
            2_000
        } else {
            20_000
        }
    }

    /// Detailed warmup before each measured window. The full-size
    /// pointer chase walks a 16K-slot ring, so a warmup that is a
    /// fraction of the window leaves the cache cold and the stitched
    /// estimate ~5× too slow; one ring pass (~50K instructions) fixes
    /// the bias. Quick-mode segments are shorter than this, and
    /// `run_window` clamps warmup into the segment, so the large value
    /// is safe in both modes.
    fn sampled_warmup(&self) -> u64 {
        if self.quick {
            self.sampled_window() / 10
        } else {
            50_000
        }
    }

    /// Timed repetitions per cell; the fastest wall time is reported.
    ///
    /// The simulated work is deterministic, so repeats only re-measure
    /// the host: taking the minimum is the standard noise-robust
    /// estimator for "how fast can this code run", and it keeps the CI
    /// regression guard from tripping on scheduler jitter. The repeats
    /// double as a determinism check — every repeat must reproduce the
    /// cell's cycle and commit counts exactly.
    fn cell_repeats(&self) -> u32 {
        3
    }
}

/// How a perf cell simulates its workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellMode {
    /// Cycle-accurate out-of-order pipeline.
    Detailed,
    /// Architectural-only execution (no cycle model; `sim_cycles` is 0).
    Functional,
    /// Functional fast-forward + detailed windows + weighted stitch;
    /// `sim_cycles` is the stitched whole-program estimate and
    /// `committed_inst` the whole program the run represents.
    Sampled,
}

impl CellMode {
    /// The cell's `mode` key (`detailed` / `functional` / `sampled`).
    pub fn key(self) -> &'static str {
        match self {
            CellMode::Detailed => "detailed",
            CellMode::Functional => "functional",
            CellMode::Sampled => "sampled",
        }
    }
}

/// One workload × defense measurement.
#[derive(Debug, Clone)]
pub struct PerfCell {
    /// Workload name (`counting-loop`, `pointer-chase`, `spectre-gadget`).
    pub workload: &'static str,
    /// Defense environment.
    pub defense: DefenseConfig,
    /// Simulation mode of this cell.
    pub mode: CellMode,
    /// Simulated cycles (deterministic; 0 for functional cells).
    pub sim_cycles: u64,
    /// Committed instructions (deterministic).
    pub committed: u64,
    /// Wall-clock seconds the cell took (host-dependent).
    pub wall_seconds: f64,
}

impl PerfCell {
    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_seconds.max(1e-9)
    }

    /// Committed instructions per wall-clock second.
    pub fn committed_per_sec(&self) -> f64 {
        self.committed as f64 / self.wall_seconds.max(1e-9)
    }
}

/// A register-only countdown loop (no memory traffic).
fn counting_loop(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new(CODE_BASE);
    b.li(Reg::R1, iterations);
    b.li(Reg::R2, 0x1234_5678);
    b.li(Reg::R3, 7);
    let top = b.here();
    // Eight-deep ALU body: enough ILP to keep the issue stage busy.
    b.alu(AluOp::Add, Reg::R4, Reg::R2, Reg::R3)
        .alu(AluOp::Xor, Reg::R5, Reg::R4, Reg::R2)
        .alu(AluOp::Shl, Reg::R6, Reg::R5, Reg::R3)
        .alu(AluOp::Add, Reg::R7, Reg::R6, Reg::R4)
        .alu(AluOp::Or, Reg::R8, Reg::R7, Reg::R5)
        .alu(AluOp::Sub, Reg::R9, Reg::R8, Reg::R6)
        .alu(AluOp::Xor, Reg::R2, Reg::R9, Reg::R7)
        .alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1)
        .branch(BranchCond::Ne, Reg::R1, Reg::R0, top);
    b.halt();
    b.build().expect("counting loop assembles")
}

/// A permuted pointer ring over a region larger than the L1D: each load
/// depends on the previous one, so the window fills with unissued work.
fn pointer_chase(iterations: u64) -> Program {
    // Deterministic single-cycle permutation (Sattolo's algorithm).
    let mut next: Vec<usize> = (0..RING_SLOTS).collect();
    let mut rng = SplitMix64::new(0x5eed_cafe_f00d_0001);
    let mut idx: Vec<usize> = (0..RING_SLOTS).collect();
    for i in (1..RING_SLOTS).rev() {
        let j = (rng.next_u64() % i as u64) as usize;
        idx.swap(i, j);
    }
    for w in 0..RING_SLOTS {
        next[idx[w]] = idx[(w + 1) % RING_SLOTS];
    }
    let words: Vec<u64> = next.iter().map(|&n| RING_BASE + 8 * n as u64).collect();

    let mut b = ProgramBuilder::new(CODE_BASE);
    b.li(Reg::R1, iterations);
    b.li(Reg::R2, RING_BASE + 8 * idx[0] as u64);
    let top = b.here();
    b.load(Reg::R2, Reg::R2, 0)
        .alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1)
        .branch(BranchCond::Ne, Reg::R1, Reg::R0, top);
    b.halt();
    b.data_u64s(RING_BASE, &words);
    b.build().expect("pointer chase assembles")
}

fn run_to_halt_cell(program: &std::sync::Arc<Program>, config: SimConfig) -> (u64, u64) {
    let mut sim = Simulator::new(config);
    let result = sim.run_to_halt(program, u64::MAX);
    (result.cycles, result.committed)
}

/// The attack-round shape: repeated program loads with train/trigger
/// runs, flushing the bounds word before each malicious run.
fn run_gadget_cell(gadget: &SpectreGadget, config: SimConfig, rounds: u32) -> (u64, u64) {
    let mut sim = Simulator::new(config);
    let (mut cycles, mut committed) = (0u64, 0u64);
    for _ in 0..rounds {
        for _ in 0..2 {
            sim.load_program(gadget.program.clone());
            sim.write_memory(gadget.input_addr, gadget.train_input, 8);
            let r = sim.run(GADGET_RUN_BUDGET);
            cycles += r.cycles;
            committed += r.committed;
        }
        sim.load_program(gadget.program.clone());
        sim.write_memory(gadget.input_addr, gadget.attack_input, 8);
        if let Some(len) = gadget.len_addr {
            let pa = sim.core().page_table().translate(len);
            sim.core_mut().hierarchy_mut().flush_line(pa);
        }
        let r = sim.run(GADGET_RUN_BUDGET);
        cycles += r.cycles;
        committed += r.committed;
    }
    (cycles, committed)
}

/// Architectural-only execution of `program` to its halt: no cycle
/// model exists, so the cell reports zero simulated cycles.
fn run_functional_cell(program: &std::sync::Arc<Program>, config: SimConfig) -> (u64, u64) {
    let mut sim = Simulator::new(config);
    sim.load_program(program.clone());
    let result = sim
        .run_functional(SampledOptions::default().max_insts)
        .expect("a fresh simulator runs functionally");
    assert_eq!(
        result.exit,
        condspec::FunctionalExit::Halted,
        "perf workloads halt"
    );
    (0, result.retired)
}

/// The full sampled pipeline end to end: functional count + capture
/// passes, a detailed window per checkpoint, weighted stitch. Reports
/// the stitched cycle estimate over the whole program's instructions,
/// so `committed_inst_per_sec` is the effective whole-program rate the
/// sampling buys.
fn run_sampled_cell(
    workload: &str,
    program: &std::sync::Arc<Program>,
    config: SimConfig,
    checkpoints: usize,
    window: u64,
    warmup: u64,
) -> (u64, u64) {
    let mut sim = Simulator::new(config);
    let opts = SampledOptions {
        checkpoints,
        window,
        warmup,
        ..SampledOptions::default()
    };
    let sampled = run_sampled(&mut sim, program, workload, &opts).expect("sampled run completes");
    (sampled.report.cycles, sampled.total_insts)
}

/// Times one cell: `repeats` runs of `runner`, fastest wall time kept,
/// identical simulated work asserted across repeats.
fn measure_cell(
    workload: &'static str,
    defense: DefenseConfig,
    mode: CellMode,
    repeats: u32,
    runner: &dyn Fn() -> (u64, u64),
) -> PerfCell {
    let mut best: Option<PerfCell> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (sim_cycles, committed) = runner();
        let wall_seconds = start.elapsed().as_secs_f64();
        match &mut best {
            None => {
                best = Some(PerfCell {
                    workload,
                    defense,
                    mode,
                    sim_cycles,
                    committed,
                    wall_seconds,
                });
            }
            Some(cell) => {
                assert_eq!(
                    (cell.sim_cycles, cell.committed),
                    (sim_cycles, committed),
                    "{workload}/{}/{}: simulated work must be deterministic",
                    defense.key(),
                    mode.key(),
                );
                cell.wall_seconds = cell.wall_seconds.min(wall_seconds);
            }
        }
    }
    best.expect("at least one repeat")
}

/// Runs the full workload × defense matrix, returning cells in a fixed
/// order: the detailed matrix (workloads outer, [`DEFENSES`] inner),
/// then the functional rows, then the sampled rows.
pub fn run_matrix(opts: &PerfOptions) -> Vec<PerfCell> {
    let counting = std::sync::Arc::new(counting_loop(opts.counting_iterations()));
    let chase = std::sync::Arc::new(pointer_chase(opts.chase_iterations()));
    let gadget = SpectreGadget::build(GadgetKind::V1);
    let keeps = |workload: &str, defense: DefenseConfig| {
        opts.only
            .as_ref()
            .map(|f| f.keeps(workload, defense))
            .unwrap_or(true)
    };
    let mut cells = Vec::new();
    for (workload, runner) in [
        (
            "counting-loop",
            Box::new(|c: SimConfig| run_to_halt_cell(&counting, c))
                as Box<dyn Fn(SimConfig) -> (u64, u64)>,
        ),
        (
            "pointer-chase",
            Box::new(|c: SimConfig| run_to_halt_cell(&chase, c)),
        ),
        (
            "spectre-gadget",
            Box::new(|c: SimConfig| run_gadget_cell(&gadget, c, opts.gadget_rounds())),
        ),
    ] {
        for defense in DEFENSES {
            if !keeps(workload, defense) {
                continue;
            }
            let config = SimConfig::on_machine(defense, opts.machine);
            cells.push(measure_cell(
                workload,
                defense,
                CellMode::Detailed,
                opts.cell_repeats(),
                &|| runner(config),
            ));
        }
    }

    // Functional rows: the fast-forward engine on the two halting
    // workloads. Execution is architectural-only, so the defense column
    // is nominal — Origin, the no-defense environment.
    for (workload, program) in [("counting-loop", &counting), ("pointer-chase", &chase)] {
        if !keeps(workload, DefenseConfig::Origin) {
            continue;
        }
        let config = SimConfig::on_machine(DefenseConfig::Origin, opts.machine);
        cells.push(measure_cell(
            workload,
            DefenseConfig::Origin,
            CellMode::Functional,
            opts.cell_repeats(),
            &|| run_functional_cell(program, config),
        ));
    }

    // Sampled rows: the full sampled pipeline under the paper's
    // complete defense, where detailed simulation is slowest and
    // sampling buys the most.
    for (workload, program) in [("counting-loop", &counting), ("pointer-chase", &chase)] {
        if !keeps(workload, DefenseConfig::CacheHitTpbuf) {
            continue;
        }
        let config = SimConfig::on_machine(DefenseConfig::CacheHitTpbuf, opts.machine);
        cells.push(measure_cell(
            workload,
            DefenseConfig::CacheHitTpbuf,
            CellMode::Sampled,
            opts.cell_repeats(),
            &|| {
                run_sampled_cell(
                    workload,
                    program,
                    config,
                    opts.sampled_checkpoints(),
                    opts.sampled_window(),
                    opts.sampled_warmup(),
                )
            },
        ));
    }
    cells
}

/// The machine identity throughput numbers belong to, e.g.
/// `x86_64-1cpu`. Wall-clock rates from different hosts are not
/// comparable; [`compare`] only checks throughput when the baseline's
/// tag matches the current host's.
pub fn host_tag() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("{}-{cpus}cpu", std::env::consts::ARCH)
}

/// The identity wall-clock throughput numbers belong to: machine tag,
/// compiler, and core count. Recorded in every simspeed/stagespeed
/// report as the `host` block; [`compare`] refuses the throughput check
/// with a message naming the mismatching field when any of them differ
/// from the baseline's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Architecture + core-count tag (see [`host_tag`]).
    pub tag: String,
    /// `rustc -V` of the compiler that built this binary.
    pub rustc: String,
    /// Available parallelism when the report was produced.
    pub cpus: u64,
}

impl HostInfo {
    /// The identity of the running binary and machine.
    pub fn current() -> Self {
        HostInfo {
            tag: host_tag(),
            rustc: env!("CONDSPEC_RUSTC_VERSION").to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }

    /// Serializes as the report `host` block.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("tag", Json::Str(self.tag.clone())),
            ("rustc", Json::Str(self.rustc.clone())),
            ("cpus", Json::U64(self.cpus)),
        ])
    }

    /// Why throughput from `baseline_host` is incomparable with this
    /// host, naming the first mismatching field — or `None` when the
    /// identities match. `baseline_host` is the baseline's `host` block
    /// (reports before the block carry only a `host_tag` string; pass
    /// `tag_only` then, and only the tag is checked).
    pub fn incompatibility(&self, baseline_host: &Json) -> Option<String> {
        let fields: [(&str, &str); 2] = [("tag", &self.tag), ("rustc", &self.rustc)];
        for (key, current) in fields {
            if let Some(base) = baseline_host.get(key).and_then(Json::as_str) {
                if base != current {
                    return Some(format!(
                        "host {key} mismatch: baseline `{base}` vs current `{current}`"
                    ));
                }
            }
        }
        if let Some(base) = baseline_host.get("cpus").and_then(Json::as_u64) {
            if base != self.cpus {
                return Some(format!(
                    "host cpus mismatch: baseline {base} vs current {}",
                    self.cpus
                ));
            }
        }
        None
    }
}

/// Serializes a matrix run as the `condspec-simspeed-v1` document.
pub fn to_json(opts: &PerfOptions, cells: &[PerfCell]) -> Json {
    Json::object([
        ("schema", Json::Str(SCHEMA.to_string())),
        ("machine", Json::Str(opts.machine.name.to_string())),
        (
            "mode",
            Json::Str(if opts.quick { "quick" } else { "full" }.to_string()),
        ),
        ("host_tag", Json::Str(host_tag())),
        ("host", HostInfo::current().to_json()),
        (
            "cells",
            Json::Array(
                cells
                    .iter()
                    .map(|c| {
                        let mut fields = vec![
                            ("workload", Json::Str(c.workload.to_string())),
                            ("defense", Json::Str(c.defense.key().to_string())),
                        ];
                        // Detailed cells carry no mode field, so
                        // baselines from before the field still parse
                        // and compare.
                        if c.mode != CellMode::Detailed {
                            fields.push(("mode", Json::Str(c.mode.key().to_string())));
                        }
                        fields.extend([
                            ("sim_cycles", Json::U64(c.sim_cycles)),
                            ("committed_inst", Json::U64(c.committed)),
                            ("wall_seconds", Json::F64(c.wall_seconds)),
                            ("sim_cycles_per_sec", Json::F64(c.cycles_per_sec())),
                            ("committed_inst_per_sec", Json::F64(c.committed_per_sec())),
                        ]);
                        Json::object(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Validates a rendered simspeed document: schema tag, and every cell
/// reporting nonzero simulated work and throughput. Returns a
/// human-readable error on any violation (the CI smoke check).
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing cells array")?;
    if cells.is_empty() {
        return Err("empty cells array".to_string());
    }
    for cell in cells {
        let label = cell
            .get("workload")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        let mode = cell
            .get("mode")
            .and_then(Json::as_str)
            .unwrap_or("detailed");
        if !["detailed", "functional", "sampled"].contains(&mode) {
            return Err(format!("cell {label}: unknown mode `{mode}`"));
        }
        let nonzero_u64 = |key: &str| {
            cell.get(key)
                .and_then(Json::as_u64)
                .filter(|&v| v > 0)
                .ok_or(format!("cell {label}: {key} missing or zero"))
        };
        // Functional cells have no cycle model: sim_cycles must be
        // present but is exactly zero.
        if mode == "functional" {
            match cell.get("sim_cycles").and_then(Json::as_u64) {
                Some(0) => {}
                other => {
                    return Err(format!(
                        "cell {label}: functional sim_cycles must be 0 ({other:?})"
                    ))
                }
            }
        } else {
            nonzero_u64("sim_cycles")?;
        }
        nonzero_u64("committed_inst")?;
        let rate_keys: &[&str] = if mode == "functional" {
            &["committed_inst_per_sec"]
        } else {
            &["sim_cycles_per_sec", "committed_inst_per_sec"]
        };
        for key in rate_keys {
            match cell.get(key).and_then(Json::as_f64) {
                Some(v) if v > 0.0 && v.is_finite() => {}
                other => return Err(format!("cell {label}: {key} not positive ({other:?})")),
            }
        }
    }
    Ok(())
}

/// Largest tolerated throughput drop: a cell below this fraction of the
/// baseline's committed-inst/s fails [`compare`] (when the host
/// matches). 0.70 keeps the guard robust to scheduler jitter while
/// still catching real hot-path regressions.
pub const MIN_THROUGHPUT_RATIO: f64 = 0.70;

/// One cell of a [`compare`] run: baseline vs current, same
/// workload × defense.
#[derive(Debug, Clone)]
pub struct CompareCell {
    /// Workload name.
    pub workload: String,
    /// Defense key.
    pub defense: String,
    /// Cell mode (`detailed` when the report predates the field).
    pub mode: String,
    /// `(baseline, current)` simulated cycles — must be equal.
    pub sim_cycles: (u64, u64),
    /// `(baseline, current)` committed instructions — must be equal.
    pub committed: (u64, u64),
    /// `(baseline, current)` committed instructions per wall-second.
    pub committed_per_sec: (f64, f64),
}

impl CompareCell {
    /// current / baseline committed-inst/s.
    pub fn throughput_ratio(&self) -> f64 {
        self.committed_per_sec.1 / self.committed_per_sec.0.max(1e-9)
    }

    /// Whether the deterministic simulated-work fields match exactly.
    pub fn work_matches(&self) -> bool {
        self.sim_cycles.0 == self.sim_cycles.1 && self.committed.0 == self.committed.1
    }
}

/// The verdict of comparing a fresh report against a committed
/// baseline.
#[derive(Debug)]
pub struct Comparison {
    /// Per-cell deltas, in the baseline's cell order.
    pub cells: Vec<CompareCell>,
    /// Human-readable regressions; empty means the comparison passed.
    pub failures: Vec<String>,
    /// Why throughput was or was not checked (one line for the log).
    pub throughput_note: String,
}

impl Comparison {
    /// Whether the report is acceptable (no exact-work mismatch, no
    /// over-threshold throughput regression).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Unwraps a baseline document to its simspeed report and host tag.
///
/// Accepts either a bare `condspec-simspeed-v1` report (e.g.
/// `BENCH_simspeed.json`) or the CI wrapper schema
/// `condspec-simspeed-quick-baseline-v1` (`ci/perf-quick-baseline.json`),
/// whose `host_tag` takes precedence over one inside the report.
fn unwrap_baseline(baseline: &Json) -> Result<(&Json, Option<&str>), String> {
    match baseline.get("schema").and_then(Json::as_str) {
        Some("condspec-simspeed-quick-baseline-v1") => {
            let report = baseline
                .get("report")
                .ok_or("baseline wrapper has no report field")?;
            let tag = baseline
                .get("host_tag")
                .and_then(Json::as_str)
                .or_else(|| report.get("host_tag").and_then(Json::as_str));
            Ok((report, tag))
        }
        Some(s) if s == SCHEMA => Ok((baseline, baseline.get("host_tag").and_then(Json::as_str))),
        other => Err(format!("unrecognized baseline schema: {other:?}")),
    }
}

/// The baseline's recorded host identity: its `host` block when
/// present (wrapper level preferred), else a tag-only block synthesized
/// from the legacy `host_tag` string.
pub(crate) fn baseline_host(baseline: &Json, report: &Json, tag: Option<&str>) -> Option<Json> {
    if let Some(block) = baseline.get("host").or_else(|| report.get("host")) {
        return Some(block.clone());
    }
    tag.map(|t| Json::object([("tag", Json::Str(t.to_string()))]))
}

/// Resolves the throughput-check gate: `Ok(note)` when wall-clock rates
/// may be compared, `Err(note)` when they must not be (the note names
/// the reason — the skip is explicit, never silent).
pub(crate) fn throughput_gate(
    host: &HostInfo,
    base_host: Option<&Json>,
    skip: bool,
) -> Result<String, String> {
    if skip {
        return Err("throughput check skipped: CONDSPEC_SKIP_PERF_GUARD set".to_string());
    }
    match base_host {
        None => Err("throughput check skipped: baseline records no host identity".to_string()),
        Some(block) => match host.incompatibility(block) {
            Some(reason) => Err(format!(
                "throughput check refused: {reason} (simulated-work equality still verified)"
            )),
            None => Ok(format!(
                "throughput checked: host {} matches baseline, floor {MIN_THROUGHPUT_RATIO:.2}x",
                host.tag
            )),
        },
    }
}

fn cell_map(report: &Json) -> Result<Vec<(String, String, String, &Json)>, String> {
    report
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("report has no cells array")?
        .iter()
        .map(|cell| {
            let workload = cell
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("cell missing workload")?;
            let defense = cell
                .get("defense")
                .and_then(Json::as_str)
                .ok_or("cell missing defense")?;
            // Cells from before the per-cell mode field are detailed.
            let mode = cell
                .get("mode")
                .and_then(Json::as_str)
                .unwrap_or("detailed");
            Ok((
                workload.to_string(),
                defense.to_string(),
                mode.to_string(),
                cell,
            ))
        })
        .collect()
}

fn cell_u64(cell: &Json, key: &str) -> Result<u64, String> {
    cell.get(key)
        .and_then(Json::as_u64)
        .ok_or(format!("cell missing {key}"))
}

fn cell_f64(cell: &Json, key: &str) -> Result<f64, String> {
    cell.get(key)
        .and_then(Json::as_f64)
        .ok_or(format!("cell missing {key}"))
}

/// Compares a fresh simspeed report against a committed baseline (the
/// `condspec perf --compare` core, and CI's regression guard).
///
/// Two classes of check:
///
/// * **Simulated work** (`sim_cycles`, `committed_inst`) — exact
///   equality per cell, on every host: the simulator is deterministic,
///   so any drift means the timing model changed and the baseline must
///   be regenerated deliberately (see `ci/make_perf_baseline.py`).
/// * **Throughput** (`committed_inst_per_sec`) — `current/baseline ≥`
///   [`MIN_THROUGHPUT_RATIO`] per cell, but only when the current
///   [`HostInfo`] matches the baseline's recorded host identity (rates
///   from different machines or compilers are incomparable — the
///   refusal names the mismatching field) and `skip_throughput` is
///   unset (`CONDSPEC_SKIP_PERF_GUARD=1` for loaded/throttled hosts).
///
/// A current report produced with `--only` carries a subset of the
/// baseline's cells; the subset is compared cell-for-cell. Cells
/// present in the current report but absent from the baseline are a
/// hard error (the matrix changed; regenerate the baseline).
///
/// # Errors
///
/// Returns a message (instead of a [`Comparison`]) when the documents
/// are structurally incomparable: unknown schema, mode/machine
/// mismatch, or current cells the baseline does not cover.
pub fn compare(
    current: &Json,
    baseline: &Json,
    host: &HostInfo,
    skip_throughput: bool,
) -> Result<Comparison, String> {
    match current.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => return Err(format!("current report has bad schema: {other:?}")),
    }
    let (base_report, base_tag) = unwrap_baseline(baseline)?;
    for key in ["mode", "machine"] {
        let base = base_report.get(key).and_then(Json::as_str);
        let got = current.get(key).and_then(Json::as_str);
        if base != got {
            return Err(format!(
                "{key} mismatch: baseline {base:?} vs current {got:?}"
            ));
        }
    }

    let base_cells = cell_map(base_report)?;
    let got_cells = cell_map(current)?;
    if got_cells.is_empty() {
        return Err("current report has no cells".to_string());
    }

    let base_host = baseline_host(baseline, base_report, base_tag);
    let gate = throughput_gate(host, base_host.as_ref(), skip_throughput);
    let check_throughput = gate.is_ok();
    let throughput_note = match gate {
        Ok(note) | Err(note) => note,
    };

    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for (workload, defense, mode, got) in &got_cells {
        let Some((_, _, _, base)) = base_cells
            .iter()
            .find(|(w, d, m, _)| w == workload && d == defense && m == mode)
        else {
            return Err(format!(
                "cell {workload}/{defense}/{mode} is not in the baseline \
                 (matrix changed — regenerate the baseline)"
            ));
        };
        // Detailed cells keep their historical two-part label so existing
        // baseline tooling output stays familiar.
        let label = if mode == "detailed" {
            format!("{workload}/{defense}")
        } else {
            format!("{workload}/{defense}/{mode}")
        };
        let cell = CompareCell {
            workload: workload.clone(),
            defense: defense.clone(),
            mode: mode.clone(),
            sim_cycles: (cell_u64(base, "sim_cycles")?, cell_u64(got, "sim_cycles")?),
            committed: (
                cell_u64(base, "committed_inst")?,
                cell_u64(got, "committed_inst")?,
            ),
            committed_per_sec: (
                cell_f64(base, "committed_inst_per_sec")?,
                cell_f64(got, "committed_inst_per_sec")?,
            ),
        };
        if !cell.work_matches() {
            failures.push(format!(
                "{label}: simulated work changed — cycles {} -> {}, committed {} -> {}; \
                 the run is no longer identical to the committed baseline (regenerate the baseline \
                 if the timing-model change is intentional)",
                cell.sim_cycles.0, cell.sim_cycles.1, cell.committed.0, cell.committed.1,
            ));
        }
        if check_throughput {
            let ratio = cell.throughput_ratio();
            if ratio < MIN_THROUGHPUT_RATIO {
                failures.push(format!(
                    "{label}: committed-inst/s regressed {:.0} -> {:.0} ({ratio:.2}x, \
                     floor {MIN_THROUGHPUT_RATIO:.2}x)",
                    cell.committed_per_sec.0, cell.committed_per_sec.1,
                ));
            }
        }
        cells.push(cell);
    }
    Ok(Comparison {
        cells,
        failures,
        throughput_note,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_deterministic_and_valid() {
        let opts = PerfOptions {
            quick: true,
            ..PerfOptions::paper_default()
        };
        let a = run_matrix(&opts);
        let b = run_matrix(&opts);
        assert_eq!(a.len(), 13, "9 detailed + 2 functional + 2 sampled");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sim_cycles, y.sim_cycles, "{} {:?}", x.workload, x.defense);
            assert_eq!(x.committed, y.committed, "{} {:?}", x.workload, x.defense);
            match x.mode {
                // Functional cells simulate no cycles at all, by design.
                CellMode::Functional => assert_eq!(x.sim_cycles, 0),
                _ => assert!(x.sim_cycles > 0),
            }
            assert!(x.committed > 0);
        }
        assert_eq!(
            a.iter().filter(|c| c.mode == CellMode::Functional).count(),
            2
        );
        assert_eq!(a.iter().filter(|c| c.mode == CellMode::Sampled).count(), 2);
        let doc = to_json(&opts, &a);
        let parsed = Json::parse(&doc.render()).expect("round-trips");
        validate(&parsed).expect("valid document");
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let doc = Json::parse("{\"schema\":\"nope\",\"cells\":[]}").unwrap();
        assert!(validate(&doc).is_err());
    }

    fn tiny_report(committed: u64, per_sec: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"{SCHEMA}","machine":"paper-default","mode":"quick",
                 "host_tag":"test-host",
                 "host":{{"tag":"test-host","rustc":"rustc 1.0.0","cpus":1}},
                 "cells":[{{"workload":"w","defense":"origin",
                            "sim_cycles":100,"committed_inst":{committed},
                            "wall_seconds":0.5,"sim_cycles_per_sec":200.0,
                            "committed_inst_per_sec":{per_sec}}}]}}"#
        ))
        .expect("test report parses")
    }

    fn host(tag: &str) -> HostInfo {
        HostInfo {
            tag: tag.to_string(),
            rustc: "rustc 1.0.0".to_string(),
            cpus: 1,
        }
    }

    #[test]
    fn compare_accepts_identical_reports() {
        let report = tiny_report(50, 100.0);
        let cmp = compare(&report, &report, &host("test-host"), false).expect("comparable");
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert_eq!(cmp.cells.len(), 1);
        assert!(cmp.throughput_note.contains("throughput checked"));
    }

    #[test]
    fn compare_fails_on_simulated_work_drift_even_cross_host() {
        let cmp = compare(
            &tiny_report(51, 100.0),
            &tiny_report(50, 100.0),
            &host("other-host"),
            false,
        )
        .expect("comparable");
        assert!(!cmp.passed());
        assert!(cmp.failures[0].contains("simulated work changed"));
        assert!(cmp.throughput_note.contains("refused"));
    }

    #[test]
    fn compare_gates_throughput_on_host_tag() {
        let slow = tiny_report(50, 100.0 * (MIN_THROUGHPUT_RATIO - 0.05));
        let base = tiny_report(50, 100.0);
        let matched = compare(&slow, &base, &host("test-host"), false).expect("comparable");
        assert!(!matched.passed());
        assert!(matched.failures[0].contains("regressed"));
        let other = compare(&slow, &base, &host("other-host"), false).expect("comparable");
        assert!(other.passed(), "cross-host throughput is not comparable");
        let skipped = compare(&slow, &base, &host("test-host"), true).expect("comparable");
        assert!(skipped.passed(), "env override skips the throughput gate");
        assert!(skipped.throughput_note.contains("CONDSPEC_SKIP_PERF_GUARD"));
    }

    #[test]
    fn compare_accepts_the_ci_wrapper_schema() {
        let report = tiny_report(50, 100.0);
        let wrapper = Json::parse(&format!(
            r#"{{"schema":"condspec-simspeed-quick-baseline-v1",
                 "host_tag":"test-host","report":{}}}"#,
            report.render()
        ))
        .expect("wrapper parses");
        let cmp = compare(&report, &wrapper, &host("test-host"), false).expect("comparable");
        assert!(cmp.passed());
        assert!(cmp.throughput_note.contains("throughput checked"));
    }

    #[test]
    fn compare_rejects_structural_mismatch() {
        let mut other_mode = tiny_report(50, 100.0);
        if let Json::Object(fields) = &mut other_mode {
            for (k, v) in fields.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("full".to_string());
                }
            }
        }
        assert!(compare(&tiny_report(50, 100.0), &other_mode, &host("h"), false).is_err());
        assert!(compare(
            &tiny_report(50, 100.0),
            &Json::parse("{\"schema\":\"nope\"}").unwrap(),
            &host("h"),
            false
        )
        .is_err());
    }

    #[test]
    fn compare_names_the_mismatching_host_field() {
        let base = tiny_report(50, 100.0);
        let slow = tiny_report(50, 100.0 * (MIN_THROUGHPUT_RATIO - 0.05));
        let mut other = host("test-host");
        other.rustc = "rustc 2.0.0".to_string();
        let cmp = compare(&slow, &base, &other, false).expect("comparable");
        assert!(
            cmp.passed(),
            "mismatched toolchain must not fail throughput"
        );
        assert!(
            cmp.throughput_note.contains("rustc mismatch"),
            "note names the field: {}",
            cmp.throughput_note
        );
        let mut more_cpus = host("test-host");
        more_cpus.cpus = 8;
        let cmp = compare(&slow, &base, &more_cpus, false).expect("comparable");
        assert!(cmp.throughput_note.contains("cpus mismatch"));
    }

    #[test]
    fn compare_tolerates_an_only_subset_of_the_baseline() {
        let full = Json::parse(&format!(
            r#"{{"schema":"{SCHEMA}","machine":"paper-default","mode":"quick",
                 "host_tag":"test-host",
                 "cells":[{{"workload":"w","defense":"origin",
                            "sim_cycles":100,"committed_inst":50,
                            "wall_seconds":0.5,"sim_cycles_per_sec":200.0,
                            "committed_inst_per_sec":100.0}},
                          {{"workload":"w","defense":"cache-hit",
                            "sim_cycles":120,"committed_inst":50,
                            "wall_seconds":0.5,"sim_cycles_per_sec":240.0,
                            "committed_inst_per_sec":100.0}}]}}"#
        ))
        .expect("full report parses");
        let subset = tiny_report(50, 100.0);
        let cmp = compare(&subset, &full, &host("test-host"), false).expect("comparable");
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert_eq!(cmp.cells.len(), 1, "only the overlapping cell compares");
        // The reverse direction is a hard error: the baseline does not
        // cover the current matrix.
        assert!(compare(&full, &subset, &host("test-host"), false)
            .unwrap_err()
            .contains("not in the baseline"));
    }

    #[test]
    fn cell_filter_parses_and_rejects() {
        let f = CellFilter::parse("pointer-chase").expect("bare workload");
        assert_eq!(f.workload, "pointer-chase");
        assert_eq!(f.defense, None);
        let f = CellFilter::parse("pointer-chase:origin").expect("with defense");
        assert_eq!(f.defense, Some(DefenseConfig::Origin));
        assert!(f.keeps("pointer-chase", DefenseConfig::Origin));
        assert!(!f.keeps("pointer-chase", DefenseConfig::CacheHit));
        assert!(!f.keeps("counting-loop", DefenseConfig::Origin));
        assert!(CellFilter::parse("nope")
            .unwrap_err()
            .contains("unknown workload"));
        assert!(CellFilter::parse("pointer-chase:nope")
            .unwrap_err()
            .contains("unknown defense"));
    }

    #[test]
    fn only_filter_restricts_the_matrix() {
        let opts = PerfOptions {
            quick: true,
            only: Some(CellFilter::parse("counting-loop:origin").unwrap()),
            ..PerfOptions::paper_default()
        };
        let cells = run_matrix(&opts);
        // counting-loop:origin matches one detailed cell and the
        // functional cell (functional rows run under Origin).
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            assert_eq!(cell.workload, "counting-loop");
            assert_eq!(cell.defense, DefenseConfig::Origin);
        }
        assert_eq!(cells[0].mode, CellMode::Detailed);
        assert_eq!(cells[1].mode, CellMode::Functional);
    }
}

//! Per-stage microbenchmarks (`condspec perf --stages`).
//!
//! `condspec perf` measures the simulator end to end; when a cell
//! regresses it says nothing about *which* structure slowed down. This
//! module isolates the data structures each pipeline stage leans on and
//! times them directly, one cell per stage:
//!
//! * **dispatch** — issue-queue allocate/free churn plus the
//!   `views_excluding` dense-view rebuild the security policies consume
//!   at dispatch.
//! * **wakeup-select** — operand wakeups (`set_ops_ready`), the masked
//!   `unissued & ops_ready` candidate scan (`collect_ready`), the
//!   oldest-first sort, and the bounce/replay path through the blocked
//!   bitmap.
//! * **lsq-search** — store-forwarding overlay, unknown-address /
//!   unknown-data dependence checks and the memory-order-violation
//!   scan over seq-bounded bitmap ranges, with ring wrap and squashes.
//! * **commit** — ROB push/complete/pop ring churn with the
//!   `head_completed` bitmap test and the `all_older_completed`
//!   fence-style range check.
//!
//! Every cell runs a fixed, seeded operation stream, so its `ops` and
//! `checksum` fields are deterministic on every host — the checksum
//! both defeats dead-code elimination and pins the structures'
//! *results*, not just their speed. Cells are timed several times and
//! the fastest wall time is reported, exactly like the simspeed matrix.
//! The result serializes as the `condspec-stagespeed-v1` JSON schema;
//! `compare` diffs a fresh report against a committed baseline with the
//! same exact-work + gated-throughput split as `perf::compare`.

use crate::perf::{baseline_host, host_tag, throughput_gate, HostInfo, MIN_THROUGHPUT_RATIO};
use condspec_isa::Inst;
use condspec_pipeline::iq::{IqHot, IssueQueue};
use condspec_pipeline::lsq::Lsq;
use condspec_pipeline::policy::InstClass;
use condspec_pipeline::regfile::PhysReg;
use condspec_pipeline::rob::Rob;
use condspec_stats::{Json, SplitMix64};
use std::time::Instant;

/// Schema identifier embedded in the JSON output.
pub const SCHEMA: &str = "condspec-stagespeed-v1";

/// The stage names of the suite, in run order.
pub const STAGES: [&str; 4] = ["dispatch", "wakeup-select", "lsq-search", "commit"];

/// Capacities mirror the paper-default machine: 64-entry IQ, 192-entry
/// ROB, 32+32-entry LSQ.
const IQ_CAPACITY: usize = 64;
const ROB_CAPACITY: usize = 192;
const LSQ_CAPACITY: usize = 32;

/// Sizing for one stage-suite invocation.
#[derive(Debug, Clone, Copy)]
pub struct StageOptions {
    /// Quick mode: ~50× fewer rounds per cell (CI smoke).
    pub quick: bool,
}

impl StageOptions {
    fn rounds(&self, full: u64) -> u64 {
        if self.quick {
            (full / 50).max(1)
        } else {
            full
        }
    }

    /// Timed repetitions per cell; the fastest wall time is reported
    /// and every repeat must reproduce the cell's checksum exactly.
    fn cell_repeats(&self) -> u32 {
        3
    }
}

/// One stage measurement.
#[derive(Debug, Clone)]
pub struct StageCell {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Structure operations performed (deterministic).
    pub ops: u64,
    /// Result checksum over the operation stream (deterministic).
    pub checksum: u64,
    /// Wall-clock seconds the cell took (host-dependent).
    pub wall_seconds: f64,
}

impl StageCell {
    /// Structure operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_seconds.max(1e-9)
    }
}

#[inline]
fn mix(sum: u64, x: u64) -> u64 {
    (sum.rotate_left(7) ^ x).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// IQ allocate/free churn + the dispatch-path dense-view rebuild.
fn dispatch_cell(rounds: u64) -> (u64, u64) {
    let mut iq = IssueQueue::new(IQ_CAPACITY);
    let mut rng = SplitMix64::new(0x57a6_e5ee_d001);
    let mut resident: Vec<usize> = Vec::with_capacity(IQ_CAPACITY);
    let (mut seq, mut ops, mut sum) = (0u64, 0u64, 0u64);
    for _ in 0..rounds {
        while !iq.is_full() {
            let class = match seq % 3 {
                0 => InstClass::Memory,
                1 => InstClass::Branch,
                _ => InstClass::Other,
            };
            let srcs = [
                Some((seq % 96) as PhysReg),
                (seq % 2 == 0).then_some(((seq + 7) % 96) as PhysReg),
            ];
            let slot = iq
                .allocate(IqHot::new(
                    seq,
                    class,
                    srcs,
                    class == InstClass::Memory,
                    false,
                ))
                .expect("IQ has space");
            // The policies consume the pre-allocation view set on every
            // dispatch; rebuilding it is part of the stage's cost.
            let views = iq.views_excluding(slot);
            sum = mix(sum, views.len() as u64 ^ (slot as u64) << 8);
            iq.set_ops_ready(slot);
            resident.push(slot);
            seq += 1;
            ops += 1;
        }
        while !resident.is_empty() {
            let pick = (rng.next_u64() % resident.len() as u64) as usize;
            let slot = resident.swap_remove(pick);
            iq.mark_issued(slot);
            iq.free_slot(slot);
            sum = mix(sum, slot as u64);
            ops += 1;
        }
    }
    (ops, sum)
}

/// Wakeups, the masked candidate scan, select order, and bounce/replay.
fn wakeup_select_cell(rounds: u64) -> (u64, u64) {
    let mut iq = IssueQueue::new(IQ_CAPACITY);
    let mut rng = SplitMix64::new(0x57a6_e5ee_d002);
    let mut scratch: Vec<(u64, usize)> = Vec::with_capacity(IQ_CAPACITY);
    let mut pending: Vec<usize> = Vec::with_capacity(IQ_CAPACITY);
    let mut bounced_once = [false; IQ_CAPACITY];
    let (mut seq, mut ops, mut sum) = (0u64, 0u64, 0u64);
    for _ in 0..rounds {
        while !iq.is_full() {
            let slot = iq
                .allocate(IqHot::new(
                    seq,
                    InstClass::Memory,
                    [Some((seq % 96) as PhysReg), None],
                    true,
                    false,
                ))
                .expect("IQ has space");
            pending.push(slot);
            bounced_once[slot] = false;
            seq += 1;
        }
        // Wakeup: results arrive in pseudo-random order.
        while !pending.is_empty() {
            let pick = (rng.next_u64() % pending.len() as u64) as usize;
            let slot = pending.swap_remove(pick);
            iq.set_ops_ready(slot);
            ops += 1;
        }
        // Select: masked scan + oldest-first sort, 8-wide; every fourth
        // winner bounces once (hazard filter) and replays on a later
        // scan through the blocked bitmap.
        loop {
            scratch.clear();
            iq.collect_ready(&mut scratch);
            if scratch.is_empty() {
                break;
            }
            scratch.sort_unstable();
            let mut blocked_seen = 0u64;
            iq.for_each_blocked(|_| blocked_seen += 1);
            sum = mix(sum, scratch.len() as u64 ^ blocked_seen << 32);
            for (inst_seq, slot) in scratch.iter().copied().take(8) {
                iq.mark_issued(slot);
                if inst_seq % 4 == 3 && !bounced_once[slot] {
                    bounced_once[slot] = true;
                    iq.bounce(slot);
                } else {
                    iq.free_slot(slot);
                }
                sum = mix(sum, inst_seq ^ (slot as u64) << 16);
                ops += 1;
            }
        }
    }
    (ops, sum)
}

/// Store-forwarding, dependence checks and the violation scan over a
/// wrapping, squashed LSQ.
fn lsq_search_cell(rounds: u64) -> (u64, u64) {
    let mut lsq = Lsq::new(LSQ_CAPACITY, LSQ_CAPACITY);
    let mut rng = SplitMix64::new(0x57a6_e5ee_d003);
    let mut squash_scratch: Vec<u64> = Vec::with_capacity(2 * LSQ_CAPACITY);
    let mut loads: Vec<u64> = Vec::with_capacity(LSQ_CAPACITY);
    let mut stores: Vec<(u64, u64, u64)> = Vec::with_capacity(LSQ_CAPACITY);
    let (mut seq, mut ops, mut sum) = (0u64, 0u64, 0u64);
    for round in 0..rounds {
        loads.clear();
        stores.clear();
        // Dispatch an interleaved window over a 64-line address pool so
        // forwarding and violation hits actually occur.
        while lsq.load_has_space() && lsq.store_has_space() {
            let addr = 0x1000 + 8 * (rng.next_u64() % 64);
            let size = 1u64 << (rng.next_u64() % 4);
            if rng.next_u64().is_multiple_of(3) {
                lsq.allocate_store(seq, size).expect("STQ has space");
                stores.push((seq, addr, size));
            } else {
                lsq.allocate_load(seq, size).expect("LDQ has space");
                loads.push(seq);
                // Half the loads execute eagerly — before older stores
                // resolve — so violation_on_store scans find real hits.
                if rng.next_u64().is_multiple_of(2) {
                    sum = mix(sum, lsq.older_store_unknown(seq) as u64);
                    lsq.resolve_load(seq, addr, true);
                    ops += 1;
                }
            }
            seq += 1;
        }
        // Resolve store addresses then data, checking for violations
        // and re-running the dependence queries a waiting load would.
        for (store_seq, addr, size) in stores.iter().copied() {
            lsq.resolve_store_addr(store_seq, addr);
            if let Some(victim) = lsq.violation_on_store(store_seq, addr, size) {
                sum = mix(sum, victim);
            }
            ops += 1;
        }
        for (store_seq, addr, _) in stores.iter().copied() {
            lsq.resolve_store_data(store_seq, addr ^ 0xabcd);
            ops += 1;
        }
        for load_seq in loads.iter().copied() {
            let addr = 0x1000 + 8 * (load_seq % 64);
            sum = mix(sum, lsq.older_store_data_unknown(load_seq, addr, 8) as u64);
            sum = mix(sum, lsq.overlay(load_seq, addr, 8, 0x5555_5555_5555_5555));
            ops += 2;
        }
        // Alternate squash and in-order release so the rings wrap and
        // the word-wise clears run on both split shapes.
        if round % 4 == 3 {
            let cut = seq - (seq - loads[0].min(stores.first().map_or(seq, |s| s.0))) / 2;
            lsq.squash_after_into(cut, &mut squash_scratch);
            sum = mix(sum, squash_scratch.len() as u64);
            for &removed in &squash_scratch {
                sum = mix(sum, removed);
            }
            loads.retain(|&l| l <= cut);
            stores.retain(|&(s, _, _)| s <= cut);
            ops += 1;
        }
        for load_seq in loads.iter().copied() {
            lsq.release_load(load_seq);
            ops += 1;
        }
        for (store_seq, _, _) in stores.iter().copied() {
            lsq.release_store(store_seq);
            ops += 1;
        }
        assert_eq!(lsq.load_count(), 0, "all loads released");
        assert_eq!(lsq.store_count(), 0, "all stores released");
    }
    (ops, sum)
}

/// ROB ring churn: push, out-of-order completion, in-order pop.
fn commit_cell(rounds: u64) -> (u64, u64) {
    let mut rob = Rob::new(ROB_CAPACITY);
    let mut pool = Vec::new();
    let mut rng = SplitMix64::new(0x57a6_e5ee_d004);
    let mut window: Vec<u64> = Vec::with_capacity(ROB_CAPACITY);
    let (mut seq, mut ops, mut sum) = (0u64, 0u64, 0u64);
    for _ in 0..rounds {
        window.clear();
        while !rob.is_full() {
            rob.push(seq, 0x400_0000 + 4 * seq, Inst::Nop, 0x400_0004 + 4 * seq);
            window.push(seq);
            seq += 1;
            ops += 1;
        }
        // Complete the window in pseudo-random order; the fence-style
        // range check runs against the moving completion frontier.
        while !window.is_empty() {
            let pick = (rng.next_u64() % window.len() as u64) as usize;
            let done = window.swap_remove(pick);
            rob.mark_issued(done);
            rob.mark_completed(done);
            sum = mix(sum, rob.all_older_completed(done) as u64 ^ done << 1);
            ops += 1;
            // Drain whatever became committable.
            while rob.head_completed() {
                let hot = rob.pop_head_recycle(&mut pool).expect("head exists");
                sum = mix(sum, hot.seq);
                ops += 1;
            }
        }
        assert!(rob.is_empty(), "window fully committed");
    }
    (ops, sum)
}

/// A boxed stage-cell runner returning `(ops, checksum)`.
type CellRunner = Box<dyn Fn() -> (u64, u64)>;

/// Runs the per-stage suite, returning cells in [`STAGES`] order.
pub fn run_suite(opts: &StageOptions) -> Vec<StageCell> {
    let cells: [(&'static str, CellRunner); 4] = [
        (
            "dispatch",
            Box::new({
                let rounds = opts.rounds(4_000);
                move || dispatch_cell(rounds)
            }),
        ),
        (
            "wakeup-select",
            Box::new({
                let rounds = opts.rounds(6_000);
                move || wakeup_select_cell(rounds)
            }),
        ),
        (
            "lsq-search",
            Box::new({
                let rounds = opts.rounds(6_000);
                move || lsq_search_cell(rounds)
            }),
        ),
        (
            "commit",
            Box::new({
                let rounds = opts.rounds(3_000);
                move || commit_cell(rounds)
            }),
        ),
    ];
    cells
        .iter()
        .map(|(stage, run)| {
            let mut best: Option<StageCell> = None;
            for _ in 0..opts.cell_repeats() {
                let start = Instant::now();
                let (ops, checksum) = run();
                let wall_seconds = start.elapsed().as_secs_f64();
                match &mut best {
                    None => {
                        best = Some(StageCell {
                            stage,
                            ops,
                            checksum,
                            wall_seconds,
                        });
                    }
                    Some(cell) => {
                        assert_eq!(
                            (cell.ops, cell.checksum),
                            (ops, checksum),
                            "{stage}: stage work must be deterministic",
                        );
                        cell.wall_seconds = cell.wall_seconds.min(wall_seconds);
                    }
                }
            }
            best.expect("at least one repeat")
        })
        .collect()
}

/// Serializes a suite run as the `condspec-stagespeed-v1` document.
pub fn to_json(opts: &StageOptions, cells: &[StageCell]) -> Json {
    Json::object([
        ("schema", Json::Str(SCHEMA.to_string())),
        (
            "mode",
            Json::Str(if opts.quick { "quick" } else { "full" }.to_string()),
        ),
        ("host_tag", Json::Str(host_tag())),
        ("host", HostInfo::current().to_json()),
        (
            "cells",
            Json::Array(
                cells
                    .iter()
                    .map(|c| {
                        Json::object([
                            ("stage", Json::Str(c.stage.to_string())),
                            ("ops", Json::U64(c.ops)),
                            ("checksum", Json::U64(c.checksum)),
                            ("wall_seconds", Json::F64(c.wall_seconds)),
                            ("ops_per_sec", Json::F64(c.ops_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Validates a rendered stagespeed document: schema tag, the full
/// [`STAGES`] set, and nonzero work and throughput in every cell.
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing cells array")?;
    let names: Vec<_> = cells
        .iter()
        .map(|c| c.get("stage").and_then(Json::as_str).unwrap_or("<unnamed>"))
        .collect();
    if names != STAGES {
        return Err(format!("expected stages {STAGES:?}, found {names:?}"));
    }
    for (cell, name) in cells.iter().zip(&names) {
        match cell.get("ops").and_then(Json::as_u64) {
            Some(v) if v > 0 => {}
            other => return Err(format!("cell {name}: ops missing or zero ({other:?})")),
        }
        cell.get("checksum")
            .and_then(Json::as_u64)
            .ok_or(format!("cell {name}: checksum missing"))?;
        match cell.get("ops_per_sec").and_then(Json::as_f64) {
            Some(v) if v > 0.0 && v.is_finite() => {}
            other => return Err(format!("cell {name}: ops_per_sec not positive ({other:?})")),
        }
    }
    Ok(())
}

/// One cell of a stage [`compare`] run.
#[derive(Debug, Clone)]
pub struct StageCompareCell {
    /// Stage name.
    pub stage: String,
    /// `(baseline, current)` operation counts — must be equal.
    pub ops: (u64, u64),
    /// `(baseline, current)` checksums — must be equal.
    pub checksum: (u64, u64),
    /// `(baseline, current)` operations per wall-second.
    pub ops_per_sec: (f64, f64),
}

impl StageCompareCell {
    /// current / baseline ops/s.
    pub fn throughput_ratio(&self) -> f64 {
        self.ops_per_sec.1 / self.ops_per_sec.0.max(1e-9)
    }

    /// Whether the deterministic work fields match exactly.
    pub fn work_matches(&self) -> bool {
        self.ops.0 == self.ops.1 && self.checksum.0 == self.checksum.1
    }
}

/// The verdict of comparing a fresh stagespeed report against a
/// committed baseline.
#[derive(Debug)]
pub struct StageComparison {
    /// Per-cell deltas, in the current report's cell order.
    pub cells: Vec<StageCompareCell>,
    /// Human-readable regressions; empty means the comparison passed.
    pub failures: Vec<String>,
    /// Why throughput was or was not checked (one line for the log).
    pub throughput_note: String,
}

impl StageComparison {
    /// Whether the report is acceptable.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Unwraps a baseline document to its stagespeed report. Accepts a bare
/// `condspec-stagespeed-v1` report or the CI wrapper schema
/// `condspec-stagespeed-quick-baseline-v1` (`ci/stage-quick-baseline.json`).
fn unwrap_baseline(baseline: &Json) -> Result<(&Json, Option<&str>), String> {
    match baseline.get("schema").and_then(Json::as_str) {
        Some("condspec-stagespeed-quick-baseline-v1") => {
            let report = baseline
                .get("report")
                .ok_or("baseline wrapper has no report field")?;
            let tag = baseline
                .get("host_tag")
                .and_then(Json::as_str)
                .or_else(|| report.get("host_tag").and_then(Json::as_str));
            Ok((report, tag))
        }
        Some(s) if s == SCHEMA => Ok((baseline, baseline.get("host_tag").and_then(Json::as_str))),
        other => Err(format!("unrecognized stage baseline schema: {other:?}")),
    }
}

/// Compares a fresh stagespeed report against a committed baseline —
/// the stage-cell half of `condspec perf --compare`, and CI's per-stage
/// regression guard. Same split as `perf::compare`: deterministic work
/// (`ops`, `checksum`) must match exactly on every host; throughput
/// (`ops_per_sec`) is gated on a matching [`HostInfo`] (the refusal
/// names the mismatching field) and the shared
/// [`MIN_THROUGHPUT_RATIO`] floor.
pub fn compare(
    current: &Json,
    baseline: &Json,
    host: &HostInfo,
    skip_throughput: bool,
) -> Result<StageComparison, String> {
    match current.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => return Err(format!("current report has bad schema: {other:?}")),
    }
    let (base_report, base_tag) = unwrap_baseline(baseline)?;
    {
        let base = base_report.get("mode").and_then(Json::as_str);
        let got = current.get("mode").and_then(Json::as_str);
        if base != got {
            return Err(format!(
                "mode mismatch: baseline {base:?} vs current {got:?}"
            ));
        }
    }

    let cell_list = |report: &'static str, doc: &Json| -> Result<Vec<(String, Json)>, String> {
        doc.get("cells")
            .and_then(Json::as_array)
            .ok_or(format!("{report} report has no cells array"))?
            .iter()
            .map(|cell| {
                let stage = cell
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or("cell missing stage")?;
                Ok((stage.to_string(), cell.clone()))
            })
            .collect::<Result<Vec<_>, String>>()
    };
    let base_cells = cell_list("baseline", base_report)?;
    let got_cells = cell_list("current", current)?;
    if got_cells.is_empty() {
        return Err("current report has no cells".to_string());
    }

    let base_host = baseline_host(baseline, base_report, base_tag);
    let gate = throughput_gate(host, base_host.as_ref(), skip_throughput);
    let check_throughput = gate.is_ok();
    let throughput_note = match gate {
        Ok(note) | Err(note) => note,
    };

    let field_u64 = |cell: &Json, key: &str| -> Result<u64, String> {
        cell.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("cell missing {key}"))
    };
    let field_f64 = |cell: &Json, key: &str| -> Result<f64, String> {
        cell.get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("cell missing {key}"))
    };

    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for (stage, got) in &got_cells {
        let Some((_, base)) = base_cells.iter().find(|(s, _)| s == stage) else {
            return Err(format!(
                "stage {stage} is not in the baseline (suite changed — regenerate the baseline)"
            ));
        };
        let cell = StageCompareCell {
            stage: stage.clone(),
            ops: (field_u64(base, "ops")?, field_u64(got, "ops")?),
            checksum: (field_u64(base, "checksum")?, field_u64(got, "checksum")?),
            ops_per_sec: (
                field_f64(base, "ops_per_sec")?,
                field_f64(got, "ops_per_sec")?,
            ),
        };
        if !cell.work_matches() {
            failures.push(format!(
                "stage {stage}: deterministic work changed — ops {} -> {}, checksum {:#x} -> {:#x}; \
                 the structures no longer produce the baseline's results (regenerate the baseline \
                 if the change is intentional)",
                cell.ops.0, cell.ops.1, cell.checksum.0, cell.checksum.1,
            ));
        }
        if check_throughput {
            let ratio = cell.throughput_ratio();
            if ratio < MIN_THROUGHPUT_RATIO {
                failures.push(format!(
                    "stage {stage}: ops/s regressed {:.0} -> {:.0} ({ratio:.2}x, \
                     floor {MIN_THROUGHPUT_RATIO:.2}x)",
                    cell.ops_per_sec.0, cell.ops_per_sec.1,
                ));
            }
        }
        cells.push(cell);
    }
    Ok(StageComparison {
        cells,
        failures,
        throughput_note,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_deterministic_and_valid() {
        let opts = StageOptions { quick: true };
        let a = run_suite(&opts);
        let b = run_suite(&opts);
        let names: Vec<_> = a.iter().map(|c| c.stage).collect();
        assert_eq!(names, STAGES);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops, y.ops, "{}", x.stage);
            assert_eq!(x.checksum, y.checksum, "{}", x.stage);
            assert!(x.ops > 0);
        }
        let doc = to_json(&opts, &a);
        let parsed = Json::parse(&doc.render()).expect("round-trips");
        validate(&parsed).expect("valid document");
    }

    fn tiny_report(ops: u64, per_sec: f64) -> Json {
        let cells: Vec<String> = STAGES
            .iter()
            .map(|stage| {
                format!(
                    r#"{{"stage":"{stage}","ops":{ops},"checksum":7,
                        "wall_seconds":0.5,"ops_per_sec":{per_sec}}}"#
                )
            })
            .collect();
        Json::parse(&format!(
            r#"{{"schema":"{SCHEMA}","mode":"quick","host_tag":"test-host",
                 "host":{{"tag":"test-host","rustc":"rustc 1.0.0","cpus":1}},
                 "cells":[{}]}}"#,
            cells.join(",")
        ))
        .expect("test report parses")
    }

    fn host(tag: &str) -> HostInfo {
        HostInfo {
            tag: tag.to_string(),
            rustc: "rustc 1.0.0".to_string(),
            cpus: 1,
        }
    }

    #[test]
    fn compare_checks_work_everywhere_and_gates_throughput() {
        let base = tiny_report(100, 1000.0);
        let same = compare(&base, &base, &host("test-host"), false).expect("comparable");
        assert!(same.passed(), "{:?}", same.failures);
        assert!(same.throughput_note.contains("throughput checked"));

        let drifted = compare(&tiny_report(101, 1000.0), &base, &host("other-host"), false)
            .expect("comparable");
        assert!(!drifted.passed());
        assert!(drifted.failures[0].contains("deterministic work changed"));

        let slow = tiny_report(100, 1000.0 * (MIN_THROUGHPUT_RATIO - 0.05));
        let gated = compare(&slow, &base, &host("test-host"), false).expect("comparable");
        assert!(!gated.passed());
        assert!(gated.failures[0].contains("regressed"));
        let cross = compare(&slow, &base, &host("other-host"), false).expect("comparable");
        assert!(cross.passed(), "cross-host throughput is not comparable");
        assert!(cross.throughput_note.contains("tag mismatch"));
        let skipped = compare(&slow, &base, &host("test-host"), true).expect("comparable");
        assert!(skipped.passed());
    }

    #[test]
    fn compare_accepts_the_ci_wrapper_schema() {
        let report = tiny_report(100, 1000.0);
        let wrapper = Json::parse(&format!(
            r#"{{"schema":"condspec-stagespeed-quick-baseline-v1",
                 "host_tag":"test-host","report":{}}}"#,
            report.render()
        ))
        .expect("wrapper parses");
        let cmp = compare(&report, &wrapper, &host("test-host"), false).expect("comparable");
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }

    #[test]
    fn compare_rejects_unknown_stage_and_mode_mismatch() {
        let base = tiny_report(100, 1000.0);
        let renamed = base.render().replace("\"dispatch\"", "\"warp-drive\"");
        let renamed = Json::parse(&renamed).expect("parses");
        assert!(compare(&renamed, &base, &host("h"), false)
            .unwrap_err()
            .contains("not in the baseline"));
        let full_mode =
            Json::parse(&base.render().replace("\"quick\"", "\"full\"")).expect("parses");
        assert!(compare(&base, &full_mode, &host("h"), false)
            .unwrap_err()
            .contains("mode mismatch"));
    }
}

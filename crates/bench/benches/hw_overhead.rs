//! The **§VI.E hardware-overhead proxy**: criterion microbenchmarks of
//! the security dependence matrix and TPBuf critical-path operations,
//! plus the analytical storage model (the quantities the paper
//! synthesizes to 0.05 mm² and 0.00079 mm² respectively).
//!
//! Run with `cargo bench -p condspec-bench --bench hw_overhead`.

use condspec::{SecurityDependenceMatrix, TpBuf};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn matrix_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("security_matrix_64x64");
    group.bench_function("init_row (dispatch)", |b| {
        let mut m = SecurityDependenceMatrix::new(64);
        let producers: Vec<usize> = (0..16).map(|i| i * 3).collect();
        b.iter(|| {
            m.init_row(black_box(7), black_box(&producers));
        });
    });
    group.bench_function("row_any (suspect flag at issue)", |b| {
        let mut m = SecurityDependenceMatrix::new(64);
        m.init_row(7, &[3, 40, 63]);
        b.iter(|| black_box(m.row_any(black_box(7))));
    });
    group.bench_function("clear_column (dependence clearance)", |b| {
        let mut m = SecurityDependenceMatrix::new(64);
        for r in 0..64 {
            m.init_row(r, &[13]);
        }
        b.iter(|| m.clear_column(black_box(13)));
    });
    group.finish();

    // The quantity the paper's RTL synthesis measures.
    let m = SecurityDependenceMatrix::new(64);
    println!(
        "analytical storage: security matrix = {} bits ({} bytes) for a 64-entry IQ",
        m.storage_bits(),
        m.storage_bits() / 8
    );
}

fn tpbuf_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpbuf_56_entries");
    group.bench_function("s_pattern lookup (miss filter)", |b| {
        let mut t = TpBuf::new(56);
        for seq in 0..48u64 {
            t.allocate(seq, true);
            t.record_address(seq, 0x100 + seq / 8, seq % 3 == 0);
            if seq % 2 == 0 {
                t.record_writeback(seq);
            }
        }
        b.iter(|| black_box(t.matches_s_pattern(black_box(48), black_box(0x500))));
    });
    group.bench_function("allocate+release (LSQ tracking)", |b| {
        let mut t = TpBuf::new(56);
        let mut seq = 0u64;
        b.iter(|| {
            t.allocate(seq, true);
            t.release(seq);
            seq += 1;
        });
    });
    group.finish();

    let t = TpBuf::new(56);
    println!(
        "analytical storage: TPBuf = {} bits ({} bytes) for a 56-entry LSQ \
         (vs {} bits for the matrix: the paper's 0.00079 mm^2 vs 0.05 mm^2)",
        t.storage_bits(),
        t.storage_bits() / 8,
        SecurityDependenceMatrix::new(64).storage_bits()
    );
}

criterion_group!(benches, matrix_ops, tpbuf_ops);
criterion_main!(benches);

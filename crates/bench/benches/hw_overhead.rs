//! The **§VI.E hardware-overhead proxy**: microbenchmarks of the
//! security dependence matrix and TPBuf critical-path operations, plus
//! the analytical storage model (the quantities the paper synthesizes to
//! 0.05 mm² and 0.00079 mm² respectively).
//!
//! Timing is a simple calibrated loop around `std::time::Instant` (the
//! workspace is dependency-free, so no criterion): each operation is
//! measured over enough iterations for the clock's granularity to be
//! irrelevant, and the per-op time is reported in nanoseconds.
//!
//! Run with `cargo bench -p condspec-bench --bench hw_overhead`.

use condspec::{SecurityDependenceMatrix, TpBuf};
use std::hint::black_box;
use std::time::Instant;

/// Measures `op` by running it in batches until at least ~50 ms of wall
/// time has accumulated, then reports nanoseconds per operation.
fn measure<F: FnMut()>(name: &str, mut op: F) {
    // Warm up.
    for _ in 0..1_000 {
        op();
    }
    let mut iterations = 10_000u64;
    loop {
        let start = Instant::now();
        for _ in 0..iterations {
            op();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 50 {
            let ns = elapsed.as_nanos() as f64 / iterations as f64;
            println!("  {name:<40} {ns:>10.1} ns/op  ({iterations} iterations)");
            return;
        }
        iterations = iterations.saturating_mul(4);
    }
}

fn matrix_ops() {
    println!("security_matrix_64x64:");
    let producers: Vec<usize> = (0..16).map(|i| i * 3).collect();
    let mut m = SecurityDependenceMatrix::new(64);
    measure("init_row (dispatch)", || {
        m.init_row(black_box(7), black_box(&producers));
    });

    let mut m = SecurityDependenceMatrix::new(64);
    m.init_row(7, &[3, 40, 63]);
    measure("row_any (suspect flag at issue)", || {
        black_box(m.row_any(black_box(7)));
    });

    let mut m = SecurityDependenceMatrix::new(64);
    for r in 0..64 {
        m.init_row(r, &[13]);
    }
    measure("clear_column (dependence clearance)", || {
        m.clear_column(black_box(13));
    });

    // The quantity the paper's RTL synthesis measures.
    let m = SecurityDependenceMatrix::new(64);
    println!(
        "analytical storage: security matrix = {} bits ({} bytes) for a 64-entry IQ",
        m.storage_bits(),
        m.storage_bits() / 8
    );
}

fn tpbuf_ops() {
    println!("tpbuf_56_entries:");
    let mut t = TpBuf::new(56);
    for seq in 0..48u64 {
        t.allocate(seq, true);
        t.record_address(seq, 0x100 + seq / 8, seq % 3 == 0);
        if seq % 2 == 0 {
            t.record_writeback(seq);
        }
    }
    measure("s_pattern lookup (miss filter)", || {
        black_box(t.matches_s_pattern(black_box(48), black_box(0x500)));
    });

    let mut t = TpBuf::new(56);
    let mut seq = 0u64;
    measure("allocate+release (LSQ tracking)", || {
        t.allocate(seq, true);
        t.release(seq);
        seq += 1;
    });

    let t = TpBuf::new(56);
    println!(
        "analytical storage: TPBuf = {} bits ({} bytes) for a 56-entry LSQ \
         (vs {} bits for the matrix: the paper's 0.00079 mm^2 vs 0.05 mm^2)",
        t.storage_bits(),
        t.storage_bits() / 8,
        SecurityDependenceMatrix::new(64).storage_bits()
    );
}

fn main() {
    println!("\nSection VI.E — hardware-overhead proxy (critical-path microbenchmarks)\n");
    matrix_ops();
    println!();
    tpbuf_ops();
}

//! Regenerates **Figure 5**: execution time of the three Conditional
//! Speculation mechanisms, normalized to the unprotected *Origin*
//! processor, for the 22 SPEC CPU 2006-like benchmarks — plus the §VI.C
//! *branch-memory only* ablation column.
//!
//! Run with `cargo bench -p condspec-bench --bench fig5_performance`.

use condspec::{DefenseConfig, DependenceKinds, MachineConfig, SimConfig};
use condspec_bench::{normalized, run_all_defenses, run_benchmark, DEFAULT_OUTER_ITERATIONS};
use condspec_stats::{arithmetic_mean, TextTable};
use condspec_workloads::spec::suite;

fn main() {
    let machine = MachineConfig::paper_default();
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
        "Branch-only Baseline (ablation)",
    ]);
    let mut columns: [Vec<f64>; 4] = Default::default();

    for spec in suite() {
        let runs = run_all_defenses(&spec, machine, DEFAULT_OUTER_ITERATIONS);
        let origin = &runs[0];
        // §VI.C ablation: the security matrix tracks only branch->memory
        // dependences.
        let branch_only = run_benchmark(
            &spec,
            SimConfig {
                dependence_kinds: DependenceKinds::branch_only(),
                ..SimConfig::on_machine(DefenseConfig::Baseline, machine)
            },
            DEFAULT_OUTER_ITERATIONS,
        );
        let values = [
            normalized(&runs[1], origin),
            normalized(&runs[2], origin),
            normalized(&runs[3], origin),
            normalized(&branch_only, origin),
        ];
        for (col, v) in columns.iter_mut().zip(values) {
            col.push(v);
        }
        table.row(vec![
            spec.name.to_string(),
            format!("{:.3}", values[0]),
            format!("{:.3}", values[1]),
            format!("{:.3}", values[2]),
            format!("{:.3}", values[3]),
        ]);
        eprintln!("  measured {}", spec.name);
    }
    table.row(vec![
        "Average".to_string(),
        format!("{:.3}", arithmetic_mean(&columns[0])),
        format!("{:.3}", arithmetic_mean(&columns[1])),
        format!("{:.3}", arithmetic_mean(&columns[2])),
        format!("{:.3}", arithmetic_mean(&columns[3])),
    ]);

    println!("\nFigure 5 — normalized execution time (Origin = 1.0)\n");
    println!("{table}");
    println!(
        "paper reference: Baseline avg 1.536, Cache-hit avg 1.128, \
         Cache-hit+TPBuf avg 1.068, branch-only Baseline avg 1.230"
    );
}

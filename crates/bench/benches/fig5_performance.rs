//! Regenerates **Figure 5**: execution time of the three Conditional
//! Speculation mechanisms, normalized to the unprotected *Origin*
//! processor, for the 22 SPEC CPU 2006-like benchmarks — plus the §VI.C
//! *branch-memory only* ablation column.
//!
//! Delegates to the `fig5` engine sweep: jobs run in parallel, artifacts
//! land under `target/condspec-runs/`, and `--resume` skips completed
//! jobs after an interruption.
//!
//! Run with `cargo bench -p condspec-bench --bench fig5_performance`
//! (append `-- --jobs <n> --resume` to tune).

fn main() -> std::process::ExitCode {
    condspec_bench::sweep_main("fig5")
}

//! The **§VII.B extension study**: performance impact of the ICache-hit
//! filter (unsafe next-PCs may only fetch from L1I) stacked on top of
//! Cache-hit + TPBuf. The paper leaves this evaluation as ongoing work;
//! this harness provides it.
//!
//! Run with `cargo bench -p condspec-bench --bench icache_filter`.

use condspec::{DefenseConfig, SimConfig};
use condspec_bench::{run_benchmark, DEFAULT_OUTER_ITERATIONS};
use condspec_stats::{arithmetic_mean, TextTable};
use condspec_workloads::spec::suite;

fn main() {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "CS+TPBuf (cycles)",
        "+ICache filter",
        "overhead",
        "fetch stalls",
    ]);
    let mut overheads = Vec::new();
    for spec in suite() {
        let base = run_benchmark(
            &spec,
            SimConfig::new(DefenseConfig::CacheHitTpbuf),
            DEFAULT_OUTER_ITERATIONS,
        );
        let mut config = SimConfig::new(DefenseConfig::CacheHitTpbuf);
        config.machine.core.icache_filter = true;
        let filtered = run_benchmark(&spec, config, DEFAULT_OUTER_ITERATIONS);
        let overhead =
            (filtered.report.cycles as f64 / base.report.cycles.max(1) as f64 - 1.0) * 100.0;
        overheads.push(overhead);
        table.row(vec![
            spec.name.to_string(),
            base.report.cycles.to_string(),
            filtered.report.cycles.to_string(),
            format!("{overhead:+.2}%"),
            filtered.pipeline.icache_fetch_stalls.to_string(),
        ]);
        eprintln!("  measured {}", spec.name);
    }
    table.row(vec![
        "Average".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:+.2}%", arithmetic_mean(&overheads)),
        "-".to_string(),
    ]);

    println!("\nSection VII.B — ICache-hit filter on top of Cache-hit + TPBuf\n");
    println!("{table}");
    println!(
        "The paper proposes this extension without evaluating it; the \
         expectation is a small overhead because instruction working sets \
         are L1I-resident, with stalls concentrated at mispredicted \
         branches whose wrong-path code is cold."
    );
}

//! The **§VII.B extension study**: performance impact of the ICache-hit
//! filter (unsafe next-PCs may only fetch from L1I) stacked on top of
//! Cache-hit + TPBuf. The paper leaves this evaluation as ongoing work;
//! this harness provides it.
//!
//! Delegates to the `icache` engine sweep: jobs run in parallel,
//! artifacts land under `target/condspec-runs/`, and `--resume` skips
//! completed jobs after an interruption.
//!
//! Run with `cargo bench -p condspec-bench --bench icache_filter`
//! (append `-- --jobs <n> --resume` to tune).

fn main() -> std::process::ExitCode {
    condspec_bench::sweep_main("icache")
}

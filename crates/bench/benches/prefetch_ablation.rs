//! Ablation: Conditional Speculation composed with a next-line
//! prefetcher.
//!
//! The paper's configuration has no prefetcher; this harness checks that
//! the defense composes sensibly with one: the prefetcher speeds up the
//! streaming benchmarks on every environment, suspect accesses never
//! trigger prefetches (so the security analysis is unchanged), and the
//! defense's *relative* overhead stays in the same band.
//!
//! Run with `cargo bench -p condspec-bench --bench prefetch_ablation`.

use condspec::{DefenseConfig, SimConfig};
use condspec_bench::{run_benchmark, DEFAULT_OUTER_ITERATIONS};
use condspec_stats::{arithmetic_mean, TextTable};
use condspec_workloads::spec::by_name;

fn main() {
    // The streaming / miss-heavy benchmarks are where a next-line
    // prefetcher matters.
    let picks = ["lbm", "libquantum", "milc", "zeusmp", "GemsFDTD", "hmmer"];
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "Origin",
        "Origin+PF",
        "CS+TPBuf",
        "CS+TPBuf+PF",
        "overhead w/o PF",
        "overhead w/ PF",
    ]);
    let mut without_pf = Vec::new();
    let mut with_pf = Vec::new();

    for name in picks {
        let spec = by_name(name).expect("suite benchmark");
        let mut cells = vec![name.to_string()];
        let mut cycles = Vec::new();
        for (defense, prefetch) in [
            (DefenseConfig::Origin, false),
            (DefenseConfig::Origin, true),
            (DefenseConfig::CacheHitTpbuf, false),
            (DefenseConfig::CacheHitTpbuf, true),
        ] {
            let mut config = SimConfig::new(defense);
            config.machine.hierarchy.next_line_prefetch = prefetch;
            let m = run_benchmark(&spec, config, DEFAULT_OUTER_ITERATIONS);
            cycles.push(m.report.cycles);
            cells.push(m.report.cycles.to_string());
        }
        let plain = cycles[2] as f64 / cycles[0] as f64;
        let pf = cycles[3] as f64 / cycles[1] as f64;
        without_pf.push(plain);
        with_pf.push(pf);
        cells.push(format!("{plain:.3}x"));
        cells.push(format!("{pf:.3}x"));
        table.row(cells);
        eprintln!("  measured {name}");
    }
    table.row(vec![
        "Average".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.3}x", arithmetic_mean(&without_pf)),
        format!("{:.3}x", arithmetic_mean(&with_pf)),
    ]);

    println!("\nNext-line prefetcher ablation (PF = prefetch on)\n");
    println!("{table}");
    println!(
        "Suspect accesses never trigger prefetches, so enabling the\n\
         prefetcher changes performance, not the security verdicts."
    );
}

//! Related-work comparison (§VIII): the blanket `lfence` software
//! mitigation — a speculation fence after every conditional branch —
//! versus Conditional Speculation, on the same workloads and machine.
//!
//! The paper argues hardware conditional speculation preserves the
//! benefits of out-of-order execution that blanket fencing destroys; this
//! harness measures exactly that trade.
//!
//! Run with `cargo bench -p condspec-bench --bench fence_mitigation`.

use condspec::{DefenseConfig, SimConfig};
use condspec_bench::{run_benchmark, DEFAULT_OUTER_ITERATIONS};
use condspec_stats::{arithmetic_mean, TextTable};
use condspec_workloads::spec::suite;

fn main() {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "Origin (cycles)",
        "lfence-hardened",
        "CS Cache-hit+TPBuf",
    ]);
    let mut fence_overheads = Vec::new();
    let mut cs_overheads = Vec::new();

    for spec in suite() {
        let origin = run_benchmark(
            &spec,
            SimConfig::new(DefenseConfig::Origin),
            DEFAULT_OUTER_ITERATIONS,
        );
        let fenced_spec = condspec_workloads::spec::WorkloadSpec {
            fence_after_branches: true,
            ..spec
        };
        // The fenced build runs on the *unprotected* core: it is a pure
        // software mitigation.
        let fenced = run_benchmark(
            &fenced_spec,
            SimConfig::new(DefenseConfig::Origin),
            DEFAULT_OUTER_ITERATIONS,
        );
        let cs = run_benchmark(
            &spec,
            SimConfig::new(DefenseConfig::CacheHitTpbuf),
            DEFAULT_OUTER_ITERATIONS,
        );
        let base = origin.report.cycles.max(1) as f64;
        let fence_norm = fenced.report.cycles as f64 / base;
        let cs_norm = cs.report.cycles as f64 / base;
        fence_overheads.push(fence_norm);
        cs_overheads.push(cs_norm);
        table.row(vec![
            spec.name.to_string(),
            origin.report.cycles.to_string(),
            format!("{fence_norm:.3}x"),
            format!("{cs_norm:.3}x"),
        ]);
        eprintln!("  measured {}", spec.name);
    }
    table.row(vec![
        "Average".to_string(),
        "-".to_string(),
        format!("{:.3}x", arithmetic_mean(&fence_overheads)),
        format!("{:.3}x", arithmetic_mean(&cs_overheads)),
    ]);

    println!("\nBlanket lfence vs Conditional Speculation (normalized to Origin)\n");
    println!("{table}");
    println!(
        "The fenced binaries serialize the pipeline at every branch; the\n\
         hardware mechanism only delays the (suspect, unsafe) accesses.\n\
         Note: the fenced column measures instrumented binaries, so it also\n\
         pays for the extra fence instructions themselves."
    );
}

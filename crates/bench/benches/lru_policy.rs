//! Regenerates the **§VII.A replacement-policy study**: the cost of the
//! *no update* policy (suspect L1D hits do not touch LRU metadata) and
//! how much of it the *delayed update* policy (update at commit) wins
//! back, both on top of Cache-hit + TPBuf.
//!
//! Delegates to the `lru` engine sweep: jobs run in parallel, artifacts
//! land under `target/condspec-runs/`, and `--resume` skips completed
//! jobs after an interruption.
//!
//! Run with `cargo bench -p condspec-bench --bench lru_policy`
//! (append `-- --jobs <n> --resume` to tune).

fn main() -> std::process::ExitCode {
    condspec_bench::sweep_main("lru")
}

//! Regenerates the **§VII.A replacement-policy study**: the cost of the
//! *no update* policy (suspect L1D hits do not touch LRU metadata) and
//! how much of it the *delayed update* policy (update at commit) wins
//! back, both on top of Cache-hit + TPBuf.
//!
//! Run with `cargo bench -p condspec-bench --bench lru_policy`.

use condspec::LruPolicy;
use condspec_bench::{run_with_lru, DEFAULT_OUTER_ITERATIONS};
use condspec_stats::{arithmetic_mean, TextTable};
use condspec_workloads::spec::suite;

fn main() {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "Normal LRU (cycles)",
        "No-update vs normal",
        "Delayed vs normal",
        "Delayed recovers",
    ]);
    let mut no_update_pct = Vec::new();
    let mut delayed_pct = Vec::new();

    for spec in suite() {
        let normal = run_with_lru(&spec, LruPolicy::Update, DEFAULT_OUTER_ITERATIONS);
        let none = run_with_lru(&spec, LruPolicy::NoUpdate, DEFAULT_OUTER_ITERATIONS);
        let delayed = run_with_lru(&spec, LruPolicy::Delayed, DEFAULT_OUTER_ITERATIONS);
        let base = normal.report.cycles.max(1) as f64;
        let none_overhead = (none.report.cycles as f64 / base - 1.0) * 100.0;
        let delayed_overhead = (delayed.report.cycles as f64 / base - 1.0) * 100.0;
        no_update_pct.push(none_overhead);
        delayed_pct.push(delayed_overhead);
        table.row(vec![
            spec.name.to_string(),
            normal.report.cycles.to_string(),
            format!("{:+.2}%", none_overhead),
            format!("{:+.2}%", delayed_overhead),
            format!("{:+.2}%", none_overhead - delayed_overhead),
        ]);
        eprintln!("  measured {}", spec.name);
    }
    let avg_none = arithmetic_mean(&no_update_pct);
    let avg_delayed = arithmetic_mean(&delayed_pct);
    table.row(vec![
        "Average".to_string(),
        "-".to_string(),
        format!("{avg_none:+.2}%"),
        format!("{avg_delayed:+.2}%"),
        format!("{:+.2}%", avg_none - avg_delayed),
    ]);

    println!("\nSection VII.A — secure LRU update policies (on Cache-hit + TPBuf)\n");
    println!("{table}");
    println!(
        "paper reference: no-update costs +0.71% on average; \
         delayed update recovers 0.26% of it."
    );
}

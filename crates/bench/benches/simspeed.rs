//! Simulator-throughput harness: `cargo bench --bench simspeed`.
//!
//! Runs the same fixed workload matrix as `condspec perf` and prints the
//! `condspec-simspeed-v1` JSON document to stdout. Pass `--quick` for
//! the reduced CI sizing.

use condspec_bench::perf;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = perf::PerfOptions {
        quick,
        ..perf::PerfOptions::paper_default()
    };
    let cells = perf::run_matrix(&opts);
    let doc = perf::to_json(&opts, &cells);
    println!("{}", doc.render());
    for c in &cells {
        eprintln!(
            "{:>14} {:>16}: {:>8.2} Mcycles/s {:>8.2} Minst/s",
            c.workload,
            c.defense.label(),
            c.cycles_per_sec() / 1e6,
            c.committed_per_sec() / 1e6,
        );
    }
}

//! Regenerates **Table IV**: security analysis of the three Conditional
//! Speculation mechanisms against six attack classifications — by
//! actually mounting every attack and checking whether the planted secret
//! byte is recovered.
//!
//! Also prints a per-variant summary (Spectre V1 / V2 / V4, the paper's
//! "Flush+Reload, share data" grouping).
//!
//! Run with `cargo bench -p condspec-bench --bench table4_security`.

use condspec::DefenseConfig;
use condspec_attacks::{run_variant, AttackScenario};
use condspec_stats::TextTable;
use condspec_workloads::GadgetKind;

fn mark(defended: bool) -> &'static str {
    if defended {
        "yes"
    } else {
        "NO"
    }
}

fn main() {
    let mut table = TextTable::with_columns(&[
        "Attack Classification",
        "Origin",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
        "matches paper",
    ]);
    let mut all_match = true;
    for scenario in AttackScenario::ALL {
        let mut cells = vec![scenario.label().to_string()];
        let mut row_matches = true;
        for defense in DefenseConfig::ALL {
            let outcome = scenario.run(defense);
            let defended = !outcome.leaked();
            row_matches &= defended == scenario.expected_defended(defense);
            cells.push(mark(defended).to_string());
        }
        all_match &= row_matches;
        cells.push(if row_matches { "yes" } else { "MISMATCH" }.to_string());
        table.row(cells);
    }

    println!("\nTable IV — defended? (per mechanism, measured by end-to-end attack)\n");
    println!("{table}");
    println!(
        "expected (paper): Baseline and Cache-hit defend all six; \
         Cache-hit+TPBuf defends the four shared-memory rows only."
    );
    println!("all cells match Table IV: {}", if all_match { "YES" } else { "NO" });

    let mut variants = TextTable::with_columns(&[
        "Spectre variant",
        "Origin leaks",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
    ]);
    for kind in [GadgetKind::V1, GadgetKind::V2, GadgetKind::V4, GadgetKind::Rsb] {
        let mut cells = vec![format!("{kind:?}")];
        for defense in DefenseConfig::ALL {
            let outcome = run_variant(kind, defense);
            cells.push(if outcome.leaked() { "LEAKS" } else { "blocked" }.to_string());
        }
        variants.row(cells);
    }
    println!("\nPer-variant analysis (Flush+Reload channel; Rsb = SpectreRSB/ret2spec):\n");
    println!("{variants}");
}

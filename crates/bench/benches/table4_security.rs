//! Regenerates **Table IV**: security analysis of the three Conditional
//! Speculation mechanisms against six attack classifications — by
//! actually mounting every attack and checking whether the planted secret
//! byte is recovered — plus a per-variant summary (Spectre V1/V2/V4/RSB).
//!
//! Delegates to the `table4` engine sweep: jobs run in parallel,
//! artifacts land under `target/condspec-runs/`, and `--resume` skips
//! completed jobs after an interruption.
//!
//! Run with `cargo bench -p condspec-bench --bench table4_security`
//! (append `-- --jobs <n> --resume` to tune).

fn main() -> std::process::ExitCode {
    condspec_bench::sweep_main("table4")
}

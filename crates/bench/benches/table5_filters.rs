//! Regenerates **Table V**: filter analysis — per benchmark, the L1 hit
//! rate, the blocked rate of each mechanism (blocked speculative memory
//! accesses on the correct execution path), the cache hit rate of suspect
//! speculative accesses, and the S-Pattern mismatch rate.
//!
//! Delegates to the `table5` engine sweep: jobs run in parallel,
//! artifacts land under `target/condspec-runs/`, and `--resume` skips
//! completed jobs after an interruption.
//!
//! Run with `cargo bench -p condspec-bench --bench table5_filters`
//! (append `-- --jobs <n> --resume` to tune).

fn main() -> std::process::ExitCode {
    condspec_bench::sweep_main("table5")
}

//! Regenerates **Table V**: filter analysis — per benchmark, the L1 hit
//! rate, the blocked rate of each mechanism (blocked speculative memory
//! accesses on the correct execution path), the cache hit rate of suspect
//! speculative accesses, and the S-Pattern mismatch rate.
//!
//! Run with `cargo bench -p condspec-bench --bench table5_filters`.

use condspec::MachineConfig;
use condspec_bench::{run_all_defenses, DEFAULT_OUTER_ITERATIONS};
use condspec_stats::{arithmetic_mean, table::percent, TextTable};
use condspec_workloads::spec::suite;

fn main() {
    let machine = MachineConfig::paper_default();
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "L1 Hit Rate",
        "BL Blocked",
        "CH Blocked",
        "CH SpecHitRate",
        "TPBuf Blocked",
        "S-Mismatch",
    ]);
    let mut sums: [Vec<f64>; 6] = Default::default();

    for spec in suite() {
        let runs = run_all_defenses(&spec, machine, DEFAULT_OUTER_ITERATIONS);
        let (origin, baseline, cachehit, tpbuf) = (&runs[0], &runs[1], &runs[2], &runs[3]);
        let values = [
            origin.report.l1d_hit_rate,
            baseline.report.blocked_rate,
            cachehit.report.blocked_rate,
            cachehit.report.suspect_hit_rate,
            tpbuf.report.blocked_rate,
            tpbuf.report.s_pattern_mismatch_rate,
        ];
        for (col, v) in sums.iter_mut().zip(values) {
            col.push(v);
        }
        let mut cells = vec![spec.name.to_string()];
        cells.extend(values.iter().map(|v| percent(*v)));
        table.row(cells);
        eprintln!("  measured {}", spec.name);
    }
    let mut avg = vec!["Average".to_string()];
    avg.extend(sums.iter().map(|c| percent(arithmetic_mean(c))));
    table.row(avg);

    println!("\nTable V — filter analysis\n");
    println!("{table}");
    println!(
        "paper reference averages: L1 hit 88.7%, Baseline blocked 73.6%, \
         Cache-hit blocked 3.6%, suspect hit rate 89.6%, TPBuf blocked 1.7%, \
         S-Pattern mismatch 18.2%"
    );
}

//! Regenerates **Table VI**: sensitivity of the three mechanisms'
//! overheads to core complexity, on A57-like (mobile), I7-like (desktop)
//! and Xeon-like (server) machines.
//!
//! Run with `cargo bench -p condspec-bench --bench table6_sensitivity`.

use condspec::MachineConfig;
use condspec_bench::run_all_defenses;
use condspec_stats::{arithmetic_mean, table::percent_value, TextTable};
use condspec_workloads::spec::suite;

/// Fewer iterations than Figure 5: this sweep is 3x larger.
const ITERATIONS: u64 = 25;

fn main() {
    let machines = MachineConfig::sensitivity_presets();
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "A57 BL", "A57 CH", "A57 TPBuf",
        "I7 BL", "I7 CH", "I7 TPBuf",
        "Xeon BL", "Xeon CH", "Xeon TPBuf",
    ]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 9];

    for spec in suite() {
        let mut cells = vec![spec.name.to_string()];
        let mut idx = 0;
        for machine in machines {
            let runs = run_all_defenses(&spec, machine, ITERATIONS);
            let origin_cycles = runs[0].report.cycles.max(1) as f64;
            for run in &runs[1..] {
                let overhead = (run.report.cycles as f64 / origin_cycles - 1.0) * 100.0;
                sums[idx].push(overhead);
                idx += 1;
                cells.push(percent_value(overhead));
            }
        }
        table.row(cells);
        eprintln!("  measured {}", spec.name);
    }
    let mut avg = vec!["Average".to_string()];
    avg.extend(sums.iter().map(|c| percent_value(arithmetic_mean(c))));
    table.row(avg);

    println!("\nTable VI — performance overhead (%) by core complexity\n");
    println!("{table}");
    println!(
        "paper reference averages: A57 41.1/11.0/6.0, I7 46.3/15.1/9.0, \
         Xeon 51.4/15.9/9.6 (%)"
    );
    println!(
        "expected shape: the same mechanism ordering on every platform, \
         with overheads growing with core complexity."
    );
}

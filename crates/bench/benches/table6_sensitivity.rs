//! Regenerates **Table VI**: sensitivity of the three mechanisms'
//! overheads to core complexity, on A57-like (mobile), I7-like (desktop)
//! and Xeon-like (server) machines.
//!
//! Delegates to the `table6` engine sweep: jobs run in parallel,
//! artifacts land under `target/condspec-runs/`, and `--resume` skips
//! completed jobs after an interruption.
//!
//! Run with `cargo bench -p condspec-bench --bench table6_sensitivity`
//! (append `-- --jobs <n> --resume` to tune).

fn main() -> std::process::ExitCode {
    condspec_bench::sweep_main("table6")
}

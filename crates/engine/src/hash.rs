//! Content hashing for job identity, sweep identity, and persistent
//! store keys.
//!
//! Jobs are identified by an FNV-1a hash of their canonical key string;
//! the hash names the artifact file (`<hash>.json`), so resumed runs can
//! recognize already-completed work purely from the filesystem. The
//! *store key* used by the persistent result store extends that job
//! content hash with two extra inputs:
//!
//! * the store **schema version** ([`STORE_SCHEMA_VERSION`]), so a
//!   layout change orphans old entries instead of misreading them, and
//! * a **code-generation fingerprint** ([`code_fingerprint`]) derived
//!   from the workspace version and a manually bumped
//!   [`RESULT_GENERATION`] counter. A change that alters simulation
//!   *results* without touching any job key (a timing-model fix, a new
//!   report field) must bump `RESULT_GENERATION`; every store key then
//!   changes and entries written by older binaries read as misses
//!   instead of silently serving stale results.
//!
//! FNV-1a is not cryptographic — collisions would silently merge two
//! jobs — but over the ~10² short, highly-structured keys of a sweep the
//! 64-bit space makes that a non-concern.

pub use condspec_stats::{fnv1a64, hex16};

/// Version of the persistent store's on-disk envelope layout this
/// binary writes and reads (mixed into every store key).
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// Manually bumped result-semantics generation: increment whenever a
/// change alters artifact *contents* for an unchanged job key, so
/// hash-stable but semantics-changing code bumps invalidate the
/// persistent store cleanly.
pub const RESULT_GENERATION: u32 = 1;

/// The code-generation fingerprint mixed into every store key:
/// workspace version x store schema x result generation.
pub fn code_fingerprint() -> u64 {
    fnv1a64(
        format!(
            "condspec;version={};store-schema={STORE_SCHEMA_VERSION};result-gen={RESULT_GENERATION}",
            env!("CARGO_PKG_VERSION")
        )
        .as_bytes(),
    )
}

/// The persistent-store key for a job canonical key under an explicit
/// fingerprint. Exposed separately from [`store_key`] so tests (and
/// hypothetical migration tools) can address entries written by a
/// different code generation.
pub fn store_key_with(canonical_key: &str, fingerprint: u64) -> String {
    hex16(fnv1a64(
        format!("{canonical_key};fingerprint={}", hex16(fingerprint)).as_bytes(),
    ))
}

/// The persistent-store key for a job canonical key under *this*
/// binary's code generation.
pub fn store_key(canonical_key: &str) -> String {
    store_key_with(canonical_key, code_fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use condspec_stats::Json;
    use condspec_store::ResultStore;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors (via the re-export).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
        assert_eq!(hex16(0xdead_beef), "00000000deadbeef");
    }

    #[test]
    fn store_keys_differ_from_job_hashes_and_track_the_fingerprint() {
        let key = "kind=bench;benchmark=gcc";
        assert_ne!(store_key(key), hex16(fnv1a64(key.as_bytes())));
        assert_eq!(store_key(key), store_key_with(key, code_fingerprint()));
        assert_ne!(store_key_with(key, 1), store_key_with(key, 2));
    }

    #[test]
    fn flipping_the_fingerprint_misses_the_cache() {
        // The invalidation property the fingerprint exists for: an entry
        // inserted by one code generation must not be served to another.
        let root =
            std::env::temp_dir().join(format!("condspec-hash-fingerprint-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = ResultStore::open(&root);
        let canonical = "kind=bench;benchmark=gcc;iters=40";
        let artifact = Json::object(vec![("cycles", Json::from(1234u64))]);

        let old_generation = code_fingerprint() ^ 1;
        let old_key = store_key_with(canonical, old_generation);
        store
            .insert(&old_key, "job", "gcc/origin", old_generation, &artifact)
            .expect("insert under the old generation");

        // Same canonical key, current fingerprint: a clean miss.
        assert_eq!(store.load(&store_key(canonical)), None);
        // The old generation can still address its own entry.
        assert_eq!(store.load(&old_key), Some(artifact));
        std::fs::remove_dir_all(&root).ok();
    }
}

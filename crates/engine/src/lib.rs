//! `condspec-engine` — the parallel sweep-execution subsystem of the
//! Conditional Speculation reproduction.
//!
//! The paper's evaluation is a few hundred independent simulations
//! (benchmark x defense x machine grids, attack matrices). This crate
//! turns each of them into a content-hashed [`JobSpec`], schedules the
//! jobs across a `std::thread` worker pool with per-job panic
//! isolation, and persists every result as a JSON artifact under
//! `target/condspec-runs/<sweep-id>/` so an interrupted sweep resumes
//! where it stopped.
//!
//! On top of the per-run artifact directory sits the *persistent result
//! store* (`condspec-store`): a content-addressed cache shared across
//! runs, sweeps, and processes. When [`SweepOptions::store`] is set,
//! workers consult the store before simulating and insert every fresh
//! success, so re-running a sweep against a warm store simulates zero
//! jobs — and still writes the full artifact directory, byte-identical
//! to a cold run. The two cache layers are independently observable:
//! the in-memory program cache reports `program-cache: ...` and the
//! persistent store `result-store: ...` at the end of a run.
//!
//! Determinism is the design center: artifacts contain only simulation
//! results (never wall-clock data), workers communicate results by job
//! index, and sweep ids derive from job content — so a sweep's on-disk
//! output is byte-identical whether it ran on one worker or sixteen,
//! fresh or resumed, simulated or served from the store.
//!
//! ```no_run
//! use condspec_engine::{run_sweep, Sweep, SweepOptions};
//!
//! let sweep = Sweep::by_name("fig5").expect("known sweep");
//! let outcome = run_sweep(&sweep, &SweepOptions::default()).expect("sweep runs");
//! println!("{}", sweep.render(&outcome.results));
//! ```

pub mod artifact;
pub mod cache;
pub mod hash;
pub mod job;
pub mod sampled;
pub mod scheduler;
pub mod sweep;
pub mod telemetry;

pub use artifact::{JobSource, JobStatus, ManifestInfo, SweepDir, DEFAULT_ROOT};
pub use cache::{ProgramCache, WorkerContext};
pub use condspec_store::ResultStore;
pub use job::{JobSpec, MachinePreset, Workload};
pub use sampled::{checkpoint_store_key, run_sampled_bench, SampledBenchOutcome, SampledBenchSpec};
pub use scheduler::{
    default_workers, run_jobs, run_jobs_cached, run_jobs_claimed, run_jobs_stored, run_jobs_timed,
    ClaimOptions, ClaimedJob, JobResult, JobTiming,
};
pub use sweep::{Sweep, SweepResults};
pub use telemetry::SweepTelemetry;

use condspec_stats::Json;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// How to run a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (`--jobs`); 0 means [`default_workers`].
    pub workers: usize,
    /// Skip jobs whose artifacts already exist (`--resume`).
    pub resume: bool,
    /// Artifact root directory (default [`DEFAULT_ROOT`]).
    pub root: PathBuf,
    /// Persistent result-store root; `None` disables the store.
    pub store: Option<PathBuf>,
    /// Override the measured-run iteration count of every benchmark
    /// job (`--iters`). Changes job hashes and the sweep id: a scaled
    /// sweep is a different computation.
    pub bench_iterations: Option<u64>,
    /// Override the warm-up iteration count of every benchmark job
    /// (`--warmup`).
    pub bench_warmup: Option<u64>,
    /// Suppress stderr progress lines.
    pub quiet: bool,
    /// Render progress as a single live status line (overwritten in
    /// place) instead of one line per finished job.
    pub progress: bool,
    /// Write wall-clock execution telemetry to `telemetry.json` in the
    /// sweep directory. Off by default: the file is nondeterministic by
    /// nature and excluded from the byte-identical artifact guarantee.
    pub telemetry: bool,
    /// Drain jobs through the store's lease protocol
    /// ([`run_jobs_claimed`]) instead of the local cursor, so other
    /// worker processes sharing [`SweepOptions::store`] can shard the
    /// sweep. Requires `store`; ignored without one.
    pub claim: Option<ClaimOptions>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            resume: false,
            root: PathBuf::from(DEFAULT_ROOT),
            store: None,
            bench_iterations: None,
            bench_warmup: None,
            quiet: false,
            progress: false,
            telemetry: false,
            claim: None,
        }
    }
}

/// A live snapshot of a running sweep, handed to the
/// [`run_sweep_observed`] observer after every job completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Jobs accounted for so far (including `--resume` skips).
    pub done: usize,
    /// Total jobs in the sweep.
    pub total: usize,
    /// Jobs actually simulated so far this run.
    pub simulated: usize,
    /// Jobs served from the persistent result store so far.
    pub store_hits: usize,
    /// Of those store hits, jobs completed by *other* shards while this
    /// run was draining (claim mode only). Always
    /// `done == simulated + store_hits + failed` and
    /// `remote <= store_hits`, whether jobs were dispatched locally or
    /// reported by remote shards.
    pub remote: usize,
    /// Jobs failed so far.
    pub failed: usize,
}

/// What a sweep run did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The sweep's artifact directory.
    pub dir: PathBuf,
    /// The content-derived sweep id.
    pub sweep_id: String,
    /// Jobs the worker pool actually ran this run — successful
    /// simulations plus failed attempts; store hits and resume skips
    /// excluded.
    pub executed: usize,
    /// Jobs served from the persistent result store.
    pub store_hits: usize,
    /// Of those store hits, jobs another shard completed while this run
    /// was draining (claim mode only).
    pub remote: usize,
    /// Jobs skipped because their artifact already existed.
    pub skipped: usize,
    /// Failed jobs as `(hash, label, error)`.
    pub failed: Vec<(String, String, String)>,
    /// Every available artifact (freshly computed, store-served, and
    /// resumed), keyed by job hash.
    pub results: SweepResults,
}

fn eta(done: usize, total: usize, started: Instant) -> String {
    if done == 0 {
        return "--:--".to_string();
    }
    let per_job = started.elapsed().as_secs_f64() / done as f64;
    let remaining = (per_job * (total - done) as f64).round() as u64;
    format!("{:02}:{:02}", remaining / 60, remaining % 60)
}

/// Runs every job of `sweep` (honoring `--resume` and the persistent
/// store), writes artifacts and the manifest, and returns the collected
/// results.
///
/// Progress and ETA go to stderr only; nothing timing-dependent reaches
/// the artifacts, so two runs of the same sweep produce byte-identical
/// job artifacts regardless of `opts.workers` or store warmth (the
/// manifest's per-job `source` field is the one run-dependent record).
///
/// # Errors
///
/// Returns any I/O error from creating the run directory or writing an
/// artifact or the manifest. Job panics are *not* errors: they mark the
/// job failed and the sweep continues.
pub fn run_sweep(sweep: &Sweep, opts: &SweepOptions) -> io::Result<SweepOutcome> {
    run_sweep_observed(sweep, opts, |_| {})
}

/// [`run_sweep`] plus a progress observer: `observer` receives a
/// [`SweepProgress`] snapshot after every job completion (on the
/// calling thread, in completion order). The serve daemon streams these
/// snapshots to HTTP clients; the CLI ignores them.
pub fn run_sweep_observed(
    sweep: &Sweep,
    opts: &SweepOptions,
    mut observer: impl FnMut(&SweepProgress),
) -> io::Result<SweepOutcome> {
    // Apply iteration scaling up front: everything downstream (hashes,
    // sweep id, store keys, the manifest) sees the scaled sweep.
    let sweep = sweep
        .clone()
        .scaled(opts.bench_iterations, opts.bench_warmup);
    let sweep_id = sweep.sweep_id();
    let dir = SweepDir::create(&opts.root, &sweep_id)?;
    let workers = if opts.workers == 0 {
        default_workers()
    } else {
        opts.workers
    };
    let store = opts.store.as_deref().map(ResultStore::open);

    // Partition into resumable (artifact exists and parses) and pending.
    let mut results = SweepResults::new();
    let mut sources: Vec<JobSource> = vec![JobSource::Resumed; sweep.jobs.len()];
    let mut pending: Vec<(usize, JobSpec)> = Vec::new();
    for (index, job) in sweep.jobs.iter().enumerate() {
        match opts
            .resume
            .then(|| dir.completed(&job.hash_hex()))
            .flatten()
        {
            Some(doc) => {
                results.insert(job.hash_hex(), doc);
            }
            None => pending.push((index, job.clone())),
        }
    }
    let skipped = sweep.jobs.len() - pending.len();
    if !opts.quiet && skipped > 0 {
        eprintln!(
            "resume: {skipped}/{} jobs already complete",
            sweep.jobs.len()
        );
    }

    // Run what remains; write each artifact as it lands.
    let specs: Vec<JobSpec> = pending.iter().map(|(_, j)| j.clone()).collect();
    let started = Instant::now();
    let total = specs.len();
    let mut progress = SweepProgress {
        done: skipped,
        total: sweep.jobs.len(),
        simulated: 0,
        store_hits: 0,
        remote: 0,
        failed: 0,
    };
    let mut write_error: Option<io::Error> = None;
    let mut telemetry = opts.telemetry.then(|| SweepTelemetry::new(workers));
    let programs = std::sync::Arc::new(ProgramCache::new());
    // Shared accounting for both dispatch modes: every job — locally
    // simulated, served from the store, or completed by a remote shard
    // — passes through here exactly once, so the progress counters (and
    // the NDJSON stream built on them) never over- or under-count. The
    // closure is scoped to the dispatch block so its mutable borrows
    // end with it.
    let job_results: Vec<(JobResult, JobTiming, JobSource, Option<String>)> = {
        let mut account = |slot: usize,
                           outcome: &JobResult,
                           timing: &JobTiming,
                           source: JobSource,
                           origin: Option<&str>,
                           remote: bool| {
            progress.done += 1;
            match (outcome.is_ok(), source) {
                (true, JobSource::Store) => {
                    progress.store_hits += 1;
                    if remote {
                        progress.remote += 1;
                    }
                }
                (true, _) => progress.simulated += 1,
                (false, _) => progress.failed += 1,
            }
            let job = &specs[slot];
            if let Ok(doc) = outcome {
                if let Err(e) = dir.write(&job.hash_hex(), doc) {
                    write_error.get_or_insert(e);
                }
            }
            if let Some(t) = telemetry.as_mut() {
                t.record(job.hash_hex(), job.label(), outcome.is_ok(), *timing);
            }
            if !opts.quiet {
                // `store` marks a persistent-store hit; `done` a fresh
                // simulation. (In-memory program-cache hits are not
                // per-job events; they show in the end-of-run summary.)
                // In claim mode a store hit carries its inserting shard:
                // `store@<owner>` is the per-shard provenance line.
                let state = match (outcome.is_ok(), source) {
                    (true, JobSource::Store) => match origin {
                        Some(owner) => format!("store@{owner}"),
                        None => "store".to_string(),
                    },
                    (true, _) => "done".to_string(),
                    (false, _) => "FAILED".to_string(),
                };
                let done = progress.done - skipped;
                if opts.progress {
                    // One status line, overwritten in place; padded so a
                    // shorter label does not leave residue.
                    eprint!(
                        "\r[{done}/{total} eta {}] {state} {:<40}",
                        eta(done, total, started),
                        job.label()
                    );
                } else {
                    eprintln!(
                        "[{done}/{total} eta {}] {state} {}",
                        eta(done, total, started),
                        job.label()
                    );
                }
                let _ = io::stderr().flush();
            }
            observer(&progress);
        };
        match (store.as_ref(), &opts.claim) {
            (Some(s), Some(claim)) => {
                run_jobs_claimed(&specs, workers, &programs, s, claim, |slot, done| {
                    account(
                        slot,
                        &done.outcome,
                        &done.timing,
                        done.source,
                        done.origin.as_deref(),
                        done.remote,
                    )
                })
                .into_iter()
                .map(|c| (c.outcome, c.timing, c.source, c.origin))
                .collect()
            }
            _ => run_jobs_stored(
                &specs,
                workers,
                &programs,
                store.as_ref(),
                |slot, outcome, timing, source| account(slot, outcome, timing, source, None, false),
            )
            .into_iter()
            .map(|(outcome, timing, source)| (outcome, timing, source, None))
            .collect(),
        }
    };
    if !opts.quiet && opts.progress && total > 0 {
        eprintln!();
    }
    if !opts.quiet && total > 0 {
        // Two independent cache layers, two summary lines:
        // `program-cache` is in-memory and per-run (a fig5 sweep builds
        // each distinct (benchmark, iterations) program once);
        // `result-store` is persistent and cross-run (a warm store
        // serves whole job results without simulating).
        eprintln!("{}", programs.summary());
        if let Some(s) = &store {
            eprintln!("{}", s.summary());
            if opts.claim.is_some() {
                // The claim-protocol line CI greps for its trailing
                // `0 duplicate simulations`.
                eprintln!("{}", s.claims_summary());
            }
        }
    }
    if let Some(e) = write_error {
        return Err(e);
    }
    if let Some(mut t) = telemetry {
        t.total_wall_ms = started.elapsed().as_millis() as u64;
        artifact::write_artifact(&dir.path().join("telemetry.json"), &t.to_json())?;
        if !opts.quiet {
            eprintln!("telemetry: {}", telemetry::summarize(&t));
        }
    }

    // Fold fresh results in and derive per-job statuses in sweep order.
    let mut failed = Vec::new();
    let mut origins: Vec<Option<String>> = vec![None; sweep.jobs.len()];
    for ((index, job), (outcome, _, source, origin)) in pending.iter().zip(job_results) {
        sources[*index] = source;
        origins[*index] = origin;
        match outcome {
            Ok(doc) => {
                results.insert(job.hash_hex(), doc);
            }
            Err(message) => failed.push((job.hash_hex(), job.label(), message)),
        }
    }
    let statuses: Vec<JobStatus> = sweep
        .jobs
        .iter()
        .zip(sources.iter().zip(&origins))
        .map(|(job, (source, origin))| {
            let hash = job.hash_hex();
            let status = if results.contains_key(&hash) {
                "ok"
            } else {
                "failed"
            };
            JobStatus {
                hash,
                label: job.label(),
                status,
                source: *source,
                owner: origin.clone(),
            }
        })
        .collect();
    dir.write_manifest(
        &ManifestInfo {
            sweep_name: sweep.name,
            sweep_id: &sweep_id,
            bench_iterations: opts.bench_iterations,
            bench_warmup: opts.bench_warmup,
        },
        &statuses,
    )?;

    Ok(SweepOutcome {
        dir: dir.path().to_path_buf(),
        sweep_id,
        executed: progress.simulated + progress.failed,
        store_hits: progress.store_hits,
        remote: progress.remote,
        skipped,
        failed,
        results,
    })
}

/// A sweep reloaded from disk — everything `condspec report` needs to
/// re-render a finished (or partial) sweep without re-running any
/// simulation.
#[derive(Debug)]
pub struct SweepReport {
    /// The sweep definition the manifest names (iteration-scaled when
    /// the manifest records overrides).
    pub sweep: Sweep,
    /// The content-derived sweep id.
    pub sweep_id: String,
    /// Artifacts found (on disk or in the store), keyed by job hash.
    pub results: SweepResults,
    /// Jobs the manifest lists as failed, as `(hash, label)`.
    pub failed: Vec<(String, String)>,
    /// Jobs with no artifact anywhere (not yet run), as `(hash, label)`.
    pub missing: Vec<(String, String)>,
    /// The `telemetry.json` sidecar, when the sweep ran with
    /// [`SweepOptions::telemetry`].
    pub telemetry: Option<Json>,
}

/// Reloads `<root>/<sweep_id>/` written by [`run_sweep`].
///
/// # Errors
///
/// Returns a human-readable message when the directory or its manifest
/// is missing/malformed, or when the manifest names a sweep this binary
/// does not know.
pub fn load_sweep_report(root: &Path, sweep_id: &str) -> Result<SweepReport, String> {
    load_sweep_report_with_store(root, sweep_id, None)
}

/// [`load_sweep_report`] with the persistent result store as a second
/// artifact source: any job missing from the run directory is looked up
/// in `store` by [`JobSpec::store_key`]. When the run directory itself
/// is gone (or never existed), the sweep is reconstructed from the id's
/// `<name>-<hash>` form and resolved entirely through the store — so
/// `condspec report` works from a warm store alone. (Store-only
/// reconstruction covers unscaled sweeps; a scaled sweep's iteration
/// overrides live only in its manifest.)
pub fn load_sweep_report_with_store(
    root: &Path,
    sweep_id: &str,
    store: Option<&ResultStore>,
) -> Result<SweepReport, String> {
    let dir = root.join(sweep_id);
    if !dir.is_dir() {
        return match store {
            Some(store) => load_report_from_store(sweep_id, store)
                .map_err(|e| format!("no sweep directory at {} and {e}", dir.display())),
            None => Err(format!("no sweep directory at {}", dir.display())),
        };
    }
    let sweep_dir = SweepDir::create(root, sweep_id).map_err(|e| e.to_string())?;
    let manifest = sweep_dir
        .manifest()
        .ok_or_else(|| format!("{}/manifest.json missing or unparseable", dir.display()))?;
    let name = manifest
        .get("sweep")
        .and_then(Json::as_str)
        .ok_or("manifest has no sweep name")?;
    let sweep = Sweep::by_name(name)
        .ok_or_else(|| format!("manifest names unknown sweep `{name}`"))?
        .scaled(
            manifest.get("bench_iterations").and_then(Json::as_u64),
            manifest.get("bench_warmup").and_then(Json::as_u64),
        );

    let mut results = SweepResults::new();
    let mut failed = Vec::new();
    let mut missing = Vec::new();
    for job in &sweep.jobs {
        let hash = job.hash_hex();
        let found = sweep_dir
            .completed(&hash)
            .or_else(|| store.and_then(|s| s.load(&job.store_key())));
        match found {
            Some(doc) => {
                results.insert(hash, doc);
            }
            None => {
                let listed_failed = manifest
                    .get("jobs")
                    .and_then(Json::as_array)
                    .into_iter()
                    .flatten()
                    .any(|j| {
                        j.get("hash").and_then(Json::as_str) == Some(hash.as_str())
                            && j.get("status").and_then(Json::as_str) == Some("failed")
                    });
                if listed_failed {
                    failed.push((hash, job.label()));
                } else {
                    missing.push((hash, job.label()));
                }
            }
        }
    }
    let telemetry = artifact::load_artifact(&dir.join("telemetry.json"));
    Ok(SweepReport {
        sweep,
        sweep_id: sweep_id.to_string(),
        results,
        failed,
        missing,
        telemetry,
    })
}

/// Reconstructs a sweep report from the store alone: derive the sweep
/// name from the id, rebuild the job list, and resolve every job by
/// store key.
fn load_report_from_store(sweep_id: &str, store: &ResultStore) -> Result<SweepReport, String> {
    let (name, _) = sweep_id
        .rsplit_once('-')
        .ok_or_else(|| format!("`{sweep_id}` is not a <name>-<hash> sweep id"))?;
    let sweep =
        Sweep::by_name(name).ok_or_else(|| format!("`{sweep_id}` names unknown sweep `{name}`"))?;
    if sweep.sweep_id() != sweep_id {
        return Err(format!(
            "`{sweep_id}` does not match this binary's `{name}` sweep ({}); \
             the store cannot reconstruct scaled or older-generation sweeps \
             without their manifest",
            sweep.sweep_id()
        ));
    }
    let mut results = SweepResults::new();
    let mut missing = Vec::new();
    for job in &sweep.jobs {
        match store.load(&job.store_key()) {
            Some(doc) => {
                results.insert(job.hash_hex(), doc);
            }
            None => missing.push((job.hash_hex(), job.label())),
        }
    }
    Ok(SweepReport {
        sweep,
        sweep_id: sweep_id.to_string(),
        results,
        failed: Vec::new(),
        missing,
        telemetry: None,
    })
}

//! `condspec-engine` — the parallel sweep-execution subsystem of the
//! Conditional Speculation reproduction.
//!
//! The paper's evaluation is a few hundred independent simulations
//! (benchmark x defense x machine grids, attack matrices). This crate
//! turns each of them into a content-hashed [`JobSpec`], schedules the
//! jobs across a `std::thread` worker pool with per-job panic
//! isolation, and persists every result as a JSON artifact under
//! `target/condspec-runs/<sweep-id>/` so an interrupted sweep resumes
//! where it stopped.
//!
//! Determinism is the design center: artifacts contain only simulation
//! results (never wall-clock data), workers communicate results by job
//! index, and sweep ids derive from job content — so a sweep's on-disk
//! output is byte-identical whether it ran on one worker or sixteen,
//! fresh or resumed.
//!
//! ```no_run
//! use condspec_engine::{run_sweep, Sweep, SweepOptions};
//!
//! let sweep = Sweep::by_name("fig5").expect("known sweep");
//! let outcome = run_sweep(&sweep, &SweepOptions::default()).expect("sweep runs");
//! println!("{}", sweep.render(&outcome.results));
//! ```

pub mod artifact;
pub mod cache;
pub mod hash;
pub mod job;
pub mod scheduler;
pub mod sweep;
pub mod telemetry;

pub use artifact::{SweepDir, DEFAULT_ROOT};
pub use cache::{ProgramCache, WorkerContext};
pub use job::{JobSpec, MachinePreset, Workload};
pub use scheduler::{
    default_workers, run_jobs, run_jobs_cached, run_jobs_timed, JobResult, JobTiming,
};
pub use sweep::{Sweep, SweepResults};
pub use telemetry::SweepTelemetry;

use condspec_stats::Json;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// How to run a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (`--jobs`); 0 means [`default_workers`].
    pub workers: usize,
    /// Skip jobs whose artifacts already exist (`--resume`).
    pub resume: bool,
    /// Artifact root directory (default [`DEFAULT_ROOT`]).
    pub root: PathBuf,
    /// Suppress stderr progress lines.
    pub quiet: bool,
    /// Render progress as a single live status line (overwritten in
    /// place) instead of one line per finished job.
    pub progress: bool,
    /// Write wall-clock execution telemetry to `telemetry.json` in the
    /// sweep directory. Off by default: the file is nondeterministic by
    /// nature and excluded from the byte-identical artifact guarantee.
    pub telemetry: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            resume: false,
            root: PathBuf::from(DEFAULT_ROOT),
            quiet: false,
            progress: false,
            telemetry: false,
        }
    }
}

/// What a sweep run did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The sweep's artifact directory.
    pub dir: PathBuf,
    /// The content-derived sweep id.
    pub sweep_id: String,
    /// Jobs actually simulated this run.
    pub executed: usize,
    /// Jobs skipped because their artifact already existed.
    pub skipped: usize,
    /// Failed jobs as `(hash, label, error)`.
    pub failed: Vec<(String, String, String)>,
    /// Every available artifact (freshly computed and resumed), keyed
    /// by job hash.
    pub results: SweepResults,
}

fn eta(done: usize, total: usize, started: Instant) -> String {
    if done == 0 {
        return "--:--".to_string();
    }
    let per_job = started.elapsed().as_secs_f64() / done as f64;
    let remaining = (per_job * (total - done) as f64).round() as u64;
    format!("{:02}:{:02}", remaining / 60, remaining % 60)
}

/// Runs every job of `sweep` (honoring `--resume`), writes artifacts
/// and the manifest, and returns the collected results.
///
/// Progress and ETA go to stderr only; nothing timing-dependent reaches
/// the artifacts, so two runs of the same sweep produce byte-identical
/// directories regardless of `opts.workers`.
///
/// # Errors
///
/// Returns any I/O error from creating the run directory or writing an
/// artifact or the manifest. Job panics are *not* errors: they mark the
/// job failed and the sweep continues.
pub fn run_sweep(sweep: &Sweep, opts: &SweepOptions) -> io::Result<SweepOutcome> {
    let sweep_id = sweep.sweep_id();
    let dir = SweepDir::create(&opts.root, &sweep_id)?;
    let workers = if opts.workers == 0 {
        default_workers()
    } else {
        opts.workers
    };

    // Partition into resumable (artifact exists and parses) and pending.
    let mut results = SweepResults::new();
    let mut pending: Vec<(usize, JobSpec)> = Vec::new();
    for (index, job) in sweep.jobs.iter().enumerate() {
        match opts
            .resume
            .then(|| dir.completed(&job.hash_hex()))
            .flatten()
        {
            Some(doc) => {
                results.insert(job.hash_hex(), doc);
            }
            None => pending.push((index, job.clone())),
        }
    }
    let skipped = sweep.jobs.len() - pending.len();
    if !opts.quiet && skipped > 0 {
        eprintln!(
            "resume: {skipped}/{} jobs already complete",
            sweep.jobs.len()
        );
    }

    // Run what remains; write each artifact as it lands.
    let specs: Vec<JobSpec> = pending.iter().map(|(_, j)| j.clone()).collect();
    let started = Instant::now();
    let total = specs.len();
    let mut done = 0usize;
    let mut write_error: Option<io::Error> = None;
    let mut telemetry = opts.telemetry.then(|| SweepTelemetry::new(workers));
    let programs = std::sync::Arc::new(ProgramCache::new());
    let job_results = run_jobs_cached(&specs, workers, &programs, |slot, outcome, timing| {
        done += 1;
        let job = &specs[slot];
        if let Ok(doc) = outcome {
            if let Err(e) = dir.write(&job.hash_hex(), doc) {
                write_error.get_or_insert(e);
            }
        }
        if let Some(t) = telemetry.as_mut() {
            t.record(job.hash_hex(), job.label(), outcome.is_ok(), *timing);
        }
        if !opts.quiet {
            let state = if outcome.is_ok() { "done" } else { "FAILED" };
            if opts.progress {
                // One status line, overwritten in place; padded so a
                // shorter label does not leave residue.
                eprint!(
                    "\r[{done}/{total} eta {}] {state} {:<40}",
                    eta(done, total, started),
                    job.label()
                );
            } else {
                eprintln!(
                    "[{done}/{total} eta {}] {state} {}",
                    eta(done, total, started),
                    job.label()
                );
            }
            let _ = io::stderr().flush();
        }
    });
    if !opts.quiet && opts.progress && total > 0 {
        eprintln!();
    }
    if !opts.quiet && total > 0 {
        // e.g. `program-cache: 44 builds, 176 hits` — a fig5 sweep
        // builds each distinct (benchmark, iterations) program once.
        eprintln!("{}", programs.summary());
    }
    if let Some(e) = write_error {
        return Err(e);
    }
    if let Some(mut t) = telemetry {
        t.total_wall_ms = started.elapsed().as_millis() as u64;
        artifact::write_artifact(&dir.path().join("telemetry.json"), &t.to_json())?;
        if !opts.quiet {
            eprintln!("telemetry: {}", telemetry::summarize(&t));
        }
    }

    // Fold fresh results in and derive per-job statuses in sweep order.
    let mut failed = Vec::new();
    for ((_, job), (outcome, _)) in pending.iter().zip(job_results) {
        match outcome {
            Ok(doc) => {
                results.insert(job.hash_hex(), doc);
            }
            Err(message) => failed.push((job.hash_hex(), job.label(), message)),
        }
    }
    let statuses: Vec<(String, String, &'static str)> = sweep
        .jobs
        .iter()
        .map(|job| {
            let hash = job.hash_hex();
            let status = if results.contains_key(&hash) {
                "ok"
            } else {
                "failed"
            };
            (hash, job.label(), status)
        })
        .collect();
    dir.write_manifest(sweep.name, &sweep_id, &statuses)?;

    Ok(SweepOutcome {
        dir: dir.path().to_path_buf(),
        sweep_id,
        executed: total,
        skipped,
        failed,
        results,
    })
}

/// A sweep directory reloaded from disk — everything `condspec report`
/// needs to re-render a finished (or partial) sweep without re-running
/// any simulation.
#[derive(Debug)]
pub struct SweepReport {
    /// The sweep definition the manifest names.
    pub sweep: Sweep,
    /// The content-derived sweep id.
    pub sweep_id: String,
    /// Artifacts found on disk, keyed by job hash.
    pub results: SweepResults,
    /// Jobs the manifest lists as failed, as `(hash, label)`.
    pub failed: Vec<(String, String)>,
    /// Jobs with no artifact on disk (not yet run), as `(hash, label)`.
    pub missing: Vec<(String, String)>,
    /// The `telemetry.json` sidecar, when the sweep ran with
    /// [`SweepOptions::telemetry`].
    pub telemetry: Option<Json>,
}

/// Reloads `<root>/<sweep_id>/` written by [`run_sweep`].
///
/// # Errors
///
/// Returns a human-readable message when the directory or its manifest
/// is missing/malformed, or when the manifest names a sweep this binary
/// does not know.
pub fn load_sweep_report(root: &Path, sweep_id: &str) -> Result<SweepReport, String> {
    let dir = root.join(sweep_id);
    if !dir.is_dir() {
        return Err(format!("no sweep directory at {}", dir.display()));
    }
    let sweep_dir = SweepDir::create(root, sweep_id).map_err(|e| e.to_string())?;
    let manifest = sweep_dir
        .manifest()
        .ok_or_else(|| format!("{}/manifest.json missing or unparseable", dir.display()))?;
    let name = manifest
        .get("sweep")
        .and_then(Json::as_str)
        .ok_or("manifest has no sweep name")?;
    let sweep =
        Sweep::by_name(name).ok_or_else(|| format!("manifest names unknown sweep `{name}`"))?;

    let mut results = SweepResults::new();
    let mut failed = Vec::new();
    let mut missing = Vec::new();
    for job in &sweep.jobs {
        let hash = job.hash_hex();
        match sweep_dir.completed(&hash) {
            Some(doc) => {
                results.insert(hash, doc);
            }
            None => {
                let listed_failed = manifest
                    .get("jobs")
                    .and_then(Json::as_array)
                    .into_iter()
                    .flatten()
                    .any(|j| {
                        j.get("hash").and_then(Json::as_str) == Some(hash.as_str())
                            && j.get("status").and_then(Json::as_str) == Some("failed")
                    });
                if listed_failed {
                    failed.push((hash, job.label()));
                } else {
                    missing.push((hash, job.label()));
                }
            }
        }
    }
    let telemetry = artifact::load_artifact(&dir.join("telemetry.json"));
    Ok(SweepReport {
        sweep,
        sweep_id: sweep_id.to_string(),
        results,
        failed,
        missing,
        telemetry,
    })
}

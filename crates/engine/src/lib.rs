//! `condspec-engine` — the parallel sweep-execution subsystem of the
//! Conditional Speculation reproduction.
//!
//! The paper's evaluation is a few hundred independent simulations
//! (benchmark x defense x machine grids, attack matrices). This crate
//! turns each of them into a content-hashed [`JobSpec`], schedules the
//! jobs across a `std::thread` worker pool with per-job panic
//! isolation, and persists every result as a JSON artifact under
//! `target/condspec-runs/<sweep-id>/` so an interrupted sweep resumes
//! where it stopped.
//!
//! Determinism is the design center: artifacts contain only simulation
//! results (never wall-clock data), workers communicate results by job
//! index, and sweep ids derive from job content — so a sweep's on-disk
//! output is byte-identical whether it ran on one worker or sixteen,
//! fresh or resumed.
//!
//! ```no_run
//! use condspec_engine::{run_sweep, Sweep, SweepOptions};
//!
//! let sweep = Sweep::by_name("fig5").expect("known sweep");
//! let outcome = run_sweep(&sweep, &SweepOptions::default()).expect("sweep runs");
//! println!("{}", sweep.render(&outcome.results));
//! ```

pub mod artifact;
pub mod hash;
pub mod job;
pub mod scheduler;
pub mod sweep;

pub use artifact::{SweepDir, DEFAULT_ROOT};
pub use job::{JobSpec, MachinePreset, Workload};
pub use scheduler::{default_workers, run_jobs, JobResult};
pub use sweep::{Sweep, SweepResults};

use std::io;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// How to run a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (`--jobs`); 0 means [`default_workers`].
    pub workers: usize,
    /// Skip jobs whose artifacts already exist (`--resume`).
    pub resume: bool,
    /// Artifact root directory (default [`DEFAULT_ROOT`]).
    pub root: PathBuf,
    /// Suppress stderr progress lines.
    pub quiet: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            resume: false,
            root: PathBuf::from(DEFAULT_ROOT),
            quiet: false,
        }
    }
}

/// What a sweep run did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The sweep's artifact directory.
    pub dir: PathBuf,
    /// The content-derived sweep id.
    pub sweep_id: String,
    /// Jobs actually simulated this run.
    pub executed: usize,
    /// Jobs skipped because their artifact already existed.
    pub skipped: usize,
    /// Failed jobs as `(hash, label, error)`.
    pub failed: Vec<(String, String, String)>,
    /// Every available artifact (freshly computed and resumed), keyed
    /// by job hash.
    pub results: SweepResults,
}

fn eta(done: usize, total: usize, started: Instant) -> String {
    if done == 0 {
        return "--:--".to_string();
    }
    let per_job = started.elapsed().as_secs_f64() / done as f64;
    let remaining = (per_job * (total - done) as f64).round() as u64;
    format!("{:02}:{:02}", remaining / 60, remaining % 60)
}

/// Runs every job of `sweep` (honoring `--resume`), writes artifacts
/// and the manifest, and returns the collected results.
///
/// Progress and ETA go to stderr only; nothing timing-dependent reaches
/// the artifacts, so two runs of the same sweep produce byte-identical
/// directories regardless of `opts.workers`.
///
/// # Errors
///
/// Returns any I/O error from creating the run directory or writing an
/// artifact or the manifest. Job panics are *not* errors: they mark the
/// job failed and the sweep continues.
pub fn run_sweep(sweep: &Sweep, opts: &SweepOptions) -> io::Result<SweepOutcome> {
    let sweep_id = sweep.sweep_id();
    let dir = SweepDir::create(&opts.root, &sweep_id)?;
    let workers = if opts.workers == 0 {
        default_workers()
    } else {
        opts.workers
    };

    // Partition into resumable (artifact exists and parses) and pending.
    let mut results = SweepResults::new();
    let mut pending: Vec<(usize, JobSpec)> = Vec::new();
    for (index, job) in sweep.jobs.iter().enumerate() {
        match opts
            .resume
            .then(|| dir.completed(&job.hash_hex()))
            .flatten()
        {
            Some(doc) => {
                results.insert(job.hash_hex(), doc);
            }
            None => pending.push((index, job.clone())),
        }
    }
    let skipped = sweep.jobs.len() - pending.len();
    if !opts.quiet && skipped > 0 {
        eprintln!(
            "resume: {skipped}/{} jobs already complete",
            sweep.jobs.len()
        );
    }

    // Run what remains; write each artifact as it lands.
    let specs: Vec<JobSpec> = pending.iter().map(|(_, j)| j.clone()).collect();
    let started = Instant::now();
    let total = specs.len();
    let mut done = 0usize;
    let mut write_error: Option<io::Error> = None;
    let job_results = run_jobs(&specs, workers, |slot, outcome| {
        done += 1;
        let job = &specs[slot];
        if let Ok(doc) = outcome {
            if let Err(e) = dir.write(&job.hash_hex(), doc) {
                write_error.get_or_insert(e);
            }
        }
        if !opts.quiet {
            let state = if outcome.is_ok() { "done" } else { "FAILED" };
            eprintln!(
                "[{done}/{total} eta {}] {state} {}",
                eta(done, total, started),
                job.label()
            );
            let _ = io::stderr().flush();
        }
    });
    if let Some(e) = write_error {
        return Err(e);
    }

    // Fold fresh results in and derive per-job statuses in sweep order.
    let mut failed = Vec::new();
    for ((_, job), outcome) in pending.iter().zip(job_results) {
        match outcome {
            Ok(doc) => {
                results.insert(job.hash_hex(), doc);
            }
            Err(message) => failed.push((job.hash_hex(), job.label(), message)),
        }
    }
    let statuses: Vec<(String, String, &'static str)> = sweep
        .jobs
        .iter()
        .map(|job| {
            let hash = job.hash_hex();
            let status = if results.contains_key(&hash) {
                "ok"
            } else {
                "failed"
            };
            (hash, job.label(), status)
        })
        .collect();
    dir.write_manifest(sweep.name, &sweep_id, &statuses)?;

    Ok(SweepOutcome {
        dir: dir.path().to_path_buf(),
        sweep_id,
        executed: total,
        skipped,
        failed,
        results,
    })
}

//! Sampled-run orchestration on the worker pool: one functional count
//! pass, one independent [`Workload::BenchWindow`] job per segment, and
//! weighted stitching of the window artifacts into a whole-program
//! estimate.
//!
//! The orchestrator deliberately runs *only* the count pass itself
//! (functional execution, tens of times faster than detailed): each
//! window job recomputes its own fast-forward to its segment start, so
//! the fast-forwards overlap across workers instead of serializing in
//! the driver. Window jobs are content-hashed like any other job
//! (`kind=bench-window`), so a warm [`ResultStore`] serves a repeated
//! sampled run without simulating a single window.
//!
//! [`Workload::BenchWindow`]: crate::Workload::BenchWindow

use crate::cache::ProgramCache;
use crate::job::{JobSpec, MachinePreset, Workload, DEFAULT_BUDGET, DEFAULT_ITERATIONS};
use crate::scheduler::run_jobs_stored;
use crate::JobSource;
use condspec::{
    plan_segments, stitch_reports, DefenseConfig, FunctionalExit, LruPolicy, Report,
    SampledOptions, Simulator, WindowReport,
};
use condspec_stats::Json;
use condspec_store::ResultStore;
use condspec_workloads::spec::by_name;
use std::sync::Arc;

/// A sampled benchmark run, fully specified: the program, the defense
/// environment (including every machine/policy knob a detailed job
/// carries), and the sampling grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledBenchSpec {
    /// Benchmark name from the suite.
    pub benchmark: &'static str,
    /// Outer iterations of the program.
    pub iterations: u64,
    /// Defense environment every window runs under.
    pub defense: DefenseConfig,
    /// Machine preset every window runs on.
    pub machine: MachinePreset,
    /// Secure-LRU policy.
    pub lru: LruPolicy,
    /// §VI.C ablation: track only branch → memory dependences.
    pub branch_only: bool,
    /// §VII.B extension: ICache-hit filter on unsafe fetches.
    pub icache_filter: bool,
    /// Number of evenly spaced checkpoints / detailed windows.
    pub checkpoints: usize,
    /// Detailed instructions measured per window.
    pub window: u64,
    /// Detailed warm-up instructions before each window's stats reset.
    pub window_warmup: u64,
    /// Cycle budget per detailed window.
    pub budget: u64,
}

impl SampledBenchSpec {
    /// A sampled run of `benchmark` under `defense` on the paper-default
    /// machine with the default iteration count and sampling grid.
    pub fn new(benchmark: &'static str, defense: DefenseConfig) -> SampledBenchSpec {
        let defaults = SampledOptions::default();
        SampledBenchSpec {
            benchmark,
            iterations: DEFAULT_ITERATIONS,
            defense,
            machine: MachinePreset::PaperDefault,
            lru: LruPolicy::Update,
            branch_only: false,
            icache_filter: false,
            checkpoints: defaults.checkpoints,
            window: defaults.window,
            window_warmup: defaults.warmup,
            budget: DEFAULT_BUDGET,
        }
    }

    /// The sampled equivalent of a detailed [`Workload::Bench`] job:
    /// same benchmark, iterations, defense, machine, and policy knobs,
    /// default sampling grid. `None` for attack/variant/window jobs,
    /// which have no sampled form.
    pub fn from_bench_job(job: &JobSpec) -> Option<SampledBenchSpec> {
        let Workload::Bench {
            benchmark,
            iterations,
            ..
        } = &job.workload
        else {
            return None;
        };
        Some(SampledBenchSpec {
            iterations: *iterations,
            machine: job.machine,
            lru: job.lru,
            branch_only: job.branch_only,
            icache_filter: job.icache_filter,
            budget: job.budget,
            ..SampledBenchSpec::new(benchmark, job.defense)
        })
    }

    /// The window job measuring segment `index`.
    pub fn window_job(&self, index: usize) -> JobSpec {
        let mut job = JobSpec::bench_window(self.benchmark, self.defense, index);
        job.machine = self.machine;
        job.lru = self.lru;
        job.branch_only = self.branch_only;
        job.icache_filter = self.icache_filter;
        job.budget = self.budget;
        if let Workload::BenchWindow {
            iterations,
            checkpoints,
            window,
            window_warmup,
            ..
        } = &mut job.workload
        {
            *iterations = self.iterations;
            *checkpoints = self.checkpoints;
            *window = self.window;
            *window_warmup = self.window_warmup;
        }
        job
    }
}

/// What a sampled benchmark run produced.
#[derive(Debug, Clone)]
pub struct SampledBenchOutcome {
    /// Whole-program retired-instruction count from the count pass.
    pub total_insts: u64,
    /// The stitched whole-program estimate.
    pub report: Report,
    /// Per-window measurements, in segment order.
    pub windows: Vec<WindowReport>,
    /// Window jobs actually simulated this run.
    pub executed: usize,
    /// Window jobs served from the persistent result store.
    pub store_hits: usize,
}

/// The persistent-store key a checkpoint object is filed under.
/// Checkpoints are policy-agnostic (a quiesced boundary holds no
/// defense transient state), so the identity names only the workload,
/// the machine preset, the whole-program instruction count, and the
/// capture position — one stored checkpoint serves every defense. The
/// distinct `kind=checkpoint` prefix keeps checkpoint keys disjoint
/// from every job key, and the shared code fingerprint invalidates
/// them together with results when simulation semantics change.
pub fn checkpoint_store_key(
    workload: &str,
    machine: &str,
    total_insts: u64,
    inst_index: u64,
) -> String {
    crate::hash::store_key(&format!(
        "kind=checkpoint;workload={workload};machine={machine};\
         total={total_insts};inst={inst_index}"
    ))
}

fn window_field(doc: &Json, key: &str, index: usize) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("window {index} artifact has no `{key}` field"))
}

/// Runs a complete sampled simulation of `spec` on `workers` threads:
/// functional count pass, one detailed window job per segment on the
/// scheduler (consulting `store` when given), weighted stitch.
///
/// # Errors
///
/// Fails on an unknown benchmark, a zero-checkpoint grid, a count pass
/// that does not halt, a failed window job, or a window artifact that
/// disagrees with the count pass (a stale store entry from a different
/// code generation would be caught here, not silently stitched).
pub fn run_sampled_bench(
    spec: &SampledBenchSpec,
    workers: usize,
    store: Option<&ResultStore>,
) -> Result<SampledBenchOutcome, String> {
    if spec.checkpoints == 0 {
        return Err("a sampled run needs at least one checkpoint".to_string());
    }
    if by_name(spec.benchmark).is_none() {
        return Err(format!("unknown benchmark `{}`", spec.benchmark));
    }
    let programs = Arc::new(ProgramCache::new());
    let program = programs.get_or_build(spec.benchmark, spec.iterations);

    // Count pass: one functional run fixes the segment grid. Window
    // jobs recompute their own fast-forward in parallel.
    let mut sim = Simulator::new(spec.window_job(0).sim_config());
    sim.load_program(Arc::clone(&program));
    let count = sim.run_functional(SampledOptions::default().max_insts)?;
    if count.exit != FunctionalExit::Halted {
        return Err(format!(
            "functional count pass exited {:?} after {} instructions",
            count.exit, count.retired
        ));
    }
    let total_insts = count.retired;
    if total_insts == 0 {
        return Err("program retires no instructions".to_string());
    }
    let segments = plan_segments(total_insts, spec.checkpoints);

    let jobs: Vec<JobSpec> = (0..segments.len()).map(|i| spec.window_job(i)).collect();
    let results = run_jobs_stored(&jobs, workers, &programs, store, |_, _, _, _| {});

    let mut windows = Vec::with_capacity(results.len());
    let (mut executed, mut store_hits) = (0usize, 0usize);
    for (index, (outcome, _, source)) in results.into_iter().enumerate() {
        match source {
            JobSource::Store => store_hits += 1,
            _ => executed += 1,
        }
        let doc = outcome.map_err(|e| format!("window {index} failed: {e}"))?;
        let artifact_total = window_field(&doc, "total_insts", index)?;
        if artifact_total != total_insts {
            return Err(format!(
                "window {index} artifact counted {artifact_total} instructions, \
                 the count pass {total_insts}"
            ));
        }
        let start_inst = window_field(&doc, "start_inst", index)?;
        let segment_len = window_field(&doc, "segment_len", index)?;
        if (start_inst, segment_len) != segments[index] {
            return Err(format!(
                "window {index} artifact covers [{start_inst}, +{segment_len}), \
                 the plan says [{}, +{})",
                segments[index].0, segments[index].1
            ));
        }
        let report = doc
            .get("report")
            .and_then(Report::from_json)
            .ok_or_else(|| format!("window {index} artifact has no parseable report"))?;
        windows.push(WindowReport {
            index,
            start_inst,
            segment_len,
            report,
        });
    }
    let report = stitch_reports(total_insts, &windows);
    Ok(SampledBenchOutcome {
        total_insts,
        report,
        windows,
        executed,
        store_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use condspec::{run_sampled, SimConfig};

    fn tiny_spec() -> SampledBenchSpec {
        SampledBenchSpec {
            iterations: 2,
            checkpoints: 3,
            window: 400,
            window_warmup: 50,
            ..SampledBenchSpec::new("gcc", DefenseConfig::CacheHit)
        }
    }

    #[test]
    fn pooled_sampled_run_matches_the_serial_driver() {
        let spec = tiny_spec();
        let pooled = run_sampled_bench(&spec, 2, None).expect("sampled run completes");

        let programs = ProgramCache::new();
        let program = programs.get_or_build(spec.benchmark, spec.iterations);
        let mut sim = Simulator::new(SimConfig::new(spec.defense));
        let opts = SampledOptions {
            checkpoints: spec.checkpoints,
            window: spec.window,
            warmup: spec.window_warmup,
            max_cycles: spec.budget,
            ..SampledOptions::default()
        };
        let serial = run_sampled(&mut sim, &program, spec.benchmark, &opts).expect("serial run");

        assert_eq!(pooled.total_insts, serial.total_insts);
        assert_eq!(pooled.windows, serial.windows);
        assert_eq!(pooled.report, serial.report);
        assert_eq!(pooled.executed, serial.windows.len());
        assert_eq!(pooled.store_hits, 0);
    }

    #[test]
    fn a_warm_store_serves_every_window() {
        let root =
            std::env::temp_dir().join(format!("condspec-sampled-store-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = ResultStore::open(&root);
        let spec = tiny_spec();
        let cold = run_sampled_bench(&spec, 2, Some(&store)).expect("cold run");
        assert_eq!(cold.store_hits, 0);
        let warm = run_sampled_bench(&spec, 2, Some(&store)).expect("warm run");
        assert_eq!(warm.executed, 0, "every window comes from the store");
        assert_eq!(warm.store_hits, cold.windows.len());
        assert_eq!(warm.report, cold.report);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn checkpoint_keys_are_position_sensitive_and_disjoint_from_jobs() {
        let a = checkpoint_store_key("gcc", "paper-default", 1000, 0);
        let b = checkpoint_store_key("gcc", "paper-default", 1000, 500);
        assert_ne!(a, b, "capture position changes the key");
        let job = JobSpec::bench_window("gcc", DefenseConfig::Origin, 0).store_key();
        assert_ne!(a, job, "checkpoints never alias window jobs");
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut zero = tiny_spec();
        zero.checkpoints = 0;
        assert!(run_sampled_bench(&zero, 1, None)
            .unwrap_err()
            .contains("at least one checkpoint"));
        let mut unknown = tiny_spec();
        unknown.benchmark = "vax";
        assert!(run_sampled_bench(&unknown, 1, None)
            .unwrap_err()
            .contains("unknown benchmark"));
    }
}

//! Result artifacts on disk: one JSON document per job plus a sweep
//! manifest, laid out for resumable runs.
//!
//! A sweep writes into `<root>/<sweep-id>/`:
//!
//! ```text
//! target/condspec-runs/fig5-1a2b3c4d5e6f7081/
//!   manifest.json          sweep name, id, and per-job status
//!   0123456789abcdef.json  one artifact per job, named by job hash
//! ```
//!
//! The sweep id is itself content-derived (sweep name + hash of all job
//! hashes), so editing a sweep's definition starts a fresh directory
//! instead of mixing artifacts from two generations. A job is
//! *complete* iff its artifact file exists and parses; failed jobs
//! write nothing and therefore re-run on `--resume`. Writes go through
//! a temp file and rename, so a killed run never leaves a truncated
//! artifact that a resume would mistake for a result.

use condspec_stats::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The default artifact root, relative to the working directory.
pub const DEFAULT_ROOT: &str = "target/condspec-runs";

/// Atomically writes `doc` (plus a trailing newline) to `path`.
pub fn write_artifact(path: &Path, doc: &Json) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, doc.render() + "\n")?;
    fs::rename(&tmp, path)
}

/// Loads the artifact at `path` if it exists and parses; `None` means
/// "not complete, run the job".
pub fn load_artifact(path: &Path) -> Option<Json> {
    let text = fs::read_to_string(path).ok()?;
    Json::parse(&text).ok()
}

/// A sweep's artifact directory.
#[derive(Debug, Clone)]
pub struct SweepDir {
    dir: PathBuf,
}

impl SweepDir {
    /// Opens (creating if needed) `<root>/<sweep_id>/`.
    pub fn create(root: &Path, sweep_id: &str) -> io::Result<SweepDir> {
        let dir = root.join(sweep_id);
        fs::create_dir_all(&dir)?;
        Ok(SweepDir { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for a job hash.
    pub fn artifact_path(&self, job_hash: &str) -> PathBuf {
        self.dir.join(format!("{job_hash}.json"))
    }

    /// The completed artifact for a job hash, if any.
    pub fn completed(&self, job_hash: &str) -> Option<Json> {
        load_artifact(&self.artifact_path(job_hash))
    }

    /// Writes one job artifact atomically.
    pub fn write(&self, job_hash: &str, doc: &Json) -> io::Result<()> {
        write_artifact(&self.artifact_path(job_hash), doc)
    }

    /// Writes the sweep manifest. `statuses` is `(hash, label, status)`
    /// per job, in sweep order; everything in the manifest is
    /// deterministic, so manifests are byte-identical across runs of
    /// the same sweep whatever the worker count.
    pub fn write_manifest(
        &self,
        sweep_name: &str,
        sweep_id: &str,
        statuses: &[(String, String, &'static str)],
    ) -> io::Result<()> {
        let jobs = statuses
            .iter()
            .map(|(hash, label, status)| {
                Json::object(vec![
                    ("hash", Json::from(hash.as_str())),
                    ("label", Json::from(label.as_str())),
                    ("status", Json::from(*status)),
                ])
            })
            .collect::<Vec<_>>();
        let doc = Json::object(vec![
            ("sweep", Json::from(sweep_name)),
            ("sweep_id", Json::from(sweep_id)),
            ("total", Json::from(statuses.len() as u64)),
            ("jobs", Json::Array(jobs)),
        ]);
        write_artifact(&self.dir.join("manifest.json"), &doc)
    }

    /// Loads the manifest, if present and well-formed.
    pub fn manifest(&self) -> Option<Json> {
        load_artifact(&self.dir.join("manifest.json"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("condspec-artifact-{tag}-{}", std::process::id()))
    }

    #[test]
    fn artifact_round_trip_and_atomicity() {
        let root = scratch("round-trip");
        let dir = SweepDir::create(&root, "demo-0000").expect("create");
        let doc = Json::object(vec![("x", Json::from(1u64))]);
        dir.write("00ff", &doc).expect("write");
        assert_eq!(dir.completed("00ff"), Some(doc));
        assert_eq!(dir.completed("ffee"), None, "absent artifact");
        // A truncated file is "not complete", never a parse panic.
        fs::write(dir.artifact_path("bad0"), "{\"x\":").expect("write");
        assert_eq!(dir.completed("bad0"), None);
        // No stray temp files after a successful write.
        let stray: Vec<_> = fs::read_dir(dir.path())
            .expect("read dir")
            .filter(|e| {
                e.as_ref()
                    .expect("entry")
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(stray.is_empty());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn manifest_round_trip() {
        let root = scratch("manifest");
        let dir = SweepDir::create(&root, "demo-0001").expect("create");
        dir.write_manifest(
            "demo",
            "demo-0001",
            &[
                ("aa".to_string(), "gcc/origin".to_string(), "ok"),
                ("bb".to_string(), "gcc/baseline".to_string(), "failed"),
            ],
        )
        .expect("write manifest");
        let m = dir.manifest().expect("manifest parses");
        assert_eq!(m.get("sweep").and_then(Json::as_str), Some("demo"));
        assert_eq!(m.get("total").and_then(Json::as_u64), Some(2));
        let jobs = m.get("jobs").and_then(Json::as_array).expect("jobs");
        assert_eq!(jobs[1].get("status").and_then(Json::as_str), Some("failed"));
        fs::remove_dir_all(&root).ok();
    }
}

//! Result artifacts on disk: one JSON document per job plus a sweep
//! manifest, laid out for resumable runs.
//!
//! A sweep writes into `<root>/<sweep-id>/`:
//!
//! ```text
//! target/condspec-runs/fig5-1a2b3c4d5e6f7081/
//!   manifest.json          sweep name, id, and per-job status
//!   0123456789abcdef.json  one artifact per job, named by job hash
//! ```
//!
//! The sweep id is itself content-derived (sweep name + hash of all job
//! hashes), so editing a sweep's definition starts a fresh directory
//! instead of mixing artifacts from two generations. A job is
//! *complete* iff its artifact file exists and parses; failed jobs
//! write nothing and therefore re-run on `--resume`. Writes go through
//! a uniquely named temp file and rename, so a killed run never leaves
//! a truncated artifact that a resume would mistake for a result, and
//! two writers landing on the same artifact (e.g. concurrent daemon
//! submissions of one sweep) never scribble on each other's temp file.
//!
//! Artifact *contents* are strictly deterministic. The manifest's
//! per-job `status` is too, but its `source` field records where each
//! result came from this particular run (`simulated`, `store`,
//! `resumed`) — byte-identity comparisons between runs should cover the
//! job artifacts and rendered reports, not `manifest.json`.

use condspec_stats::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The default artifact root, relative to the working directory.
pub const DEFAULT_ROOT: &str = "target/condspec-runs";

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically writes `doc` (plus a trailing newline) to `path`.
pub fn write_artifact(path: &Path, doc: &Json) -> io::Result<()> {
    // Temp name is unique per (process, write): concurrent writers of
    // the same artifact each rename their own complete file.
    let tmp = path.with_extension(format!(
        "{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, doc.render() + "\n")?;
    let renamed = fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    renamed
}

/// Loads the artifact at `path` if it exists and parses; `None` means
/// "not complete, run the job".
pub fn load_artifact(path: &Path) -> Option<Json> {
    let text = fs::read_to_string(path).ok()?;
    Json::parse(&text).ok()
}

/// Where one job's result came from in a particular run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// Simulated by this run's worker pool.
    Simulated,
    /// Served from the persistent result store.
    Store,
    /// Skipped by `--resume`: the artifact already existed on disk.
    Resumed,
}

impl JobSource {
    /// The stable manifest string.
    pub fn key(&self) -> &'static str {
        match self {
            JobSource::Simulated => "simulated",
            JobSource::Store => "store",
            JobSource::Resumed => "resumed",
        }
    }
}

/// One job's row in the sweep manifest.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's content hash (artifact file stem).
    pub hash: String,
    /// Human-readable job label.
    pub label: String,
    /// `"ok"` or `"failed"`.
    pub status: &'static str,
    /// Where the result came from (meaningless for failed jobs, which
    /// record the source they *attempted*).
    pub source: JobSource,
    /// Per-shard provenance under claim-mode sharding: the owner id of
    /// the worker that simulated this job (ours, or the shard recorded
    /// in the store entry we loaded). `None` outside claim mode.
    pub owner: Option<String>,
}

/// The manifest's sweep-level header.
#[derive(Debug, Clone, Copy)]
pub struct ManifestInfo<'a> {
    /// The sweep's short name (`fig5`, ...).
    pub sweep_name: &'a str,
    /// The content-derived sweep id.
    pub sweep_id: &'a str,
    /// Measured-run iteration override applied to benchmark jobs, when
    /// the sweep was scaled (`--iters`).
    pub bench_iterations: Option<u64>,
    /// Warm-up iteration override applied to benchmark jobs (`--warmup`).
    pub bench_warmup: Option<u64>,
}

/// A sweep's artifact directory.
#[derive(Debug, Clone)]
pub struct SweepDir {
    dir: PathBuf,
}

impl SweepDir {
    /// Opens (creating if needed) `<root>/<sweep_id>/`.
    pub fn create(root: &Path, sweep_id: &str) -> io::Result<SweepDir> {
        let dir = root.join(sweep_id);
        fs::create_dir_all(&dir)?;
        Ok(SweepDir { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for a job hash.
    pub fn artifact_path(&self, job_hash: &str) -> PathBuf {
        self.dir.join(format!("{job_hash}.json"))
    }

    /// The completed artifact for a job hash, if any.
    pub fn completed(&self, job_hash: &str) -> Option<Json> {
        load_artifact(&self.artifact_path(job_hash))
    }

    /// Writes one job artifact atomically.
    pub fn write(&self, job_hash: &str, doc: &Json) -> io::Result<()> {
        write_artifact(&self.artifact_path(job_hash), doc)
    }

    /// Writes the sweep manifest: the sweep header plus one row per job
    /// in sweep order. Job `status` values are deterministic; `source`
    /// values describe this run (see the module docs).
    pub fn write_manifest(&self, info: &ManifestInfo, statuses: &[JobStatus]) -> io::Result<()> {
        let jobs = statuses
            .iter()
            .map(|job| {
                let mut row = vec![
                    ("hash", Json::from(job.hash.as_str())),
                    ("label", Json::from(job.label.as_str())),
                    ("status", Json::from(job.status)),
                    ("source", Json::from(job.source.key())),
                ];
                if let Some(owner) = &job.owner {
                    row.push(("owner", Json::from(owner.as_str())));
                }
                Json::object(row)
            })
            .collect::<Vec<_>>();
        let mut doc = vec![
            ("sweep", Json::from(info.sweep_name)),
            ("sweep_id", Json::from(info.sweep_id)),
        ];
        if let Some(iterations) = info.bench_iterations {
            doc.push(("bench_iterations", Json::from(iterations)));
        }
        if let Some(warmup) = info.bench_warmup {
            doc.push(("bench_warmup", Json::from(warmup)));
        }
        doc.push(("total", Json::from(statuses.len() as u64)));
        doc.push(("jobs", Json::Array(jobs)));
        write_artifact(&self.dir.join("manifest.json"), &Json::object(doc))
    }

    /// Loads the manifest, if present and well-formed.
    pub fn manifest(&self) -> Option<Json> {
        load_artifact(&self.dir.join("manifest.json"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("condspec-artifact-{tag}-{}", std::process::id()))
    }

    #[test]
    fn artifact_round_trip_and_atomicity() {
        let root = scratch("round-trip");
        let dir = SweepDir::create(&root, "demo-0000").expect("create");
        let doc = Json::object(vec![("x", Json::from(1u64))]);
        dir.write("00ff", &doc).expect("write");
        assert_eq!(dir.completed("00ff"), Some(doc));
        assert_eq!(dir.completed("ffee"), None, "absent artifact");
        // A truncated file is "not complete", never a parse panic.
        fs::write(dir.artifact_path("bad0"), "{\"x\":").expect("write");
        assert_eq!(dir.completed("bad0"), None);
        // No stray temp files after a successful write.
        let stray: Vec<_> = fs::read_dir(dir.path())
            .expect("read dir")
            .filter(|e| {
                e.as_ref()
                    .expect("entry")
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(stray.is_empty());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn concurrent_writes_of_one_artifact_leave_one_clean_file() {
        let root = scratch("concurrent");
        let dir = SweepDir::create(&root, "demo-0002").expect("create");
        let doc = Json::object(vec![("x", Json::from(7u64))]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let dir = dir.clone();
                let doc = doc.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        dir.write("aaaa", &doc).expect("write");
                    }
                });
            }
        });
        assert_eq!(dir.completed("aaaa"), Some(doc));
        let names: Vec<String> = fs::read_dir(dir.path())
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["aaaa.json"], "exactly one file, no strays");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn manifest_round_trip() {
        let root = scratch("manifest");
        let dir = SweepDir::create(&root, "demo-0001").expect("create");
        dir.write_manifest(
            &ManifestInfo {
                sweep_name: "demo",
                sweep_id: "demo-0001",
                bench_iterations: Some(4),
                bench_warmup: None,
            },
            &[
                JobStatus {
                    hash: "aa".to_string(),
                    label: "gcc/origin".to_string(),
                    status: "ok",
                    source: JobSource::Store,
                    owner: Some("shard-a".to_string()),
                },
                JobStatus {
                    hash: "bb".to_string(),
                    label: "gcc/baseline".to_string(),
                    status: "failed",
                    source: JobSource::Simulated,
                    owner: None,
                },
            ],
        )
        .expect("write manifest");
        let m = dir.manifest().expect("manifest parses");
        assert_eq!(m.get("sweep").and_then(Json::as_str), Some("demo"));
        assert_eq!(m.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(m.get("bench_iterations").and_then(Json::as_u64), Some(4));
        assert_eq!(m.get("bench_warmup"), None);
        let jobs = m.get("jobs").and_then(Json::as_array).expect("jobs");
        assert_eq!(jobs[0].get("source").and_then(Json::as_str), Some("store"));
        assert_eq!(jobs[0].get("owner").and_then(Json::as_str), Some("shard-a"));
        assert_eq!(jobs[1].get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(jobs[1].get("owner"), None);
        fs::remove_dir_all(&root).ok();
    }
}

//! The named sweeps: job lists for each of the paper's tables/figures,
//! plus renderers that turn a sweep's artifacts back into the published
//! table.
//!
//! Builders and renderers share the same per-benchmark job-construction
//! helpers, so a renderer always looks up exactly the hashes its
//! builder scheduled. A renderer tolerates missing artifacts (failed or
//! skipped jobs) by printing `-` in the affected cells rather than
//! refusing to render the rest of the table.

use crate::hash::{fnv1a64, hex16};
use crate::job::{JobSpec, MachinePreset, Workload};
use condspec::{DefenseConfig, LruPolicy};
use condspec_attacks::AttackScenario;
use condspec_stats::table::{percent, percent_value};
use condspec_stats::{arithmetic_mean, Json, TextTable};
use condspec_workloads::spec::suite;
use condspec_workloads::GadgetKind;
use std::collections::BTreeMap;

/// Artifacts keyed by job hash.
pub type SweepResults = BTreeMap<String, Json>;

/// Table VI runs a 3x larger grid; fewer iterations keep it tractable.
const TABLE6_ITERATIONS: u64 = 25;

/// A named, fully-enumerated sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Short CLI name (`fig5`, `table4`, ...).
    pub name: &'static str,
    /// Human title printed above the rendered table.
    pub title: &'static str,
    /// Every job of the sweep, in deterministic order.
    pub jobs: Vec<JobSpec>,
}

impl Sweep {
    /// All sweep names, in CLI help order.
    pub const NAMES: [&'static str; 7] = [
        "fig5", "table4", "table5", "table6", "lru", "icache", "leaks",
    ];

    /// Builds a sweep by name.
    pub fn by_name(name: &str) -> Option<Sweep> {
        match name {
            "fig5" => Some(fig5()),
            "table4" => Some(table4()),
            "table5" => Some(table5()),
            "table6" => Some(table6()),
            "lru" => Some(lru()),
            "icache" => Some(icache()),
            "leaks" => Some(leaks()),
            _ => None,
        }
    }

    /// The content-derived sweep id: `<name>-<hash of all job hashes>`.
    /// Changing any job definition changes the id, so a new sweep
    /// generation never resumes from a stale directory.
    pub fn sweep_id(&self) -> String {
        let mut all = String::new();
        for job in &self.jobs {
            all.push_str(&job.hash_hex());
            all.push(';');
        }
        format!("{}-{}", self.name, hex16(fnv1a64(all.as_bytes())))
    }

    /// Rescales every benchmark job to the given measured/warm-up
    /// iteration counts (`None` keeps the sweep's own value). Attack
    /// and variant jobs are untouched. Scaling changes job hashes and
    /// therefore the sweep id — a scaled sweep is honestly a different
    /// computation, with its own artifacts and store entries.
    pub fn scaled(mut self, iterations: Option<u64>, warmup: Option<u64>) -> Sweep {
        for job in &mut self.jobs {
            match &mut job.workload {
                Workload::Bench {
                    iterations: i,
                    warmup: w,
                    ..
                } => {
                    if let Some(iterations) = iterations {
                        *i = iterations;
                    }
                    if let Some(warmup) = warmup {
                        *w = warmup;
                    }
                }
                // Window jobs have no warm-up program: each window
                // warms up in detail from its checkpoint instead.
                Workload::BenchWindow { iterations: i, .. } => {
                    if let Some(iterations) = iterations {
                        *i = iterations;
                    }
                }
                Workload::Attack { .. } | Workload::Variant { .. } | Workload::LeakProbe { .. } => {
                }
            }
        }
        self
    }

    /// Renders the sweep's table from its artifacts.
    pub fn render(&self, results: &SweepResults) -> String {
        let table = match self.name {
            "fig5" => render_fig5(results),
            "table4" => render_table4(results),
            "table5" => render_table5(results),
            "table6" => render_table6(results),
            "lru" => render_lru(results),
            "icache" => render_icache(results),
            "leaks" => render_leaks(results),
            _ => unreachable!("sweeps are only constructed by name"),
        };
        format!("\n{}\n\n{table}", self.title)
    }
}

// ---------------------------------------------------------------------
// Artifact accessors
// ---------------------------------------------------------------------

fn artifact<'r>(results: &'r SweepResults, job: &JobSpec) -> Option<&'r Json> {
    results.get(&job.hash_hex())
}

fn report_f64(results: &SweepResults, job: &JobSpec, field: &str) -> Option<f64> {
    artifact(results, job)?.get("report")?.get(field)?.as_f64()
}

fn report_cycles(results: &SweepResults, job: &JobSpec) -> Option<f64> {
    Some(report_f64(results, job, "cycles")?.max(1.0))
}

fn fmt3(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"))
}

fn fmt_pct(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), percent)
}

fn fmt_pct_value(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), percent_value)
}

fn fmt_signed_pct(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| format!("{v:+.2}%"))
}

fn mean_row(columns: &[Vec<f64>], fmt: impl Fn(Option<f64>) -> String) -> Vec<String> {
    let mut row = vec!["Average".to_string()];
    row.extend(columns.iter().map(|c| {
        if c.is_empty() {
            "-".to_string()
        } else {
            fmt(Some(arithmetic_mean(c)))
        }
    }));
    row
}

// ---------------------------------------------------------------------
// Figure 5 — normalized execution time + branch-only ablation
// ---------------------------------------------------------------------

fn fig5_jobs_for(benchmark: &'static str) -> [JobSpec; 5] {
    let mut branch_only = JobSpec::bench(benchmark, DefenseConfig::Baseline);
    branch_only.branch_only = true;
    [
        JobSpec::bench(benchmark, DefenseConfig::Origin),
        JobSpec::bench(benchmark, DefenseConfig::Baseline),
        JobSpec::bench(benchmark, DefenseConfig::CacheHit),
        JobSpec::bench(benchmark, DefenseConfig::CacheHitTpbuf),
        branch_only,
    ]
}

/// Figure 5: normalized execution time of the three mechanisms plus the
/// §VI.C branch-only ablation, on the 22-benchmark suite.
pub fn fig5() -> Sweep {
    Sweep {
        name: "fig5",
        title: "Figure 5 — normalized execution time (Origin = 1.0)",
        jobs: suite().iter().flat_map(|s| fig5_jobs_for(s.name)).collect(),
    }
}

fn render_fig5(results: &SweepResults) -> String {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
        "Branch-only Baseline (ablation)",
    ]);
    let mut columns: [Vec<f64>; 4] = Default::default();
    for spec in suite() {
        let jobs = fig5_jobs_for(spec.name);
        let origin = report_cycles(results, &jobs[0]);
        let mut cells = vec![spec.name.to_string()];
        for (col, job) in columns.iter_mut().zip(&jobs[1..]) {
            let norm = match (origin, report_cycles(results, job)) {
                (Some(o), Some(c)) => Some(c / o),
                _ => None,
            };
            if let Some(v) = norm {
                col.push(v);
            }
            cells.push(fmt3(norm));
        }
        table.row(cells);
    }
    table.row(mean_row(&columns, fmt3));
    format!(
        "{table}\npaper reference: Baseline avg 1.536, Cache-hit avg 1.128, \
         Cache-hit+TPBuf avg 1.068, branch-only Baseline avg 1.230\n"
    )
}

// ---------------------------------------------------------------------
// Table IV — security analysis
// ---------------------------------------------------------------------

const TABLE4_VARIANTS: [GadgetKind; 4] = [
    GadgetKind::V1,
    GadgetKind::V2,
    GadgetKind::V4,
    GadgetKind::Rsb,
];

/// Table IV: every attack scenario and Spectre variant against every
/// defense environment.
pub fn table4() -> Sweep {
    let mut jobs = Vec::new();
    for scenario in AttackScenario::ALL {
        for defense in DefenseConfig::ALL {
            jobs.push(JobSpec::attack(scenario, defense));
        }
    }
    for kind in TABLE4_VARIANTS {
        for defense in DefenseConfig::ALL {
            jobs.push(JobSpec::variant(kind, defense));
        }
    }
    Sweep {
        name: "table4",
        title: "Table IV — defended? (per mechanism, measured by end-to-end attack)",
        jobs,
    }
}

fn render_table4(results: &SweepResults) -> String {
    let mut table = TextTable::with_columns(&[
        "Attack Classification",
        "Origin",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
        "matches paper",
    ]);
    let mut all_match = true;
    for scenario in AttackScenario::ALL {
        let mut cells = vec![scenario.label().to_string()];
        let mut row_matches = Some(true);
        for defense in DefenseConfig::ALL {
            let job = JobSpec::attack(scenario, defense);
            match artifact(results, &job) {
                Some(doc) => {
                    let defended = doc.get("defended").and_then(Json::as_bool).unwrap_or(false);
                    let matches = doc
                        .get("matches_paper")
                        .and_then(Json::as_bool)
                        .unwrap_or(false);
                    row_matches = row_matches.map(|m| m && matches);
                    cells.push(if defended { "yes" } else { "NO" }.to_string());
                }
                None => {
                    row_matches = None;
                    cells.push("-".to_string());
                }
            }
        }
        cells.push(match row_matches {
            Some(true) => "yes".to_string(),
            Some(false) => {
                all_match = false;
                "MISMATCH".to_string()
            }
            None => "-".to_string(),
        });
        table.row(cells);
    }
    let mut out = format!(
        "{table}\nexpected (paper): Baseline and Cache-hit defend all six; \
         Cache-hit+TPBuf defends the four shared-memory rows only.\n\
         all cells match Table IV: {}\n",
        if all_match { "YES" } else { "NO" }
    );

    let mut variants = TextTable::with_columns(&[
        "Spectre variant",
        "Origin",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
    ]);
    for kind in TABLE4_VARIANTS {
        let mut cells = vec![kind.key().to_string()];
        for defense in DefenseConfig::ALL {
            let job = JobSpec::variant(kind, defense);
            cells.push(
                match artifact(results, &job).and_then(|d| d.get("leaked")?.as_bool()) {
                    Some(true) => "LEAKS".to_string(),
                    Some(false) => "blocked".to_string(),
                    None => "-".to_string(),
                },
            );
        }
        variants.row(cells);
    }
    out.push_str(&format!(
        "\nPer-variant analysis (Flush+Reload channel; rsb = SpectreRSB/ret2spec):\n\n{variants}"
    ));
    out
}

// ---------------------------------------------------------------------
// Table V — filter analysis
// ---------------------------------------------------------------------

fn table5_jobs_for(benchmark: &'static str) -> [JobSpec; 4] {
    [
        JobSpec::bench(benchmark, DefenseConfig::Origin),
        JobSpec::bench(benchmark, DefenseConfig::Baseline),
        JobSpec::bench(benchmark, DefenseConfig::CacheHit),
        JobSpec::bench(benchmark, DefenseConfig::CacheHitTpbuf),
    ]
}

/// Table V: per-benchmark filter analysis (blocked rates, suspect hit
/// rate, S-Pattern mismatch rate).
pub fn table5() -> Sweep {
    Sweep {
        name: "table5",
        title: "Table V — filter analysis",
        jobs: suite()
            .iter()
            .flat_map(|s| table5_jobs_for(s.name))
            .collect(),
    }
}

fn render_table5(results: &SweepResults) -> String {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "L1 Hit Rate",
        "BL Blocked",
        "CH Blocked",
        "CH SpecHitRate",
        "TPBuf Blocked",
        "S-Mismatch",
    ]);
    let mut columns: [Vec<f64>; 6] = Default::default();
    for spec in suite() {
        let [origin, baseline, cachehit, tpbuf] = table5_jobs_for(spec.name);
        let values = [
            report_f64(results, &origin, "l1d_hit_rate"),
            report_f64(results, &baseline, "blocked_rate"),
            report_f64(results, &cachehit, "blocked_rate"),
            report_f64(results, &cachehit, "suspect_hit_rate"),
            report_f64(results, &tpbuf, "blocked_rate"),
            report_f64(results, &tpbuf, "s_pattern_mismatch_rate"),
        ];
        let mut cells = vec![spec.name.to_string()];
        for (col, v) in columns.iter_mut().zip(values) {
            if let Some(v) = v {
                col.push(v);
            }
            cells.push(fmt_pct(v));
        }
        table.row(cells);
    }
    table.row(mean_row(&columns, fmt_pct));
    format!(
        "{table}\npaper reference averages: L1 hit 88.7%, Baseline blocked 73.6%, \
         Cache-hit blocked 3.6%, suspect hit rate 89.6%, TPBuf blocked 1.7%, \
         S-Pattern mismatch 18.2%\n"
    )
}

// ---------------------------------------------------------------------
// Table VI — sensitivity to core complexity
// ---------------------------------------------------------------------

fn table6_jobs_for(benchmark: &'static str, preset: MachinePreset) -> [JobSpec; 4] {
    let mut jobs = table5_jobs_for(benchmark);
    for job in &mut jobs {
        job.machine = preset;
        if let Workload::Bench { iterations, .. } = &mut job.workload {
            *iterations = TABLE6_ITERATIONS;
        }
    }
    jobs
}

/// Table VI: overhead of the three mechanisms on A57-like, I7-like and
/// Xeon-like machines.
pub fn table6() -> Sweep {
    let mut jobs = Vec::new();
    for spec in suite() {
        for preset in MachinePreset::SENSITIVITY {
            jobs.extend(table6_jobs_for(spec.name, preset));
        }
    }
    Sweep {
        name: "table6",
        title: "Table VI — performance overhead (%) by core complexity",
        jobs,
    }
}

fn render_table6(results: &SweepResults) -> String {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "A57 BL",
        "A57 CH",
        "A57 TPBuf",
        "I7 BL",
        "I7 CH",
        "I7 TPBuf",
        "Xeon BL",
        "Xeon CH",
        "Xeon TPBuf",
    ]);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 9];
    for spec in suite() {
        let mut cells = vec![spec.name.to_string()];
        let mut idx = 0;
        for preset in MachinePreset::SENSITIVITY {
            let jobs = table6_jobs_for(spec.name, preset);
            let origin = report_cycles(results, &jobs[0]);
            for job in &jobs[1..] {
                let overhead = match (origin, report_cycles(results, job)) {
                    (Some(o), Some(c)) => Some((c / o - 1.0) * 100.0),
                    _ => None,
                };
                if let Some(v) = overhead {
                    columns[idx].push(v);
                }
                idx += 1;
                cells.push(fmt_pct_value(overhead));
            }
        }
        table.row(cells);
    }
    table.row(mean_row(&columns, fmt_pct_value));
    format!(
        "{table}\npaper reference averages: A57 41.1/11.0/6.0, I7 46.3/15.1/9.0, \
         Xeon 51.4/15.9/9.6 (%)\n\
         expected shape: the same mechanism ordering on every platform, \
         with overheads growing with core complexity.\n"
    )
}

// ---------------------------------------------------------------------
// §VII.A — secure LRU update policies
// ---------------------------------------------------------------------

fn lru_jobs_for(benchmark: &'static str) -> [JobSpec; 3] {
    [LruPolicy::Update, LruPolicy::NoUpdate, LruPolicy::Delayed].map(|policy| {
        let mut job = JobSpec::bench(benchmark, DefenseConfig::CacheHitTpbuf);
        job.lru = policy;
        job
    })
}

/// §VII.A: the no-update and delayed-update secure LRU policies on top
/// of Cache-hit + TPBuf.
pub fn lru() -> Sweep {
    Sweep {
        name: "lru",
        title: "Section VII.A — secure LRU update policies (on Cache-hit + TPBuf)",
        jobs: suite().iter().flat_map(|s| lru_jobs_for(s.name)).collect(),
    }
}

fn render_lru(results: &SweepResults) -> String {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "Normal LRU (cycles)",
        "No-update vs normal",
        "Delayed vs normal",
        "Delayed recovers",
    ]);
    let mut columns: [Vec<f64>; 2] = Default::default();
    for spec in suite() {
        let [normal, none, delayed] = lru_jobs_for(spec.name);
        let base = report_cycles(results, &normal);
        let overhead = |job: &JobSpec| match (base, report_cycles(results, job)) {
            (Some(b), Some(c)) => Some((c / b - 1.0) * 100.0),
            _ => None,
        };
        let none_overhead = overhead(&none);
        let delayed_overhead = overhead(&delayed);
        if let (Some(n), Some(d)) = (none_overhead, delayed_overhead) {
            columns[0].push(n);
            columns[1].push(d);
        }
        table.row(vec![
            spec.name.to_string(),
            base.map_or_else(|| "-".to_string(), |b| format!("{b:.0}")),
            fmt_signed_pct(none_overhead),
            fmt_signed_pct(delayed_overhead),
            fmt_signed_pct(none_overhead.zip(delayed_overhead).map(|(n, d)| n - d)),
        ]);
    }
    let (avg_none, avg_delayed) = (arithmetic_mean(&columns[0]), arithmetic_mean(&columns[1]));
    table.row(vec![
        "Average".to_string(),
        "-".to_string(),
        fmt_signed_pct(Some(avg_none)),
        fmt_signed_pct(Some(avg_delayed)),
        fmt_signed_pct(Some(avg_none - avg_delayed)),
    ]);
    format!(
        "{table}\npaper reference: no-update costs +0.71% on average; \
         delayed update recovers 0.26% of it.\n"
    )
}

// ---------------------------------------------------------------------
// §VII.B — ICache-hit filter
// ---------------------------------------------------------------------

fn icache_jobs_for(benchmark: &'static str) -> [JobSpec; 2] {
    let base = JobSpec::bench(benchmark, DefenseConfig::CacheHitTpbuf);
    let mut filtered = base.clone();
    filtered.icache_filter = true;
    [base, filtered]
}

/// §VII.B: the ICache-hit filter stacked on Cache-hit + TPBuf.
pub fn icache() -> Sweep {
    Sweep {
        name: "icache",
        title: "Section VII.B — ICache-hit filter on top of Cache-hit + TPBuf",
        jobs: suite()
            .iter()
            .flat_map(|s| icache_jobs_for(s.name))
            .collect(),
    }
}

fn render_icache(results: &SweepResults) -> String {
    let mut table = TextTable::with_columns(&[
        "Benchmark",
        "CS+TPBuf (cycles)",
        "+ICache filter",
        "overhead",
        "fetch stalls",
    ]);
    let mut overheads = Vec::new();
    for spec in suite() {
        let [base, filtered] = icache_jobs_for(spec.name);
        let base_cycles = report_cycles(results, &base);
        let filtered_cycles = report_cycles(results, &filtered);
        let overhead = match (base_cycles, filtered_cycles) {
            (Some(b), Some(f)) => Some((f / b - 1.0) * 100.0),
            _ => None,
        };
        if let Some(v) = overhead {
            overheads.push(v);
        }
        let stalls =
            artifact(results, &filtered).and_then(|d| d.get("icache_fetch_stalls")?.as_u64());
        table.row(vec![
            spec.name.to_string(),
            base_cycles.map_or_else(|| "-".to_string(), |v| format!("{v:.0}")),
            filtered_cycles.map_or_else(|| "-".to_string(), |v| format!("{v:.0}")),
            fmt_signed_pct(overhead),
            stalls.map_or_else(|| "-".to_string(), |v| v.to_string()),
        ]);
    }
    table.row(vec![
        "Average".to_string(),
        "-".to_string(),
        "-".to_string(),
        fmt_signed_pct((!overheads.is_empty()).then(|| arithmetic_mean(&overheads))),
        "-".to_string(),
    ]);
    format!(
        "{table}\nThe paper proposes this extension without evaluating it; the \
         expectation is a small overhead because instruction working sets \
         are L1I-resident, with stalls concentrated at mispredicted \
         branches whose wrong-path code is cold.\n"
    )
}

// ---------------------------------------------------------------------
// Leak matrix — taint-oracle information-flow verdicts
// ---------------------------------------------------------------------

/// The taint-oracle leak matrix: every Table IV Spectre variant probed
/// under every defense, with the verdict coming from information flow
/// inside the pipeline instead of an attacker's channel readout.
pub fn leaks() -> Sweep {
    let mut jobs = Vec::new();
    for kind in TABLE4_VARIANTS {
        for defense in DefenseConfig::ALL {
            jobs.push(JobSpec::leak_probe(kind, defense));
        }
    }
    Sweep {
        name: "leaks",
        title: "Leak matrix — squash-surviving taint flows per defense (taint oracle)",
        jobs,
    }
}

fn leak_u64(results: &SweepResults, job: &JobSpec, field: &str) -> Option<u64> {
    artifact(results, job)?.get("leaks")?.get(field)?.as_u64()
}

fn render_leaks(results: &SweepResults) -> String {
    let mut table = TextTable::with_columns(&[
        "Gadget",
        "Origin",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
    ]);
    let mut claim_holds = Some(true);
    for kind in TABLE4_VARIANTS {
        let mut cells = vec![kind.key().to_string()];
        for defense in DefenseConfig::ALL {
            let job = JobSpec::leak_probe(kind, defense);
            let survived = leak_u64(results, &job, "cache_fills_survived")
                .zip(leak_u64(results, &job, "cache_lru_survived"))
                .map(|(f, l)| f + l);
            cells.push(match survived {
                Some(0) => "clean".to_string(),
                Some(n) => "LEAKS".to_string() + &format!("({n})"),
                None => "-".to_string(),
            });
            let expected_leak = defense == DefenseConfig::Origin;
            claim_holds = match (claim_holds, survived) {
                (Some(ok), Some(n)) => Some(ok && ((n > 0) == expected_leak)),
                _ => None,
            };
        }
        table.row(cells);
    }

    let mut blind = TextTable::with_columns(&[
        "Gadget",
        "Origin",
        "Baseline",
        "Cache-hit",
        "Cache-hit+TPBuf",
    ]);
    for kind in TABLE4_VARIANTS {
        let mut cells = vec![kind.key().to_string()];
        for defense in DefenseConfig::ALL {
            let job = JobSpec::leak_probe(kind, defense);
            let tlb = leak_u64(results, &job, "tlb_fills_survived");
            let tpbuf = leak_u64(results, &job, "tpbuf_inserts_survived");
            cells.push(match (tlb, tpbuf) {
                (Some(t), Some(p)) => format!("tlb:{t} tpbuf:{p}"),
                _ => "-".to_string(),
            });
        }
        blind.row(cells);
    }

    format!(
        "{table}\nsecurity claim (cache channels: Origin leaks on every gadget, \
         every defense on none): {}\n\n\
         Blind spots — squash-surviving non-cache flows the paper's threat \
         model does not cover (TLB fills, TPBuf training):\n\n{blind}\n\
         A tlb count > 0 under a defense means the blocked load had already \
         translated its secret-dependent address; the defenses filter the \
         cache, not the TLB.\n",
        match claim_holds {
            Some(true) => "REPRODUCED",
            Some(false) => "VIOLATED",
            None => "incomplete",
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_have_expected_sizes() {
        assert_eq!(fig5().jobs.len(), 22 * 5);
        assert_eq!(table4().jobs.len(), 6 * 4 + 4 * 4);
        assert_eq!(table5().jobs.len(), 22 * 4);
        assert_eq!(table6().jobs.len(), 22 * 3 * 4);
        assert_eq!(lru().jobs.len(), 22 * 3);
        assert_eq!(icache().jobs.len(), 22 * 2);
        assert_eq!(leaks().jobs.len(), 4 * 4);
    }

    #[test]
    fn fig5_needs_one_program_build_per_benchmark_and_iteration_count() {
        // Every fig5 job on a benchmark shares the same warm-up and
        // measured programs, so the sweep's program cache should build
        // 22 benchmarks x {warmup, measured} = 44 programs and serve
        // the remaining 110*2 - 44 requests as hits.
        let mut keys: Vec<(&'static str, u64)> = fig5()
            .jobs
            .iter()
            .flat_map(|job| match &job.workload {
                Workload::Bench {
                    benchmark,
                    iterations,
                    warmup,
                } => vec![(*benchmark, *warmup), (*benchmark, *iterations)],
                _ => vec![],
            })
            .collect();
        assert_eq!(keys.len(), 110 * 2, "every fig5 job is a benchmark");
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 22 * 2, "distinct programs a fig5 run builds");
    }

    #[test]
    fn job_hashes_are_unique_within_each_sweep() {
        for name in Sweep::NAMES {
            let sweep = Sweep::by_name(name).expect("known sweep");
            let mut hashes: Vec<String> = sweep.jobs.iter().map(JobSpec::hash_hex).collect();
            hashes.sort();
            let before = hashes.len();
            hashes.dedup();
            assert_eq!(hashes.len(), before, "duplicate job in sweep {name}");
        }
    }

    #[test]
    fn sweep_ids_are_deterministic_and_distinct() {
        assert_eq!(fig5().sweep_id(), fig5().sweep_id());
        let ids: Vec<String> = Sweep::NAMES
            .iter()
            .map(|n| Sweep::by_name(n).expect("known").sweep_id())
            .collect();
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn rendering_tolerates_missing_artifacts() {
        for name in Sweep::NAMES {
            let sweep = Sweep::by_name(name).expect("known sweep");
            let rendered = sweep.render(&SweepResults::new());
            assert!(rendered.contains('-'), "{name} renders placeholders");
        }
    }

    #[test]
    fn scaling_rewrites_window_jobs_and_rehashes() {
        let sweep = Sweep {
            name: "windows",
            title: "window jobs",
            jobs: vec![JobSpec::bench_window("gcc", DefenseConfig::Origin, 1)],
        };
        let base_id = sweep.sweep_id();
        let scaled = sweep.scaled(Some(3), Some(1));
        assert_ne!(base_id, scaled.sweep_id(), "window jobs re-hash");
        let Workload::BenchWindow { iterations, .. } = &scaled.jobs[0].workload else {
            panic!("workload kind must survive scaling");
        };
        assert_eq!(*iterations, 3);
    }

    #[test]
    fn unknown_sweep_is_rejected() {
        assert!(Sweep::by_name("fig9").is_none());
    }

    #[test]
    fn scaling_rewrites_bench_iterations_and_the_sweep_id() {
        let base = icache();
        let scaled = icache().scaled(Some(2), Some(1));
        assert_ne!(base.sweep_id(), scaled.sweep_id(), "a scaled sweep is new");
        for job in &scaled.jobs {
            if let Workload::Bench {
                iterations, warmup, ..
            } = &job.workload
            {
                assert_eq!((*iterations, *warmup), (2, 1));
            }
        }
        // Attack jobs are untouched, so table4 keeps its id.
        assert_eq!(
            table4().sweep_id(),
            table4().scaled(Some(2), Some(1)).sweep_id()
        );
        // `None` keeps the sweep's own counts.
        assert_eq!(base.sweep_id(), icache().scaled(None, None).sweep_id());
    }
}

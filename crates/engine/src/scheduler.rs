//! The worker pool: deterministic-result parallel job execution on
//! `std::thread` with per-job panic isolation.
//!
//! Workers pull jobs from a shared cursor (cheap work stealing: whoever
//! is free claims the next index with one `fetch_add`, no lock, no
//! queue to build), run each inside `catch_unwind`, and stream
//! `(index, result)` pairs back over an `mpsc` channel. The caller
//! reassembles results *by index*, so the output order — and therefore
//! everything derived from it — is independent of how many workers ran
//! or how the OS interleaved them. Only scheduling varies with
//! `workers`; results never do.

use crate::job::JobSpec;
use condspec_stats::Json;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The outcome of one job: its artifact document, or the panic message
/// of a failed run.
pub type JobResult = Result<Json, String>;

/// The number of workers to use when the caller does not say:
/// `std::thread::available_parallelism`, or 1 if unknown.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// Runs `jobs` on `workers` threads and returns one [`JobResult`] per
/// job, in input order. `on_done(index, result)` fires on the calling
/// thread as each job finishes (completion order), for progress
/// reporting and incremental artifact writes.
///
/// A panicking job is caught, converted to `Err(message)`, and does not
/// disturb any other job: the worker that caught it moves on to the
/// next queue entry.
pub fn run_jobs(
    jobs: &[JobSpec],
    workers: usize,
    mut on_done: impl FnMut(usize, &JobResult),
) -> Vec<JobResult> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobResult)>();

    let mut results: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = jobs.get(index) else { break };
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| spec.execute())).map_err(panic_message);
                if tx.send((index, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (index, outcome) in rx {
            on_done(index, &outcome);
            results[index] = Some(outcome);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job reports exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Workload;
    use condspec::DefenseConfig;

    fn tiny_job(benchmark: &'static str) -> JobSpec {
        let mut j = JobSpec::bench(benchmark, DefenseConfig::Origin);
        if let Workload::Bench {
            iterations, warmup, ..
        } = &mut j.workload
        {
            *iterations = 2;
            *warmup = 1;
        }
        j
    }

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let jobs = vec![tiny_job("gcc"), tiny_job("mcf"), tiny_job("lbm")];
        let reference: Vec<String> = run_jobs(&jobs, 1, |_, _| {})
            .into_iter()
            .map(|r| r.expect("tiny jobs halt").render())
            .collect();
        for workers in [2, 8] {
            let got: Vec<String> = run_jobs(&jobs, workers, |_, _| {})
                .into_iter()
                .map(|r| r.expect("tiny jobs halt").render())
                .collect();
            assert_eq!(got, reference, "{workers} workers");
        }
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let mut bad = tiny_job("gcc");
        bad.budget = 10; // cannot halt in 10 cycles -> run_to_halt panics
        let jobs = vec![tiny_job("mcf"), bad, tiny_job("lbm")];
        let mut done = 0;
        let results = run_jobs(&jobs, 2, |_, _| done += 1);
        assert_eq!(done, 3);
        assert!(results[0].is_ok());
        assert!(results[1]
            .as_ref()
            .is_err_and(|e| e.contains("did not halt")));
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(&[], 4, |_, _| {}).is_empty());
    }
}

//! The worker pool: deterministic-result parallel job execution on
//! `std::thread` with per-job panic isolation.
//!
//! Workers pull jobs from a shared cursor (cheap work stealing: whoever
//! is free claims the next index with one `fetch_add`, no lock, no
//! queue to build), run each inside `catch_unwind`, and stream
//! `(index, result)` pairs back over an `mpsc` channel. The caller
//! reassembles results *by index*, so the output order — and therefore
//! everything derived from it — is independent of how many workers ran
//! or how the OS interleaved them. Only scheduling varies with
//! `workers`; results never do.
//!
//! When a persistent [`ResultStore`] is supplied
//! ([`run_jobs_stored`]), each worker consults it before simulating:
//! a valid entry under the job's store key is returned as-is (tagged
//! [`JobSource::Store`]), and every freshly simulated success is
//! inserted back — best-effort, since a read-only or full store must
//! never fail a sweep. Store entries hold exactly the artifact the job
//! would have produced, so a store hit is byte-identical to a
//! simulation.

use crate::artifact::JobSource;
use crate::cache::{ProgramCache, WorkerContext};
use crate::job::JobSpec;
use condspec_stats::Json;
use condspec_store::{ClaimStatus, ResultStore};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The outcome of one job: its artifact document, or the panic message
/// of a failed run.
pub type JobResult = Result<Json, String>;

/// Wall-clock execution telemetry for one job. Never written into job
/// artifacts or the manifest (those must stay deterministic); the
/// engine's opt-in `telemetry.json` sidecar is its only persistent home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Index of the worker thread that ran the job.
    pub worker: usize,
    /// Milliseconds between pool start and this job being claimed — how
    /// long the job sat in the queue behind earlier claims.
    pub queue_wait_ms: u64,
    /// Milliseconds the job's simulation (including a panicking one)
    /// actually ran.
    pub wall_ms: u64,
}

/// The number of workers to use when the caller does not say:
/// `std::thread::available_parallelism`, or 1 if unknown.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// Runs `jobs` on `workers` threads and returns one [`JobResult`] per
/// job, in input order. `on_done(index, result)` fires on the calling
/// thread as each job finishes (completion order), for progress
/// reporting and incremental artifact writes.
///
/// A panicking job is caught, converted to `Err(message)`, and does not
/// disturb any other job: the worker that caught it moves on to the
/// next queue entry.
pub fn run_jobs(
    jobs: &[JobSpec],
    workers: usize,
    mut on_done: impl FnMut(usize, &JobResult),
) -> Vec<JobResult> {
    run_jobs_timed(jobs, workers, |index, outcome, _| on_done(index, outcome))
        .into_iter()
        .map(|(outcome, _)| outcome)
        .collect()
}

/// [`run_jobs`] plus per-job wall-clock telemetry: each result carries
/// the [`JobTiming`] of its execution, and `on_done` additionally
/// receives the timing. Results (and their order) are exactly what
/// [`run_jobs`] produces — only the timings vary run to run.
pub fn run_jobs_timed(
    jobs: &[JobSpec],
    workers: usize,
    on_done: impl FnMut(usize, &JobResult, &JobTiming),
) -> Vec<(JobResult, JobTiming)> {
    run_jobs_cached(jobs, workers, &Arc::new(ProgramCache::new()), on_done)
}

/// [`run_jobs_timed`] with cross-job reuse wired through: every worker
/// fetches benchmark programs from the shared `programs` cache and
/// keeps its simulator resident between jobs (reset in place when the
/// next job's configuration matches). The caller owns the cache and can
/// read its build/hit counters after the pool drains.
///
/// Reuse never leaks between jobs: a job that panics poisons only the
/// worker's resident simulator, which is discarded before that worker
/// claims its next job. Results are exactly what [`run_jobs_timed`]
/// produces.
pub fn run_jobs_cached(
    jobs: &[JobSpec],
    workers: usize,
    programs: &Arc<ProgramCache>,
    mut on_done: impl FnMut(usize, &JobResult, &JobTiming),
) -> Vec<(JobResult, JobTiming)> {
    run_jobs_stored(
        jobs,
        workers,
        programs,
        None,
        |index, outcome, timing, _| on_done(index, outcome, timing),
    )
    .into_iter()
    .map(|(outcome, timing, _)| (outcome, timing))
    .collect()
}

/// [`run_jobs_cached`] plus the persistent result store: when `store`
/// is given, each worker looks the job up by [`JobSpec::store_key`]
/// before simulating and inserts every fresh success afterwards.
/// `on_done` (and each returned triple) additionally carries the
/// [`JobSource`] — [`JobSource::Store`] for a store hit,
/// [`JobSource::Simulated`] otherwise (including failures, which are
/// never stored). Store I/O errors on insert are swallowed: the
/// simulation already succeeded, and a read-only store must not fail
/// the sweep.
pub fn run_jobs_stored(
    jobs: &[JobSpec],
    workers: usize,
    programs: &Arc<ProgramCache>,
    store: Option<&ResultStore>,
    mut on_done: impl FnMut(usize, &JobResult, &JobTiming, JobSource),
) -> Vec<(JobResult, JobTiming, JobSource)> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobResult, JobTiming, JobSource)>();
    let started = Instant::now();

    let mut results: Vec<Option<(JobResult, JobTiming, JobSource)>> =
        (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let mut ctx = WorkerContext::new(Arc::clone(programs));
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = jobs.get(index) else { break };
                let queue_wait_ms = started.elapsed().as_millis() as u64;
                let job_started = Instant::now();
                let stored = store.and_then(|s| s.load(&spec.store_key()));
                let (outcome, source) = match stored {
                    Some(doc) => (Ok(doc), JobSource::Store),
                    None => {
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| spec.execute_with(&mut ctx)))
                                .map_err(panic_message);
                        match (&outcome, store) {
                            (Ok(doc), Some(s)) => {
                                // Best-effort: a store that cannot be
                                // written to (read-only, disk full)
                                // must not fail the job it just ran.
                                let _ = s.insert(
                                    &spec.store_key(),
                                    &spec.hash_hex(),
                                    &spec.label(),
                                    crate::hash::code_fingerprint(),
                                    doc,
                                );
                            }
                            (Err(_), _) => {
                                // The simulator may have unwound
                                // mid-cycle; never reuse it for the
                                // next job.
                                ctx.discard_simulator();
                            }
                            _ => {}
                        }
                        (outcome, JobSource::Simulated)
                    }
                };
                let timing = JobTiming {
                    worker,
                    queue_wait_ms,
                    wall_ms: job_started.elapsed().as_millis() as u64,
                };
                if tx.send((index, outcome, timing, source)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (index, outcome, timing, source) in rx {
            on_done(index, &outcome, &timing, source);
            results[index] = Some((outcome, timing, source));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job reports exactly once"))
        .collect()
}

/// How a claim-mode pool identifies itself and judges other owners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimOptions {
    /// This process's owner id, recorded in every lease and insert it
    /// makes (per-shard provenance).
    pub owner: String,
    /// Time without a heartbeat after which another owner's lease is
    /// presumed orphaned and stolen.
    pub steal_after: Duration,
    /// How long to sleep between re-checks of jobs held by live owners.
    pub poll: Duration,
}

impl ClaimOptions {
    /// Options for `owner` with the default steal timeout and poll
    /// interval.
    pub fn new(owner: impl Into<String>) -> ClaimOptions {
        ClaimOptions {
            owner: owner.into(),
            steal_after: condspec_store::DEFAULT_STEAL_TIMEOUT,
            poll: Duration::from_millis(50),
        }
    }

    /// The owner id used when the caller does not pick one:
    /// `shard-<pid>`, unique per process on one host.
    pub fn default_owner() -> String {
        format!("shard-{}", std::process::id())
    }
}

impl Default for ClaimOptions {
    fn default() -> ClaimOptions {
        ClaimOptions::new(ClaimOptions::default_owner())
    }
}

/// One job's outcome under claim-based draining ([`run_jobs_claimed`]).
#[derive(Debug, Clone)]
pub struct ClaimedJob {
    /// The artifact document, or the failure message.
    pub outcome: JobResult,
    /// Wall-clock telemetry (for store-resolved jobs, the time spent
    /// waiting and loading, not simulating).
    pub timing: JobTiming,
    /// [`JobSource::Simulated`] when this pool ran the job,
    /// [`JobSource::Store`] when the result came from the store.
    pub source: JobSource,
    /// The owner id that simulated the job, when known: ours for local
    /// simulations, the inserting shard's for store hits (absent for
    /// entries written outside the claim protocol).
    pub origin: Option<String>,
    /// True when the store result was inserted by a different owner
    /// than this pool — another shard (or an earlier run under another
    /// owner id) did the simulating. Always false for local
    /// simulations.
    pub remote: bool,
}

/// Claim-based draining: the distributed generalization of
/// [`run_jobs_stored`]'s cursor loop. Any number of pools — in other
/// processes or on other hosts sharing the store root — run this over
/// the same job list and cooperatively complete it exactly once:
///
/// 1. a store hit resolves the job immediately;
/// 2. otherwise the worker claims the job's lease (stealing stale
///    ones), simulates, inserts with its owner id and releases;
/// 3. jobs leased by a live owner are deferred, then polled until
///    their result appears in the store (remote completion) or their
///    lease goes stale and is stolen (remote death).
///
/// A background thread heartbeats every lease this pool holds at a
/// quarter of `claim.steal_after`, so long simulations are never
/// mistaken for dead owners. Results are returned in input order and
/// are byte-identical to a solo [`run_jobs_stored`] run; only the
/// `timing`/`origin`/`remote` annotations vary with scheduling.
pub fn run_jobs_claimed(
    jobs: &[JobSpec],
    workers: usize,
    programs: &Arc<ProgramCache>,
    store: &ResultStore,
    claim: &ClaimOptions,
    mut on_done: impl FnMut(usize, &ClaimedJob),
) -> Vec<ClaimedJob> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let deferred: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::new());
    let held: Vec<Mutex<Option<String>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, ClaimedJob)>();
    let started = Instant::now();

    let mut results: Vec<Option<ClaimedJob>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        // Heartbeat thread: renews every lease a worker currently holds
        // so a long simulation is never stolen from a live pool.
        {
            let held = &held;
            let stop = &stop;
            let beat =
                (claim.steal_after / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
            let owner = claim.owner.clone();
            scope.spawn(move || {
                let tick = Duration::from_millis(10).min(beat);
                let mut since_beat = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    since_beat += tick;
                    if since_beat < beat {
                        continue;
                    }
                    since_beat = Duration::ZERO;
                    for slot in held {
                        let key = slot.lock().expect("heartbeat slot").clone();
                        if let Some(key) = key {
                            let _ = store.heartbeat(&key, &owner);
                        }
                    }
                }
            });
        }
        for worker in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let deferred = &deferred;
            let held = &held;
            let claim = &claim;
            let mut ctx = WorkerContext::new(Arc::clone(programs));
            scope.spawn(move || {
                let resolve = |index: usize, ctx: &mut WorkerContext| {
                    let spec = &jobs[index];
                    let key = spec.store_key();
                    let queue_wait_ms = started.elapsed().as_millis() as u64;
                    let job_started = Instant::now();
                    let timing = |job_started: Instant| JobTiming {
                        worker,
                        queue_wait_ms,
                        wall_ms: job_started.elapsed().as_millis() as u64,
                    };
                    if let Some((doc, origin)) = store.load_with_origin(&key) {
                        let remote = origin.as_deref().is_some_and(|o| o != claim.owner);
                        return Some(ClaimedJob {
                            outcome: Ok(doc),
                            timing: timing(job_started),
                            source: JobSource::Store,
                            origin,
                            remote,
                        });
                    }
                    match store.try_claim(&key, &claim.owner, claim.steal_after) {
                        Ok(ClaimStatus::Acquired) | Ok(ClaimStatus::Stolen) => {}
                        Ok(ClaimStatus::Busy { .. }) => return None,
                        // A store root we cannot even write leases to:
                        // fall through and simulate unclaimed rather
                        // than wedge the sweep (inserts are idempotent).
                        Err(_) => {}
                    }
                    // The previous holder may have inserted just before
                    // releasing; re-check now that we hold the lease.
                    if let Some((doc, origin)) = store.load_with_origin(&key) {
                        let _ = store.release(&key, &claim.owner);
                        let remote = origin.as_deref().is_some_and(|o| o != claim.owner);
                        return Some(ClaimedJob {
                            outcome: Ok(doc),
                            timing: timing(job_started),
                            source: JobSource::Store,
                            origin,
                            remote,
                        });
                    }
                    *held[worker].lock().expect("held slot") = Some(key.clone());
                    let outcome = catch_unwind(AssertUnwindSafe(|| spec.execute_with(ctx)))
                        .map_err(panic_message);
                    *held[worker].lock().expect("held slot") = None;
                    match &outcome {
                        Ok(doc) => {
                            // Best-effort, like run_jobs_stored: a
                            // read-only store must not fail the job.
                            let _ = store.insert_claimed(
                                &key,
                                &spec.hash_hex(),
                                &spec.label(),
                                crate::hash::code_fingerprint(),
                                doc,
                                &claim.owner,
                            );
                        }
                        Err(_) => {
                            ctx.discard_simulator();
                            let _ = store.release(&key, &claim.owner);
                        }
                    }
                    Some(ClaimedJob {
                        outcome,
                        timing: timing(job_started),
                        source: JobSource::Simulated,
                        origin: Some(claim.owner.clone()),
                        remote: false,
                    })
                };
                // Phase 1: drain the cursor, deferring live-leased jobs.
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    match resolve(index, &mut ctx) {
                        Some(done) => {
                            if tx.send((index, done)).is_err() {
                                return;
                            }
                        }
                        None => deferred.lock().expect("deferred queue").push_back(index),
                    }
                }
                // Phase 2: poll deferred jobs until each resolves — the
                // remote owner inserts (store hit) or dies (its lease
                // goes stale and is stolen here).
                loop {
                    let index = deferred.lock().expect("deferred queue").pop_front();
                    let Some(index) = index else { break };
                    match resolve(index, &mut ctx) {
                        Some(done) => {
                            if tx.send((index, done)).is_err() {
                                return;
                            }
                        }
                        None => {
                            deferred.lock().expect("deferred queue").push_back(index);
                            std::thread::sleep(claim.poll);
                        }
                    }
                }
            });
        }
        drop(tx);
        for (index, done) in rx {
            on_done(index, &done);
            results[index] = Some(done);
        }
        stop.store(true, Ordering::Relaxed);
    });
    results
        .into_iter()
        .map(|r| r.expect("every job reports exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Workload;
    use condspec::DefenseConfig;

    fn tiny_job(benchmark: &'static str) -> JobSpec {
        let mut j = JobSpec::bench(benchmark, DefenseConfig::Origin);
        if let Workload::Bench {
            iterations, warmup, ..
        } = &mut j.workload
        {
            *iterations = 2;
            *warmup = 1;
        }
        j
    }

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let jobs = vec![tiny_job("gcc"), tiny_job("mcf"), tiny_job("lbm")];
        let reference: Vec<String> = run_jobs(&jobs, 1, |_, _| {})
            .into_iter()
            .map(|r| r.expect("tiny jobs halt").render())
            .collect();
        for workers in [2, 8] {
            let got: Vec<String> = run_jobs(&jobs, workers, |_, _| {})
                .into_iter()
                .map(|r| r.expect("tiny jobs halt").render())
                .collect();
            assert_eq!(got, reference, "{workers} workers");
        }
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let mut bad = tiny_job("gcc");
        bad.budget = 10; // cannot halt in 10 cycles -> run_to_halt panics
        let jobs = vec![tiny_job("mcf"), bad, tiny_job("lbm")];
        let mut done = 0;
        let results = run_jobs(&jobs, 2, |_, _| done += 1);
        assert_eq!(done, 3);
        assert!(results[0].is_ok());
        assert!(results[1]
            .as_ref()
            .is_err_and(|e| e.contains("did not halt")));
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(&[], 4, |_, _| {}).is_empty());
    }

    #[test]
    fn shared_cache_builds_each_program_once_without_changing_results() {
        // Three jobs over one benchmark: two defense configs, with the
        // first repeated so a single worker exercises both simulator
        // reuse (reset in place) and rebuild (config change).
        let mut other = tiny_job("gcc");
        other.defense = DefenseConfig::Baseline;
        let jobs = vec![tiny_job("gcc"), other, tiny_job("gcc")];

        // Reference: each job executed in isolation (its own cache and
        // a fresh simulator).
        let solo: Vec<String> = jobs.iter().map(|j| j.execute().render()).collect();

        let programs = Arc::new(ProgramCache::new());
        let pooled: Vec<String> = run_jobs_cached(&jobs, 1, &programs, |_, _, _| {})
            .into_iter()
            .map(|(r, _)| r.expect("tiny jobs halt").render())
            .collect();
        assert_eq!(pooled, solo, "reuse must not change any artifact");

        // 3 jobs x 2 programs (warm-up + measured) = 6 requests over 2
        // distinct (benchmark, iterations) keys.
        assert_eq!(programs.builds(), 2);
        assert_eq!(programs.hits(), 4);
    }

    #[test]
    fn a_panic_does_not_poison_the_workers_next_job() {
        // One worker, so the job after the panic necessarily runs on
        // the same worker — its mid-unwind simulator must be discarded,
        // not reset and reused.
        let mut bad = tiny_job("gcc");
        bad.budget = 10;
        let jobs = vec![tiny_job("gcc"), bad, tiny_job("gcc")];
        let expected = jobs[2].execute().render();
        let results = run_jobs(&jobs, 1, |_, _| {});
        assert!(results[1].is_err());
        assert_eq!(
            results[2].as_ref().expect("job after panic halts").render(),
            expected
        );
    }

    #[test]
    fn warm_store_serves_identical_results_and_skips_failures() {
        let root =
            std::env::temp_dir().join(format!("condspec-scheduler-store-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = ResultStore::open(&root);
        let mut bad = tiny_job("gcc");
        bad.budget = 10; // panics; must not be inserted into the store
        let jobs = vec![tiny_job("gcc"), bad, tiny_job("mcf")];

        let programs = Arc::new(ProgramCache::new());
        let cold = run_jobs_stored(&jobs, 2, &programs, Some(&store), |_, _, _, source| {
            assert_eq!(source, JobSource::Simulated, "cold store simulates");
        });
        assert_eq!(store.hits(), 0);
        assert_eq!(store.inserts(), 2, "only successes are stored");

        let warm = run_jobs_stored(&jobs, 2, &programs, Some(&store), |_, _, _, _| {});
        assert_eq!(store.hits(), 2, "both successes hit on the second run");
        assert_eq!(warm[0].2, JobSource::Store);
        assert_eq!(warm[1].2, JobSource::Simulated, "the failure re-runs");
        assert_eq!(warm[2].2, JobSource::Store);
        for ((cold_result, _, _), (warm_result, _, _)) in cold.iter().zip(&warm) {
            assert_eq!(
                cold_result.as_ref().map(Json::render).ok(),
                warm_result.as_ref().map(Json::render).ok(),
                "a store hit is byte-identical to the simulation"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn timed_runs_report_plausible_telemetry() {
        let jobs = vec![tiny_job("gcc"), tiny_job("mcf"), tiny_job("lbm")];
        let timed = run_jobs_timed(&jobs, 2, |_, outcome, timing| {
            assert!(outcome.is_ok());
            assert!(timing.worker < 2);
        });
        assert_eq!(timed.len(), 3);
        // Same results as the untimed API, in the same order.
        let plain = run_jobs(&jobs, 2, |_, _| {});
        for ((timed_result, _), plain_result) in timed.iter().zip(&plain) {
            assert_eq!(
                timed_result.as_ref().map(Json::render),
                plain_result.as_ref().map(Json::render)
            );
        }
    }
}

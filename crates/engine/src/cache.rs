//! Cross-job reuse inside a sweep: the decoded-program cache and the
//! per-worker simulator slot.
//!
//! A sweep like `fig5` runs five defense configurations per benchmark,
//! and every one of them executes the *same* two programs (the warm-up
//! and the measured run differ only in iteration count). Building those
//! programs per job is pure waste — the build is deterministic in
//! `(benchmark, iterations)`, exactly the [`JobSpec`] hash inputs that
//! name a benchmark workload. [`ProgramCache`] memoizes the build under
//! that key and hands out `Arc<Program>` clones, so a 110-job `fig5`
//! sweep performs 44 builds (22 benchmarks × two iteration counts)
//! instead of 220.
//!
//! [`WorkerContext`] is the per-worker companion: each scheduler worker
//! owns one, holding a shared handle to the sweep's `ProgramCache` plus
//! the worker's resident [`Simulator`]. Between jobs the simulator is
//! reset in place ([`Simulator::reset_in_place`]) when the next job
//! wants the same [`SimConfig`], and rebuilt only when the
//! configuration actually changes — simulator state (caches, predictor
//! tables, the event wheel) is allocated once per worker per
//! configuration, not once per job. Reuse is observationally invisible:
//! a reset simulator produces byte-identical artifacts to a fresh one,
//! which the differential tests in this module assert.
//!
//! [`JobSpec`]: crate::JobSpec

use condspec::{SimConfig, Simulator};
use condspec_isa::Program;
use condspec_workloads::spec::{build_program, by_name};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sweep-wide memo of built benchmark programs, shared across the
/// worker pool behind an `Arc`.
///
/// Keyed by `(benchmark, iterations)` — the only [`JobSpec`] fields
/// that influence program content. `build_program` is deterministic,
/// so two jobs with equal keys would build identical programs;
/// the cache builds once and clones the `Arc`.
///
/// [`JobSpec`]: crate::JobSpec
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: Mutex<HashMap<(&'static str, u64), Arc<Program>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// The program for `benchmark` unrolled to `iterations`, building
    /// it on first request.
    ///
    /// The map lock is held across the build on purpose: program
    /// generation is cheap relative to simulation, and serializing
    /// first-builds guarantees each distinct key is built exactly once
    /// — the invariant the sweep's `program-cache:` log line and CI
    /// assertion rely on.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark name (same contract as
    /// [`JobSpec::execute`](crate::JobSpec::execute)).
    pub fn get_or_build(&self, benchmark: &'static str, iterations: u64) -> Arc<Program> {
        let mut map = self.programs.lock().unwrap();
        if let Some(program) = map.get(&(benchmark, iterations)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(program);
        }
        let spec = by_name(benchmark).unwrap_or_else(|| panic!("unknown benchmark `{benchmark}`"));
        let program = Arc::new(build_program(&spec, iterations));
        map.insert((benchmark, iterations), Arc::clone(&program));
        self.builds.fetch_add(1, Ordering::Relaxed);
        program
    }

    /// Programs built (one per distinct key requested).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Requests served from the cache without building.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Distinct programs currently held.
    pub fn len(&self) -> usize {
        self.programs.lock().unwrap().len()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `builds`/`hits` summary the sweep driver prints, e.g.
    /// `program-cache: 44 builds, 176 hits`.
    pub fn summary(&self) -> String {
        format!(
            "program-cache: {} builds, {} hits",
            self.builds(),
            self.hits()
        )
    }
}

/// One scheduler worker's reusable execution state: a handle to the
/// sweep-wide [`ProgramCache`] and the worker's resident simulator.
#[derive(Debug)]
pub struct WorkerContext {
    programs: Arc<ProgramCache>,
    sim: Option<Simulator>,
}

impl WorkerContext {
    /// A context sharing `programs` with the rest of the pool.
    pub fn new(programs: Arc<ProgramCache>) -> WorkerContext {
        WorkerContext {
            programs,
            sim: None,
        }
    }

    /// A context with a private cache, for running a single job outside
    /// any worker pool (the [`JobSpec::execute`](crate::JobSpec::execute)
    /// compatibility path).
    pub fn solo() -> WorkerContext {
        WorkerContext::new(Arc::new(ProgramCache::new()))
    }

    /// The shared program cache.
    pub fn programs(&self) -> &ProgramCache {
        &self.programs
    }

    /// A simulator configured as `config`, reusing the worker's
    /// resident simulator (reset in place) when its configuration
    /// matches and rebuilding it otherwise.
    pub fn simulator(&mut self, config: SimConfig) -> &mut Simulator {
        match &mut self.sim {
            Some(sim) if *sim.config() == config => sim.reset_in_place(),
            slot => *slot = Some(Simulator::new(config)),
        }
        self.sim.as_mut().expect("slot was just filled")
    }

    /// Discards the resident simulator. The scheduler calls this after
    /// a job panics: the simulator may have unwound mid-cycle, and its
    /// state is no longer trustworthy for reuse.
    pub fn discard_simulator(&mut self) {
        self.sim = None;
    }

    /// Whether a simulator is currently resident (test introspection).
    pub fn has_simulator(&self) -> bool {
        self.sim.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condspec::DefenseConfig;

    #[test]
    fn cache_builds_each_key_once() {
        let cache = ProgramCache::new();
        let a = cache.get_or_build("gcc", 40);
        let b = cache.get_or_build("gcc", 40);
        let c = cache.get_or_build("gcc", 6);
        assert!(Arc::ptr_eq(&a, &b), "same key returns the same program");
        assert!(!Arc::ptr_eq(&a, &c), "iteration count is part of the key");
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.summary(), "program-cache: 2 builds, 1 hits");
    }

    #[test]
    fn worker_context_reuses_matching_simulator() {
        let mut ctx = WorkerContext::solo();
        let baseline = SimConfig::new(DefenseConfig::Baseline);
        let origin = SimConfig::new(DefenseConfig::Origin);

        ctx.simulator(baseline);
        assert!(ctx.has_simulator());
        let first = ctx.simulator(baseline) as *const Simulator;
        let again = ctx.simulator(baseline) as *const Simulator;
        assert_eq!(first, again, "matching config reuses the same simulator");

        let swapped = ctx.simulator(origin);
        assert_eq!(*swapped.config(), origin, "config change rebuilds");

        ctx.discard_simulator();
        assert!(!ctx.has_simulator());
    }
}
